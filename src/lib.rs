#![warn(missing_docs)]

//! # `mc3` — Minimization of Classifier Construction Cost for Search Queries
//!
//! A complete Rust implementation of the MC³ problem from
//! *"Minimization of Classifier Construction Cost for Search Queries"*
//! (Gershtein, Milo, Morami, Novgorodov — SIGMOD 2020): the core data model,
//! the exact PTIME solver for queries of length ≤ 2, the approximation
//! solver for the general case, the preprocessing pipeline, all baselines
//! from the paper's experimental study, workload generators, and the
//! substrates they rely on (max-flow, bipartite matching, weighted set
//! cover, a simplex LP solver).
//!
//! This facade crate re-exports the public API of every workspace member:
//!
//! * [`core`] — properties, queries, classifiers, weights,
//!   instances, solutions, cover semantics;
//! * [`solver`] — Algorithms 1–3 of the paper, baselines,
//!   the exact reference solver, extensions;
//! * [`workload`] — the paper's synthetic generator and
//!   dataset-alike generators (BestBuy, Private);
//! * [`flow`], [`setcover`], [`lp`] —
//!   reusable substrates;
//! * [`telemetry`] — spans, counters and histograms for
//!   profiling solver internals (see `docs/observability.md`).
//!
//! ## Quickstart
//!
//! ```
//! use mc3::prelude::*;
//!
//! // Two queries: {0,1,2} and {3,2}; every classifier costs 5 except a few.
//! let weights = WeightsBuilder::new()
//!     .default_weight(Weight::new(5))
//!     .classifier([1u32], 1u64)
//!     .classifier([2u32, 3], 3u64)
//!     .classifier([0u32, 2], 3u64)
//!     .build();
//! let instance = Instance::new(vec![vec![0u32, 1, 2], vec![3u32, 2]], weights).unwrap();
//!
//! let solution = Mc3Solver::new().solve(&instance).unwrap();
//! solution.verify(&instance).unwrap();
//! assert_eq!(solution.cost(), Weight::new(7)); // {0,2} + {2,3} + {1}
//! ```

pub use mc3_core as core;
pub use mc3_flow as flow;
pub use mc3_lp as lp;
pub use mc3_setcover as setcover;
pub use mc3_solver as solver;
pub use mc3_telemetry as telemetry;
pub use mc3_workload as workload;

/// One-stop imports for typical use.
pub mod prelude {
    pub use mc3_core::{
        covered, is_cover, AttributeSchema, Classifier, ClassifierUniverse, Instance,
        InstanceStats, Mc3Error, PropId, PropSet, PropertyInterner, Query, Solution, Weight,
        Weights, WeightsBuilder,
    };
    pub use mc3_solver::{Algorithm, Mc3Solver, SolverConfig, SolverReport};
    pub use mc3_workload::{BestBuyConfig, Dataset, PrivateConfig, SyntheticConfig};
}
