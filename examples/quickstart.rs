//! Quickstart: define queries and classifier costs, solve, inspect.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mc3::prelude::*;

fn main() {
    // A tiny catalog-search workload over four properties.
    // Queries: {0,1}, {1,2}, {0,1,2,3}
    let queries = vec![vec![0u32, 1], vec![1u32, 2], vec![0u32, 1, 2, 3]];

    // Explicit classifier costs; anything not listed is infeasible except
    // that we give a default so every conjunction is trainable at cost 6.
    let weights = WeightsBuilder::new()
        .default_weight(Weight::new(6))
        .classifier([0u32], 4u64)
        .classifier([1u32], 2u64)
        .classifier([2u32], 4u64)
        .classifier([0u32, 1], 5u64)
        .classifier([1u32, 2], 5u64)
        .classifier([3u32], 1u64)
        .build();

    let instance = Instance::new(queries, weights).expect("valid queries");
    println!("instance: {}", InstanceStats::gather(&instance));

    // The default solver picks the right algorithm for the instance
    // (exact for k ≤ 2, the Algorithm-3 approximation otherwise).
    let report = Mc3Solver::new()
        .solve_report(&instance)
        .expect("coverable instance");
    let solution = &report.solution;
    solution
        .verify(&instance)
        .expect("solver output must cover");

    println!(
        "selected {} classifiers, total cost {}",
        solution.len(),
        solution.cost()
    );
    for c in solution.classifiers() {
        println!("  train classifier for {c} (cost {})", instance.weight(c));
    }
    println!(
        "preprocessing: {} selected, {} pruned, {} queries closed",
        report.preprocess_stats.selected,
        report.preprocess_stats.removed_by_decomposition
            + report.preprocess_stats.removed_by_singleton_pruning,
        report.preprocess_stats.covered_queries,
    );
    println!(
        "worst-case approximation guarantee for this instance: {:.2}×",
        report.instance_stats.approximation_guarantee()
    );

    // Compare against the exact optimum (viable for small instances).
    let exact = Mc3Solver::new()
        .algorithm(Algorithm::Exact)
        .solve(&instance)
        .unwrap();
    println!(
        "exact optimum: {} (solver found {})",
        exact.cost(),
        solution.cost()
    );
}

use mc3::solver::Algorithm;
