//! Planning classifier construction for a large synthetic query load:
//! generate a workload with the paper's §6.1 recipe, compare every
//! algorithm, and show what the preprocessing pipeline contributes.
//!
//! ```sh
//! cargo run --release --example workload_planner [num_queries]
//! ```

use mc3::prelude::*;
use mc3::solver::Algorithm;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    let mut cfg = SyntheticConfig::with_queries(n);
    cfg.pool_size = Some((n / 2).max(16));
    let dataset = cfg.generate();
    let instance = &dataset.instance;
    println!("generated workload: {}", InstanceStats::gather(instance));
    println!();

    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "algorithm", "cost", "classifiers", "time"
    );
    for (label, alg) in [
        ("MC3[G]", Algorithm::General),
        ("Short-First", Algorithm::ShortFirst),
        ("Local-Greedy", Algorithm::LocalGreedy),
        ("Query-Oriented", Algorithm::QueryOriented),
        ("Property-Oriented", Algorithm::PropertyOriented),
    ] {
        let report = Mc3Solver::new()
            .algorithm(alg)
            .solve_report(instance)
            .expect("coverable");
        report.solution.verify(instance).expect("must cover");
        println!(
            "{:<22} {:>12} {:>12} {:>9.2}s",
            label,
            report.solution.cost().to_string(),
            report.solution.len(),
            report.timings.total.as_secs_f64()
        );
    }
    println!();

    // Preprocessing ablation on the winning algorithm.
    let with = Mc3Solver::new().solve_report(instance).unwrap();
    let without = Mc3Solver::new()
        .without_preprocessing()
        .solve_report(instance)
        .unwrap();
    println!(
        "preprocessing effect on MC3: cost {} → {}, {} classifiers pruned, {} queries closed before solving",
        without.solution.cost(),
        with.solution.cost(),
        with.preprocess_stats.removed_by_decomposition
            + with.preprocess_stats.removed_by_singleton_pruning,
        with.preprocess_stats.covered_queries,
    );

    // Per-component parallel solving (Observation 3.2).
    let parallel = Mc3Solver::new()
        .parallel(true)
        .solve_report(instance)
        .unwrap();
    assert_eq!(parallel.solution.cost(), with.solution.cost());
    println!(
        "residual problem split into {} property-connected components (solved in parallel, same cost)",
        parallel.components
    );
}
