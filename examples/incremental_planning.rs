//! Incremental classifier planning across budget cycles.
//!
//! The paper's §6.1 motivates varying query-load cardinalities by "practical
//! settings where the size of the query load varies according to different
//! budget quotas". This example plays that out: a company covers a first
//! query batch, ships those classifiers, and next quarter covers a larger
//! batch — paying only the *marginal* cost, because the already-built
//! classifiers participate in new covers for free
//! (`Mc3Solver::prebuilt`).
//!
//! ```sh
//! cargo run --release --example incremental_planning
//! ```

use mc3::prelude::*;
use mc3::workload::random_subset;

fn main() {
    // the quarter-over-quarter query load (private-alike, 2000 queries)
    let full = PrivateConfig::with_queries(2_000).generate().instance;

    let mut built: Vec<Classifier> = Vec::new();
    let mut cumulative = Weight::ZERO;

    for (quarter, share) in [(1, 500), (2, 1000), (3, 2000)] {
        let batch = random_subset(&full, share, quarter as u64).unwrap();
        let report = Mc3Solver::new()
            .prebuilt(built.clone())
            .solve_report(&batch)
            .expect("coverable");

        // the marginal solution + existing inventory covers the batch
        assert!(mc3::core::is_cover(&batch, &report.full_cover()));

        cumulative = cumulative + report.solution.cost();
        println!(
            "Q{quarter}: {} queries — build {} new classifiers for {} (reusing {} built earlier); cumulative spend {}",
            batch.num_queries(),
            report.solution.len(),
            report.solution.cost(),
            report.prebuilt_used.len(),
            cumulative,
        );

        built.extend(report.solution.classifiers().iter().cloned());
        built.sort_unstable();
        built.dedup();
    }

    // Compare with planning everything at once.
    let oneshot = Mc3Solver::new()
        .solve(&random_subset(&full, 2000, 3).unwrap())
        .unwrap();
    println!(
        "\nplanning Q3's full load from scratch would cost {} — incremental spending totalled {} (the price of committing early)",
        oneshot.cost(),
        cumulative
    );
}
