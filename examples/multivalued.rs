//! Model extensions from §5.3 of the paper:
//!
//! 1. multi-valued classifiers — a single "team" classifier decides every
//!    `team=*` property at once, and can be cheaper than the binary
//!    classifiers it replaces;
//! 2. attribute merging — the "only multi-valued classifiers" setting is
//!    itself an MC³ instance over attributes;
//! 3. the budgeted partial-cover variant (future work in the paper):
//!    maximize the importance of fully covered queries under a budget.
//!
//! ```sh
//! cargo run --release --example multivalued
//! ```

use mc3::core::{merge_to_attributes, MultiValuedClassifier};
use mc3::prelude::*;
use mc3::solver::{solve_partial_cover, solve_with_multivalued, MixedPick};

fn main() {
    let mut props = PropertyInterner::new();
    let juventus = props.intern("team=Juventus");
    let chelsea = props.intern("team=Chelsea");
    let cska = props.intern("team=CSKA");
    let adidas = props.intern("brand=Adidas");
    let umbro = props.intern("brand=Umbro");

    // Five shirt-search queries over team/brand properties.
    let queries = [
        vec![juventus, adidas],
        vec![chelsea, adidas],
        vec![cska, umbro],
        vec![juventus],
        vec![chelsea, umbro],
    ];
    let weights = WeightsBuilder::new()
        .default_weight(Weight::new(8)) // every binary conjunction: 8
        .classifier([juventus], 6u64)
        .classifier([chelsea], 6u64)
        .classifier([cska], 6u64)
        .classifier([adidas], 7u64)
        .classifier([umbro], 7u64)
        .build();
    let instance = Instance::new(
        queries
            .iter()
            .map(|q| q.iter().map(|p| p.0).collect::<Vec<_>>()),
        weights,
    )
    .unwrap();

    // --- attribute schema: team and brand -------------------------------
    let mut schema = AttributeSchema::new();
    let team = schema.attribute("team");
    let brand = schema.attribute("brand");
    for p in [juventus, chelsea, cska] {
        schema.assign(p, team);
    }
    for p in [adidas, umbro] {
        schema.assign(p, brand);
    }

    // --- 1. mixed binary + multi-valued ---------------------------------
    let multi = vec![
        MultiValuedClassifier {
            attribute: team,
            cost: Weight::new(9),
        },
        MultiValuedClassifier {
            attribute: brand,
            cost: Weight::new(20),
        },
    ];
    let mixed = solve_with_multivalued(&instance, &schema, &multi).unwrap();
    assert!(mixed.covers(&instance, &schema, &multi));
    println!("mixed binary + multi-valued solution, cost {}:", mixed.cost);
    for pick in &mixed.picks {
        match pick {
            MixedPick::Binary(c) => {
                let names: Vec<&str> = c.iter().map(|p| props.name(p).unwrap()).collect();
                println!("  binary classifier [{}]", names.join(" AND "));
            }
            MixedPick::MultiValued(i) => {
                println!(
                    "  multi-valued classifier for attribute '{}' (covers all its values)",
                    schema.name(multi[*i].attribute).unwrap()
                );
            }
        }
    }
    println!();

    // --- 2. attributes-only transformation ------------------------------
    let (merged, _mapping) = merge_to_attributes(
        &instance,
        &schema,
        Weights::uniform(10u64), // external cost estimates per attribute set
    )
    .unwrap();
    println!(
        "attributes-only instance: {} queries over {} attributes (was {} over {} properties)",
        merged.num_queries(),
        merged.num_properties(),
        instance.num_queries(),
        instance.num_properties()
    );
    let merged_solution = Mc3Solver::new().solve(&merged).unwrap();
    println!(
        "  solved as a regular MC3 instance: cost {}",
        merged_solution.cost()
    );
    println!();

    // --- 3. budgeted partial cover ---------------------------------------
    // Query importances (e.g. observed frequencies); a budget too small to
    // cover everything forces prioritization.
    let values = [50u64, 30, 10, 40, 20];
    for budget in [10u64, 20, 60] {
        let outcome = solve_partial_cover(&instance, &values, Weight::new(budget)).unwrap();
        println!(
            "budget {:>3}: covered {:?} (importance {}), spent {}, left {}",
            budget,
            outcome.covered_queries,
            outcome.covered_value,
            outcome.solution.cost(),
            outcome.budget_left
        );
    }
}
