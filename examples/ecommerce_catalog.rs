//! The paper's running example (Example 1.1): choosing which classifiers to
//! train for two soccer-shirt search queries.
//!
//! Queries (after NLP translation to conjunctions over catalog properties):
//!   q1 = "white adidas juventus shirt" → {team=Juventus, color=White, brand=Adidas}
//!   q2 = "adidas chelsea shirt"        → {team=Chelsea, brand=Adidas}
//!
//! Classifier training-cost estimates (in cost units N):
//!   C: 5N, A: 5N, J: 5N, W: 1N, AC: 3N, AW: 5N, AJ: 3N, JW: 4N, JAW: 5N
//!
//! The optimal choice is {AC, AJ, W} at 7N — note that neither the
//! per-property extreme (train A, C, J, W) nor the per-query extreme
//! (train JAW, AC) is optimal.
//!
//! ```sh
//! cargo run --release --example ecommerce_catalog
//! ```

use mc3::prelude::*;
use mc3::solver::Algorithm;

fn main() {
    let mut props = PropertyInterner::new();
    let j = props.intern("team=Juventus");
    let w = props.intern("color=White");
    let a = props.intern("brand=Adidas");
    let c = props.intern("team=Chelsea");

    let queries = vec![vec![j, w, a], vec![c, a]];
    let weights = WeightsBuilder::new()
        .classifier([c], 5u64)
        .classifier([a], 5u64)
        .classifier([j], 5u64)
        .classifier([w], 1u64)
        .classifier([a, c], 3u64)
        .classifier([a, w], 5u64)
        .classifier([a, j], 3u64)
        .classifier([j, w], 4u64)
        .classifier([j, a, w], 5u64)
        .build();
    let instance = Instance::from_propsets(
        queries.into_iter().map(PropSet::from_ids).collect(),
        weights,
    )
    .unwrap();

    let render = |classifier: &Classifier| -> String {
        classifier
            .iter()
            .map(|p| props.name(p).unwrap().to_owned())
            .collect::<Vec<_>>()
            .join(" AND ")
    };

    println!("Query load:");
    for q in instance.queries() {
        println!("  SELECT * FROM Shirts WHERE {}", render(q));
    }
    println!();

    for (label, alg) in [
        ("MC3[G] (Algorithm 3)", Algorithm::General),
        ("Exact reference", Algorithm::Exact),
        ("Query-Oriented baseline", Algorithm::QueryOriented),
        ("Property-Oriented baseline", Algorithm::PropertyOriented),
    ] {
        let solution = Mc3Solver::new().algorithm(alg).solve(&instance).unwrap();
        solution.verify(&instance).unwrap();
        println!("{label}: total training cost {}N", solution.cost());
        for cls in solution.classifiers() {
            println!(
                "  build binary classifier: [{}] (cost {}N)",
                render(cls),
                instance.weight(cls)
            );
        }
        println!();
    }

    let best = Mc3Solver::new().solve(&instance).unwrap();
    assert_eq!(best.cost(), Weight::new(7), "the paper's optimum is 7N");
    println!("=> the optimal set {{AC, AJ, W}} costs 7N, matching Example 1.1.");
}
