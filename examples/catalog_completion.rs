//! End-to-end simulation of the paper's motivating application (§1):
//! an e-commerce catalog with *hidden* attributes, incomplete search
//! results, and classifier construction to fix them.
//!
//! 1. Build a product catalog where most attribute values are not recorded
//!    (they are "hidden in the picture/description").
//! 2. Take a query load, plan the cheapest classifier set with MC³.
//! 3. "Train" the selected classifiers — here simulated as revealing, for
//!    every item, the truth value of the classifier's conjunction (positive
//!    conjunctions annotate each individual property, exactly as the
//!    paper's footnote 2 describes).
//! 4. Re-run the queries and compare recall before/after completion.
//!
//! ```sh
//! cargo run --release --example catalog_completion
//! ```

use mc3::prelude::*;
use mc3_core::rng::prelude::*;

/// An item: its true (hidden) properties and what the database records.
struct Item {
    truth: Vec<PropId>,
    /// per-property recorded knowledge: Some(true/false) or None (unknown)
    known: mc3::core::FxHashMap<u32, bool>,
}

impl Item {
    fn has(&self, p: PropId) -> bool {
        self.truth.contains(&p)
    }

    /// Conservative search semantics: an item matches a query only if every
    /// property is *recorded* true.
    fn matches_recorded(&self, q: &Query) -> bool {
        q.iter().all(|p| self.known.get(&p.0) == Some(&true))
    }

    fn matches_truth(&self, q: &Query) -> bool {
        q.iter().all(|p| self.has(p))
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    // --- the catalog ------------------------------------------------------
    let mut props = PropertyInterner::new();
    let teams: Vec<PropId> = ["Juventus", "Chelsea", "CSKA", "Ajax", "Porto"]
        .iter()
        .map(|t| props.intern(format!("team={t}")))
        .collect();
    let colors: Vec<PropId> = ["White", "Red", "Blue"]
        .iter()
        .map(|c| props.intern(format!("color={c}")))
        .collect();
    let brands: Vec<PropId> = ["Adidas", "Umbro", "Nike"]
        .iter()
        .map(|b| props.intern(format!("brand={b}")))
        .collect();

    let mut items: Vec<Item> = (0..5000)
        .map(|_| {
            let truth = vec![
                *teams.choose(&mut rng).unwrap(),
                *colors.choose(&mut rng).unwrap(),
                *brands.choose(&mut rng).unwrap(),
            ];
            // sellers record each attribute with only 40% probability
            let mut known = mc3::core::FxHashMap::default();
            for p in &truth {
                if rng.gen_bool(0.4) {
                    known.insert(p.0, true);
                }
            }
            Item { truth, known }
        })
        .collect();

    // --- the query load ----------------------------------------------------
    let mut raw_queries: Vec<Vec<u32>> = Vec::new();
    for _ in 0..60 {
        let mut q = vec![teams.choose(&mut rng).unwrap().0];
        if rng.gen_bool(0.7) {
            q.push(brands.choose(&mut rng).unwrap().0);
        }
        if rng.gen_bool(0.4) {
            q.push(colors.choose(&mut rng).unwrap().0);
        }
        raw_queries.push(q);
    }
    // Classifier costs with the paper's "Adidas Juventus" effect: general
    // team/brand detection is hard (many shirt designs), but a specific
    // team-brand conjunction has few variants and is cheap to train.
    let mut wb = WeightsBuilder::new().default_weight(Weight::new(30));
    for &t in &teams {
        wb = wb.classifier([t.0], 18u64);
        for &b in &brands {
            wb = wb.classifier([t.0, b.0], 7u64);
        }
    }
    for &b in &brands {
        wb = wb.classifier([b.0], 60u64); // generic brand detection is the hardest
    }
    for &c in &colors {
        wb = wb.classifier([c.0], 4u64); // colors are easy
    }
    let weights = wb.build();
    let instance = Instance::new(raw_queries, weights).unwrap();
    println!(
        "catalog: {} items; query load: {} distinct queries over {} properties",
        items.len(),
        instance.num_queries(),
        instance.num_properties()
    );

    // --- recall before completion ------------------------------------------
    let recall = |items: &[Item]| -> f64 {
        let mut found = 0usize;
        let mut relevant = 0usize;
        for q in instance.queries() {
            for item in items {
                if item.matches_truth(q) {
                    relevant += 1;
                    if item.matches_recorded(q) {
                        found += 1;
                    }
                }
            }
        }
        found as f64 / relevant.max(1) as f64
    };
    println!(
        "search recall before completion: {:.1}%",
        100.0 * recall(&items)
    );

    // --- plan and "train" classifiers ---------------------------------------
    let report = Mc3Solver::new().solve_report(&instance).unwrap();
    report.solution.verify(&instance).unwrap();
    println!(
        "MC3 plan: train {} classifiers at total cost {} (vs {} per-property, {} per-query)",
        report.solution.len(),
        report.solution.cost(),
        Mc3Solver::new()
            .algorithm(mc3::solver::Algorithm::PropertyOriented)
            .solve(&instance)
            .unwrap()
            .cost(),
        Mc3Solver::new()
            .algorithm(mc3::solver::Algorithm::QueryOriented)
            .solve(&instance)
            .unwrap()
            .cost(),
    );

    // Offline completion (footnote 2): a positive classification for a
    // conjunction annotates each individual property; negative yields null.
    for classifier in report.solution.classifiers() {
        for item in &mut items {
            if classifier.iter().all(|p| item.has(p)) {
                for p in classifier.iter() {
                    item.known.insert(p.0, true);
                }
            }
        }
    }

    // --- recall after completion --------------------------------------------
    let after = recall(&items);
    println!("search recall after completion:  {:.1}%", 100.0 * after);
    assert!(
        (after - 1.0).abs() < 1e-9,
        "covering every query must yield perfect recall"
    );
    println!("\nevery query is now answered exactly — the cover property of MC3 at work.");
}
