//! Dataset-level integration: generator marginals (Table 1), JSON
//! round-trips, subset sampling, and statistics consistency.

use mc3::core::InstanceStats;
use mc3::workload::{
    random_subset, read_dataset_json, write_dataset_json, BestBuyConfig, PrivateConfig,
    SyntheticConfig,
};

#[test]
fn table1_marginals_reproduce() {
    let bb = BestBuyConfig::default().generate();
    let bb_stats = InstanceStats::gather(&bb.instance);
    assert_eq!(bb_stats.num_queries, 1000);
    assert!(bb_stats.max_query_len <= 4);
    assert!(bb_stats.short_query_fraction() >= 0.9);

    let p = PrivateConfig::with_queries(10_000).generate();
    let p_stats = InstanceStats::gather(&p.instance);
    assert_eq!(p_stats.num_queries, 10_000);
    assert!(p_stats.max_query_len <= 6);

    let s = SyntheticConfig::with_queries(5_000).generate();
    let s_stats = InstanceStats::gather(&s.instance);
    assert_eq!(s_stats.num_queries, 5_000);
    assert!(s_stats.max_query_len <= 10);
}

#[test]
fn dataset_json_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("mc3_dataset_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bb.json");

    let ds = BestBuyConfig::with_queries(100).generate();
    write_dataset_json(&ds, std::fs::File::create(&path).unwrap()).unwrap();
    let back = read_dataset_json(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(back.instance.queries(), ds.instance.queries());
    assert_eq!(back.name, "BB");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn subsets_preserve_weights_and_shrink() {
    let ds = PrivateConfig::with_queries(2_000).generate();
    let sub = random_subset(&ds.instance, 500, 99).unwrap();
    assert_eq!(sub.num_queries(), 500);
    for q in sub.queries().iter().take(50) {
        assert_eq!(sub.weight(q), ds.instance.weight(q));
    }
}

#[test]
fn stats_parameters_are_internally_consistent() {
    let ds = SyntheticConfig::with_queries(400).generate();
    let stats = InstanceStats::gather(&ds.instance);
    // n̂ = Σ|q| equals the histogram-weighted sum
    let hist_sum: usize = stats
        .length_histogram
        .iter()
        .enumerate()
        .map(|(l, &c)| l * c)
        .sum();
    assert_eq!(stats.sum_query_lens, hist_sum);
    // m̂ ≤ n·2^(k−1) (§5.2 parameter analysis)
    let bound = stats.num_queries as u64 * (1u64 << (stats.max_query_len - 1));
    assert!((stats.num_classifiers as u64) <= bound);
    // incidence is at most n
    assert!((stats.max_incidence as usize) <= stats.num_queries);
}

#[test]
fn fashion_subset_matches_its_parent_category() {
    let cfg = PrivateConfig::with_queries(10_000);
    let full = cfg.generate();
    let fashion = cfg.generate_fashion();
    // every fashion query also exists in the full dataset
    for q in fashion.instance.queries().iter().take(100) {
        assert!(full.instance.queries().contains(q));
    }
}
