//! Integration tests of the §5.3 model extensions: multi-valued
//! classifiers (merged and mixed), bounded classifier length, and the
//! budgeted partial-cover variant.

use mc3::core::{merge_to_attributes, AttributeSchema, MultiValuedClassifier, PropId};
use mc3::prelude::*;
use mc3::solver::{solve_partial_cover, solve_with_multivalued, Algorithm, MixedPick};

fn color_world() -> (Instance, AttributeSchema) {
    // properties 0..4 = five colors, 5 = brand; queries mix them
    let instance = Instance::new(
        vec![
            vec![0u32, 5],
            vec![1u32, 5],
            vec![2u32, 5],
            vec![3u32],
            vec![4u32, 5],
        ],
        Weights::uniform(10u64),
    )
    .unwrap();
    let mut schema = AttributeSchema::new();
    let color = schema.attribute("color");
    for p in 0..5u32 {
        schema.assign(PropId(p), color);
    }
    (instance, schema)
}

#[test]
fn multivalued_color_classifier_dominates_when_cheap() {
    let (instance, schema) = color_world();
    let color = schema.attribute_of(PropId(0)).unwrap();
    let mv = vec![MultiValuedClassifier {
        attribute: color,
        cost: Weight::new(12),
    }];
    let sol = solve_with_multivalued(&instance, &schema, &mv).unwrap();
    assert!(sol.covers(&instance, &schema, &mv));
    // COLOR (12) + BRAND (10) = 22 beats any binary cover (≥ 50 for five
    // color props, or pairs at 10 each)
    assert!(sol.picks.contains(&MixedPick::MultiValued(0)));
    assert!(sol.cost <= Weight::new(22));
}

#[test]
fn attribute_merge_shrinks_the_instance() {
    let (instance, schema) = color_world();
    let (merged, mapping) =
        merge_to_attributes(&instance, &schema, Weights::uniform(7u64)).unwrap();
    // five color properties collapse into one attribute
    assert!(merged.num_properties() < instance.num_properties());
    assert_eq!(mapping[&PropId(0)], mapping[&PropId(4)]);
    // the merged instance is a plain MC3 instance
    let sol = Mc3Solver::new().solve(&merged).unwrap();
    sol.verify(&merged).unwrap();
}

#[test]
fn bounded_classifiers_still_cover() {
    let ds = mc3::workload::SyntheticConfig::with_queries(500).generate();
    for kp in [1usize, 2, 3] {
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(kp)
            .solve(&ds.instance)
            .unwrap();
        sol.verify(&ds.instance).unwrap();
        assert!(sol.classifiers().iter().all(|c| c.len() <= kp));
    }
}

#[test]
fn singleton_only_universe_equals_property_oriented() {
    let ds = mc3::workload::SyntheticConfig::with_queries(300).generate();
    let k1 = Mc3Solver::new()
        .algorithm(Algorithm::General)
        .max_classifier_len(1)
        .solve(&ds.instance)
        .unwrap();
    let po = Mc3Solver::new()
        .algorithm(Algorithm::PropertyOriented)
        .solve(&ds.instance)
        .unwrap();
    // with only singletons available, the unique minimal cover is PO's
    assert_eq!(k1.cost(), po.cost());
}

#[test]
fn partial_cover_monotone_in_budget() {
    let ds = mc3::workload::SyntheticConfig::with_queries(100).generate();
    let values: Vec<u64> = (0..ds.instance.num_queries() as u64)
        .map(|i| 1 + i % 7)
        .collect();
    let mut last_value = 0;
    for budget in [0u64, 20, 100, 100_000] {
        let out = solve_partial_cover(&ds.instance, &values, Weight::new(budget)).unwrap();
        assert!(
            out.covered_value >= last_value,
            "value dropped as budget grew"
        );
        assert!(out.solution.cost() <= Weight::new(budget));
        last_value = out.covered_value;
    }
    // an effectively unlimited budget covers everything
    let out = solve_partial_cover(&ds.instance, &values, Weight::new(u32::MAX as u64)).unwrap();
    assert_eq!(out.covered_queries.len(), ds.instance.num_queries());
    out.solution.verify(&ds.instance).unwrap();
}

#[test]
fn partial_cover_respects_importance_ordering() {
    // two disjoint equally-priced queries; only budget for one — the more
    // important must win regardless of input order
    let instance =
        Instance::new(vec![vec![0u32, 1], vec![2u32, 3]], Weights::uniform(4u64)).unwrap();
    let a = solve_partial_cover(&instance, &[1, 9], Weight::new(4)).unwrap();
    assert_eq!(a.covered_value, 9);
    let b = solve_partial_cover(&instance, &[9, 1], Weight::new(4)).unwrap();
    assert_eq!(b.covered_value, 9);
}
