//! Integration tests of the paper's theory via the facade: the §5.1
//! hardness reductions, the §5.2 parameter analysis, and the relationships
//! between the algorithms' outputs.

use mc3::core::InstanceStats;
use mc3::prelude::*;
use mc3::solver::hardness::{
    reduce_set_cover_theorem_5_1, reduce_set_cover_theorem_5_2, SetCoverInput,
};
use mc3::solver::Algorithm;

fn petersen_like_sc() -> SetCoverInput {
    // 6 elements, 5 sets; known optimum 2 ({0,1,2} + {3,4,5})
    SetCoverInput {
        num_elements: 6,
        sets: vec![
            vec![0, 1, 2],
            vec![3, 4, 5],
            vec![0, 3],
            vec![1, 4],
            vec![2, 5],
        ],
    }
}

#[test]
fn theorem_5_1_parameters_transfer() {
    // SC with frequency f and degree Δ becomes MC3 with k = f + 1, I = Δ
    let sc = petersen_like_sc();
    let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
    let stats = InstanceStats::gather(&red.instance);
    // every element is in exactly 2 sets → every query has length f + 1 = 3
    assert_eq!(stats.max_query_len, 3);
    assert_eq!(stats.num_queries, 6);
    // the paper's parameter argument: each set-property appears in exactly
    // as many queries as its SC set has elements (I = Δ). Note the model's
    // I(S) convention zeroes infinite-weight classifiers, and singletons
    // are omitted (infinite) in this reduction — so count queries directly.
    for (i, &sp) in red.set_props.iter().enumerate() {
        let occurrences = red
            .instance
            .queries()
            .iter()
            .filter(|q| q.contains(sp))
            .count();
        assert_eq!(occurrences, sc.sets[i].len(), "set-property {i}");
    }
    // the finite-weight (e, set-property) pair classifiers carry the
    // reduction's incidence parameter
    let u = ClassifierUniverse::build(&red.instance);
    for (i, &sp) in red.set_props.iter().enumerate() {
        let pair = PropSet::from_ids([sp.0, red.e_prop.0]);
        let id = u.id_of(&pair).unwrap();
        assert_eq!(u.incidence(id) as usize, sc.sets[i].len(), "pair {i}");
    }
}

#[test]
fn theorem_5_1_end_to_end_cover_translation() {
    let sc = petersen_like_sc();
    let red = reduce_set_cover_theorem_5_1(&sc).unwrap();
    let exact = Mc3Solver::new()
        .algorithm(Algorithm::Exact)
        .solve(&red.instance)
        .unwrap();
    assert_eq!(exact.cost().raw(), 2); // SC optimum
    let cover = red.extract_set_cover(&exact);
    assert!(sc.is_cover(&cover));
    assert_eq!(cover.len(), 2);
    // the approximation algorithms translate to valid SC covers too
    for alg in [Algorithm::General, Algorithm::LocalGreedy] {
        let sol = Mc3Solver::new()
            .algorithm(alg)
            .solve(&red.instance)
            .unwrap();
        let cover = red.extract_set_cover(&sol);
        assert!(sc.is_cover(&cover), "{alg:?} produced a non-cover");
        assert_eq!(cover.len() as u64, sol.cost().raw());
    }
}

#[test]
fn theorem_5_2_single_long_query() {
    let sc = petersen_like_sc();
    let instance = reduce_set_cover_theorem_5_2(&sc).unwrap();
    assert_eq!(instance.num_queries(), 1);
    assert_eq!(instance.max_query_len(), 6);
    let exact = Mc3Solver::new()
        .algorithm(Algorithm::Exact)
        .solve(&instance)
        .unwrap();
    assert_eq!(exact.cost().raw(), 2);
}

#[test]
fn parameter_analysis_bounds_hold_on_generated_data() {
    // §5.2: n̂ ≤ nk, m̂ ≤ n·2^(k−1), Δ ≤ (k−1)·I, f ≤ 2^(k−1)
    let ds = mc3::workload::SyntheticConfig::with_queries(500).generate();
    let stats = InstanceStats::gather(&ds.instance);
    let (n, k) = (stats.num_queries as u64, stats.max_query_len as u64);
    assert!(stats.sum_query_lens as u64 <= n * k);
    assert!((stats.num_classifiers as u64) <= n * (1 << (k - 1)));
    assert!(stats.wsc_frequency_bound() <= 1 << (k - 1));
    assert!(stats.wsc_degree_bound() <= (k - 1) * stats.max_incidence as u64);
}

#[test]
fn algorithm_cost_ordering_invariants() {
    // On any instance: exact ≤ MC3 ≤ each baseline it subsumes is NOT
    // guaranteed, but exact ≤ everything always is.
    let ds = mc3::workload::PrivateConfig::with_queries(300).generate();
    let sub = mc3::workload::random_subset(&ds.instance, 20, 5).unwrap();
    let exact = Mc3Solver::new()
        .algorithm(Algorithm::Exact)
        .solve(&sub)
        .unwrap();
    for alg in [
        Algorithm::Auto,
        Algorithm::General,
        Algorithm::ShortFirst,
        Algorithm::LocalGreedy,
        Algorithm::QueryOriented,
        Algorithm::PropertyOriented,
    ] {
        let sol = Mc3Solver::new().algorithm(alg).solve(&sub).unwrap();
        assert!(
            sol.cost() >= exact.cost(),
            "{alg:?} cost {} beat the optimum {}",
            sol.cost(),
            exact.cost()
        );
    }
}

#[test]
fn custom_cost_model_through_the_full_pipeline() {
    // the paper's estimated-cost hook: cost grows with conjunction length,
    // except "branded team" pairs which are cheap
    let weights = Weights::custom(|c: &PropSet| {
        if c.len() == 2 && c.iter().any(|p| p.0 >= 100) {
            Weight::new(3)
        } else {
            Weight::new(10 * c.len() as u64)
        }
    });
    let instance = Instance::new(
        vec![vec![1u32, 100], vec![2u32, 100], vec![1u32, 2]],
        weights,
    )
    .unwrap();
    let sol = Mc3Solver::new().solve(&instance).unwrap();
    sol.verify(&instance).unwrap();
    let exact = Mc3Solver::new()
        .algorithm(Algorithm::Exact)
        .solve(&instance)
        .unwrap();
    assert!(sol.cost() >= exact.cost());
    // cheap pairs must appear: covering {1,100} and {2,100} via pairs costs
    // 3+3; query {1,2} needs 1 and 2 → X1(10) + X2(10); total 26 ≤ exact
    // alternative all-singletons 30
    assert_eq!(exact.cost(), Weight::new(26));
}
