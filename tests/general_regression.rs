//! Wall-clock regression tests for `Algorithm::General`.
//!
//! The synthetic q=80 seed=3 workload used to hang the general pipeline:
//! its reduced WSC component produced a degenerate covering LP on which the
//! pure-Dantzig simplex cycled forever. The anti-cycling rule in
//! `mc3-lp` (Bland's rule after a degenerate-pivot streak, plus a hard
//! pivot bound) terminates it; this test pins the fix with a wall-clock
//! bound generous enough for debug builds and loaded CI machines.

use mc3::solver::{Algorithm, Mc3Solver};
use mc3::workload::SyntheticConfig;
use std::time::{Duration, Instant};

#[test]
fn synthetic_q80_seed3_terminates_under_general() {
    let ds = SyntheticConfig::with_queries(80).seed(3).generate();
    let start = Instant::now();
    let solution = Mc3Solver::new()
        .algorithm(Algorithm::General)
        .solve(&ds.instance)
        .expect("general must solve the q=80 seed=3 workload");
    let elapsed = start.elapsed();
    solution.verify(&ds.instance).expect("must cover");
    // Release-mode target is < 10 s (it actually runs in milliseconds);
    // 120 s absorbs debug builds and CI noise while still catching a
    // reintroduced simplex cycle (which never terminates).
    assert!(
        elapsed < Duration::from_secs(120),
        "general took {elapsed:?} on synthetic q=80 seed=3 — simplex cycling regression?"
    );
}
