//! Property-based tests of the paper's theoretical claims:
//!
//! * Algorithm 2 is exact for `k ≤ 2` (Theorem 4.1);
//! * Algorithm 1 preserves at least one optimal solution (§3);
//! * Algorithm 3 stays within the Theorem 5.3 guarantee;
//! * determinism and parallel/sequential agreement.

use mc3::prelude::*;
use mc3::solver::{Algorithm, PreprocessOptions};
use proptest::prelude::*;

/// Strategy: a random small instance (queries + seeded weights).
fn arb_instance(
    max_props: u32,
    max_len: usize,
    max_queries: usize,
) -> impl Strategy<Value = Instance> {
    let query = prop::collection::vec(0..max_props, 1..=max_len);
    (prop::collection::vec(query, 1..=max_queries), any::<u64>()).prop_map(
        move |(queries, seed)| {
            Instance::new(queries, Weights::seeded(seed, 1, 30)).expect("valid random instance")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn k2_solver_matches_exact_optimum(instance in arb_instance(8, 2, 8)) {
        let k2 = Mc3Solver::new().algorithm(Algorithm::K2Exact).solve(&instance).unwrap();
        k2.verify(&instance).unwrap();
        let exact = Mc3Solver::new().algorithm(Algorithm::Exact).solve(&instance).unwrap();
        prop_assert_eq!(k2.cost(), exact.cost());
    }

    #[test]
    fn preprocessing_preserves_the_optimum(instance in arb_instance(7, 3, 6)) {
        let with = mc3::solver::exact::solve_exact_with(&instance, &PreprocessOptions::default()).unwrap();
        let without = mc3::solver::exact::solve_exact_with(&instance, &PreprocessOptions::disabled()).unwrap();
        with.verify(&instance).unwrap();
        without.verify(&instance).unwrap();
        prop_assert_eq!(with.cost(), without.cost());
    }

    #[test]
    fn general_respects_theorem_5_3(instance in arb_instance(9, 4, 6)) {
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve_report(&instance)
            .unwrap();
        report.solution.verify(&instance).unwrap();
        let exact = Mc3Solver::new().algorithm(Algorithm::Exact).solve(&instance).unwrap();
        let guarantee = report.instance_stats.approximation_guarantee();
        prop_assert!(
            report.solution.cost().raw() as f64 <= guarantee * exact.cost().raw() as f64 + 1e-9,
            "cost {} exceeds {:.2} × OPT ({})",
            report.solution.cost(), guarantee, exact.cost()
        );
        // and it can never beat the optimum
        prop_assert!(report.solution.cost() >= exact.cost());
    }

    #[test]
    fn short_first_covers_and_never_beats_exact(instance in arb_instance(9, 4, 6)) {
        let sf = Mc3Solver::new().algorithm(Algorithm::ShortFirst).solve(&instance).unwrap();
        sf.verify(&instance).unwrap();
        let exact = Mc3Solver::new().algorithm(Algorithm::Exact).solve(&instance).unwrap();
        prop_assert!(sf.cost() >= exact.cost());
    }

    #[test]
    fn all_baselines_cover(instance in arb_instance(10, 4, 8)) {
        for alg in [Algorithm::LocalGreedy, Algorithm::QueryOriented, Algorithm::PropertyOriented] {
            let sol = Mc3Solver::new().algorithm(alg).solve(&instance).unwrap();
            sol.verify(&instance).unwrap();
        }
    }

    #[test]
    fn solving_is_deterministic(instance in arb_instance(9, 4, 8)) {
        let a = Mc3Solver::new().solve(&instance).unwrap();
        let b = Mc3Solver::new().solve(&instance).unwrap();
        prop_assert_eq!(a.classifiers(), b.classifiers());
        prop_assert_eq!(a.cost(), b.cost());
    }

    #[test]
    fn parallel_matches_sequential(instance in arb_instance(20, 3, 10)) {
        let seq = Mc3Solver::new().solve(&instance).unwrap();
        let par = Mc3Solver::new().parallel(true).solve(&instance).unwrap();
        prop_assert_eq!(seq.cost(), par.cost());
        prop_assert_eq!(seq.classifiers(), par.classifiers());
    }

    #[test]
    fn bounded_universe_never_beats_the_full_one(instance in arb_instance(8, 4, 6)) {
        let full = Mc3Solver::new().algorithm(Algorithm::General).solve(&instance).unwrap();
        let bounded = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(2)
            .solve(&instance);
        // the bounded universe always contains all singletons, so the
        // instance stays coverable under seeded (finite) weights
        let bounded = bounded.unwrap();
        bounded.verify(&instance).unwrap();
        prop_assert!(bounded.classifiers().iter().all(|c| c.len() <= 2));
        // sanity only: both cover; costs may go either way because both are
        // heuristics over different universes, but the bounded optimum is a
        // subset space — compare against exact to keep the claim sound
        let exact_full = Mc3Solver::new().algorithm(Algorithm::Exact).solve(&instance).unwrap();
        prop_assert!(full.cost() >= exact_full.cost());
    }

    #[test]
    fn uniform_k2_mixed_equals_k2(instance in prop::collection::vec(prop::collection::vec(0..8u32, 1..=2), 1..=8)) {
        let instance = Instance::new(instance, Weights::uniform(1u64)).unwrap();
        let mixed = Mc3Solver::new().algorithm(Algorithm::Mixed).solve(&instance).unwrap();
        let k2 = Mc3Solver::new().algorithm(Algorithm::K2Exact).solve(&instance).unwrap();
        prop_assert_eq!(mixed.cost(), k2.cost());
    }
}
