//! Property-based tests of the paper's theoretical claims:
//!
//! * Algorithm 2 is exact for `k ≤ 2` (Theorem 4.1);
//! * Algorithm 1 preserves at least one optimal solution (§3);
//! * Algorithm 3 stays within the Theorem 5.3 guarantee;
//! * determinism and parallel/sequential agreement.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3::core::rng::StdRng`], printing the seed on failure.

use mc3::core::rng::prelude::*;
use mc3::prelude::*;
use mc3::solver::{Algorithm, PreprocessOptions};

const CASES: u64 = 64;

/// A random small instance (queries + seeded weights).
fn rand_instance(rng: &mut StdRng, max_props: u32, max_len: usize, max_queries: usize) -> Instance {
    let nq = rng.gen_range(1..=max_queries);
    let queries: Vec<Vec<u32>> = (0..nq)
        .map(|_| {
            let len = rng.gen_range(1..=max_len);
            (0..len).map(|_| rng.gen_range(0..max_props)).collect()
        })
        .collect();
    let wseed = rng.gen::<u64>();
    Instance::new(queries, Weights::seeded(wseed, 1, 30)).expect("valid random instance")
}

#[test]
fn k2_solver_matches_exact_optimum() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 8, 2, 8);
        let k2 = Mc3Solver::new()
            .algorithm(Algorithm::K2Exact)
            .solve(&instance)
            .expect("solvable");
        k2.verify(&instance).expect("valid cover");
        let exact = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&instance)
            .expect("solvable");
        assert_eq!(k2.cost(), exact.cost(), "seed {seed}");
    }
}

#[test]
fn preprocessing_preserves_the_optimum() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 7, 3, 6);
        let with = mc3::solver::exact::solve_exact_with(&instance, &PreprocessOptions::default())
            .expect("solvable");
        let without =
            mc3::solver::exact::solve_exact_with(&instance, &PreprocessOptions::disabled())
                .expect("solvable");
        with.verify(&instance).expect("valid cover");
        without.verify(&instance).expect("valid cover");
        assert_eq!(with.cost(), without.cost(), "seed {seed}");
    }
}

#[test]
fn general_respects_theorem_5_3() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 9, 4, 6);
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve_report(&instance)
            .expect("solvable");
        report.solution.verify(&instance).expect("valid cover");
        let exact = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&instance)
            .expect("solvable");
        let guarantee = report.instance_stats.approximation_guarantee();
        assert!(
            report.solution.cost().raw() as f64 <= guarantee * exact.cost().raw() as f64 + 1e-9,
            "cost {} exceeds {:.2} × OPT ({}), seed {seed}",
            report.solution.cost(),
            guarantee,
            exact.cost()
        );
        // and it can never beat the optimum
        assert!(
            report.solution.cost() >= exact.cost(),
            "below OPT, seed {seed}"
        );
    }
}

#[test]
fn short_first_covers_and_never_beats_exact() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 9, 4, 6);
        let sf = Mc3Solver::new()
            .algorithm(Algorithm::ShortFirst)
            .solve(&instance)
            .expect("solvable");
        sf.verify(&instance).expect("valid cover");
        let exact = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&instance)
            .expect("solvable");
        assert!(sf.cost() >= exact.cost(), "below OPT, seed {seed}");
    }
}

#[test]
fn all_baselines_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 10, 4, 8);
        for alg in [
            Algorithm::LocalGreedy,
            Algorithm::QueryOriented,
            Algorithm::PropertyOriented,
        ] {
            let sol = Mc3Solver::new()
                .algorithm(alg)
                .solve(&instance)
                .expect("solvable");
            sol.verify(&instance).expect("valid cover");
        }
    }
}

#[test]
fn solving_is_deterministic() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 9, 4, 8);
        let a = Mc3Solver::new().solve(&instance).expect("solvable");
        let b = Mc3Solver::new().solve(&instance).expect("solvable");
        assert_eq!(a.classifiers(), b.classifiers(), "seed {seed}");
        assert_eq!(a.cost(), b.cost(), "seed {seed}");
    }
}

#[test]
fn parallel_matches_sequential() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 20, 3, 10);
        let seq = Mc3Solver::new().solve(&instance).expect("solvable");
        let par = Mc3Solver::new()
            .parallel(true)
            .solve(&instance)
            .expect("solvable");
        assert_eq!(seq.cost(), par.cost(), "seed {seed}");
        assert_eq!(seq.classifiers(), par.classifiers(), "seed {seed}");
    }
}

#[test]
fn bounded_universe_never_beats_the_full_one() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng, 8, 4, 6);
        let full = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve(&instance)
            .expect("solvable");
        // the bounded universe always contains all singletons, so the
        // instance stays coverable under seeded (finite) weights
        let bounded = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(2)
            .solve(&instance)
            .expect("solvable");
        bounded.verify(&instance).expect("valid cover");
        assert!(
            bounded.classifiers().iter().all(|c| c.len() <= 2),
            "seed {seed}"
        );
        // sanity only: both cover; costs may go either way because both are
        // heuristics over different universes, but the bounded optimum is a
        // subset space — compare against exact to keep the claim sound
        let exact_full = Mc3Solver::new()
            .algorithm(Algorithm::Exact)
            .solve(&instance)
            .expect("solvable");
        assert!(full.cost() >= exact_full.cost(), "below OPT, seed {seed}");
    }
}

#[test]
fn uniform_k2_mixed_equals_k2() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let nq = rng.gen_range(1..=8usize);
        let queries: Vec<Vec<u32>> = (0..nq)
            .map(|_| {
                let len = rng.gen_range(1..=2usize);
                (0..len).map(|_| rng.gen_range(0..8u32)).collect()
            })
            .collect();
        let instance = Instance::new(queries, Weights::uniform(1u64)).expect("valid");
        let mixed = Mc3Solver::new()
            .algorithm(Algorithm::Mixed)
            .solve(&instance)
            .expect("solvable");
        let k2 = Mc3Solver::new()
            .algorithm(Algorithm::K2Exact)
            .solve(&instance)
            .expect("solvable");
        assert_eq!(mixed.cost(), k2.cost(), "seed {seed}");
    }
}
