//! End-to-end pipeline tests: generators → solvers → verified solutions,
//! cross-checking every algorithm against the exact reference on small
//! instances and against each other on generated datasets.

use mc3::prelude::*;
use mc3::solver::Algorithm;
use mc3::workload::{BestBuyConfig, PrivateConfig, SyntheticConfig};

#[test]
fn every_algorithm_covers_the_bestbuy_dataset() {
    let ds = BestBuyConfig::with_queries(300).generate();
    for alg in [
        Algorithm::Auto,
        Algorithm::General,
        Algorithm::ShortFirst,
        Algorithm::LocalGreedy,
        Algorithm::QueryOriented,
        Algorithm::PropertyOriented,
    ] {
        let sol = Mc3Solver::new().algorithm(alg).solve(&ds.instance).unwrap();
        sol.verify(&ds.instance)
            .unwrap_or_else(|e| panic!("{alg:?} produced a non-cover: {e}"));
    }
}

#[test]
fn every_algorithm_covers_the_private_dataset() {
    let ds = PrivateConfig::with_queries(1_000).generate();
    for alg in [
        Algorithm::Auto,
        Algorithm::General,
        Algorithm::ShortFirst,
        Algorithm::LocalGreedy,
        Algorithm::QueryOriented,
        Algorithm::PropertyOriented,
    ] {
        let sol = Mc3Solver::new().algorithm(alg).solve(&ds.instance).unwrap();
        sol.verify(&ds.instance)
            .unwrap_or_else(|e| panic!("{alg:?} produced a non-cover: {e}"));
    }
}

#[test]
fn synthetic_dataset_solves_with_and_without_preprocessing() {
    let ds = SyntheticConfig::with_queries(2_000).generate();
    let with = Mc3Solver::new().solve_report(&ds.instance).unwrap();
    let without = Mc3Solver::new()
        .without_preprocessing()
        .solve_report(&ds.instance)
        .unwrap();
    with.solution.verify(&ds.instance).unwrap();
    without.solution.verify(&ds.instance).unwrap();
    assert!(
        with.preprocess_stats.removed_by_decomposition > 0,
        "preprocessing should prune something on a 2000-query workload"
    );
}

#[test]
fn k2_pipeline_is_optimal_on_short_bestbuy() {
    // BB restricted to short queries: MC3[S] must match the exact optimum
    // and beat-or-match every baseline.
    let ds = BestBuyConfig::with_queries(120).generate();
    let short = ds.instance.filter_queries(|q| q.len() <= 2).unwrap();
    let k2 = Mc3Solver::new()
        .algorithm(Algorithm::K2Exact)
        .solve(&short)
        .unwrap();
    let mixed = Mc3Solver::new()
        .algorithm(Algorithm::Mixed)
        .solve(&short)
        .unwrap();
    let qo = Mc3Solver::new()
        .algorithm(Algorithm::QueryOriented)
        .solve(&short)
        .unwrap();
    let po = Mc3Solver::new()
        .algorithm(Algorithm::PropertyOriented)
        .solve(&short)
        .unwrap();
    assert_eq!(k2.cost(), mixed.cost(), "two exact algorithms must agree");
    assert!(k2.cost() <= qo.cost());
    assert!(k2.cost() <= po.cost());
}

#[test]
fn general_beats_or_matches_trivial_baselines_after_refinement() {
    // Not guaranteed in theory (greedy is an approximation), but with
    // reverse-delete on the paper's datasets MC3[G] should never lose to
    // Query-Oriented (which is itself in the search space).
    let ds = PrivateConfig::with_queries(2_000).generate();
    let g = Mc3Solver::new()
        .algorithm(Algorithm::General)
        .solve(&ds.instance)
        .unwrap();
    let qo = Mc3Solver::new()
        .algorithm(Algorithm::QueryOriented)
        .solve(&ds.instance)
        .unwrap();
    assert!(
        g.cost() <= qo.cost(),
        "MC3[G] {} vs QO {}",
        g.cost(),
        qo.cost()
    );
}

#[test]
fn report_exposes_consistent_statistics() {
    let ds = SyntheticConfig::with_queries(500).generate();
    let report = Mc3Solver::new().solve_report(&ds.instance).unwrap();
    assert_eq!(report.instance_stats.num_queries, 500);
    assert!(report.instance_stats.max_query_len <= 10);
    assert!(report.timings.total >= report.timings.solve);
    let g = report.instance_stats.approximation_guarantee();
    assert!(g >= 1.0);
}

#[test]
fn uncoverable_instances_error_cleanly_everywhere() {
    // property 1 has no finite-weight classifier at all
    let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
    let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
    for alg in [
        Algorithm::Auto,
        Algorithm::General,
        Algorithm::ShortFirst,
        Algorithm::LocalGreedy,
        Algorithm::Exact,
    ] {
        let err = Mc3Solver::new().algorithm(alg).solve(&instance);
        assert!(err.is_err(), "{alg:?} must report uncoverable");
    }
}

#[test]
fn solution_classifiers_are_always_relevant() {
    // no selected classifier may lie outside every query (C_Q membership)
    let ds = SyntheticConfig::with_queries(800).generate();
    let sol = Mc3Solver::new().solve(&ds.instance).unwrap();
    for c in sol.classifiers() {
        assert!(
            ds.instance.queries().iter().any(|q| c.is_subset_of(q)),
            "classifier {c} is not relevant to any query"
        );
    }
}
