#![warn(missing_docs)]

//! Weighted Set Cover (WSC) substrate for the general MC³ solver.
//!
//! The paper's Algorithm 3 reduces MC³ to WSC (§5.2) and runs *both* the
//! greedy algorithm (Chvátal \[6\], `(ln Δ + 1)`-approximation, implemented
//! with the lazy-heap trick of \[9\] in `O(log m · Σ|s|)`) and the LP-based
//! `f`-approximation (\[50\]), returning the cheaper output. This crate
//! provides:
//!
//! * [`SetCoverInstance`] — the dense WSC representation (CSR incidence
//!   in both directions) with its `frequency` (`f`) and `degree` (`Δ`)
//!   parameters;
//! * [`bitcover`] — the shared [`BitCover`] bitset coverage kernel the hot
//!   loops of [`greedy`], [`prune`] and [`local_search`] run on (see
//!   `docs/performance.md`);
//! * [`greedy`] — lazy-heap Chvátal greedy;
//! * [`primal_dual`] — the Bar-Yehuda–Even combinatorial `f`-approximation
//!   (LP-duality based; same guarantee as LP rounding, near-linear time);
//! * [`lp_round`] — the literal LP-relaxation rounding using `mc3-lp`'s
//!   simplex (for small/medium instances);
//! * [`exact`] — a branch-and-bound exact solver used as the reference
//!   optimum in tests and for small sub-instances.

pub mod bitcover;
pub mod components;
pub mod exact;
pub mod greedy;
pub mod instance;
pub mod local_search;
pub mod lp_round;
pub mod primal_dual;
pub mod prune;
#[cfg(feature = "verify")]
pub mod verify;

pub use bitcover::BitCover;
pub use components::{solve_exact_by_components, split_components, WscComponent};
pub use exact::solve_exact;
pub use greedy::solve_greedy;
pub use instance::{SetCoverInstance, SetCoverSolution, SetId};
pub use local_search::local_search;
pub use lp_round::solve_lp_rounding;
pub use primal_dual::solve_primal_dual;
pub use prune::prune_redundant;
