//! Exact WSC via branch-and-bound — the reference optimum for tests,
//! approximation-ratio checks, and tiny sub-instances.
//!
//! Branches on the uncovered element contained in the fewest sets, trying
//! its candidate sets in ascending cost order; prunes with the best
//! incumbent and an admissible lower bound (the most expensive
//! "cheapest-set-for-an-uncovered-element"). Instances are limited to 128
//! elements (covered state is a `u128` bitmask) — WSC is NP-hard, this is a
//! verifier, not a scalable solver.

use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;
use mc3_core::{Mc3Error, Result};

/// Maximum element count accepted by [`solve_exact`].
pub const MAX_EXACT_ELEMENTS: usize = 128;

/// Solves WSC exactly. Errors on uncoverable instances; panics if the
/// instance exceeds [`MAX_EXACT_ELEMENTS`].
pub fn solve_exact(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    let _span = mc3_telemetry::span("setcover.exact");
    assert!(
        instance.num_elements() <= MAX_EXACT_ELEMENTS,
        "exact solver limited to {MAX_EXACT_ELEMENTS} elements"
    );
    instance.ensure_coverable()?;

    let n = instance.num_elements();
    let m = instance.num_sets();
    let full: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };

    let set_masks: Vec<u128> = (0..m)
        .map(|s| {
            instance
                .set(s)
                .iter()
                .fold(0u128, |acc, &e| acc | (1u128 << e))
        })
        .collect();
    // candidates per element, sorted by ascending cost (ties: id)
    let mut candidates: Vec<Vec<u32>> = (0..n)
        .map(|e| instance.containing(u32_of(e)).to_vec())
        .collect();
    for c in &mut candidates {
        c.sort_by_key(|&s| (instance.cost(s as usize).raw(), s));
    }
    let min_cost_for: Vec<u64> = (0..n)
        .map(|e| instance.cost(candidates[e][0] as usize).raw())
        .collect();

    struct Ctx<'a> {
        instance: &'a SetCoverInstance,
        set_masks: Vec<u128>,
        candidates: Vec<Vec<u32>>,
        min_cost_for: Vec<u64>,
        full: u128,
        best_cost: u64,
        best: Vec<usize>,
        stack: Vec<usize>,
    }

    fn lower_bound(ctx: &Ctx<'_>, covered: u128) -> u64 {
        let mut rem = !covered & ctx.full;
        let mut lb = 0u64;
        while rem != 0 {
            let e = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            lb = lb.max(ctx.min_cost_for[e]);
        }
        lb
    }

    fn search(ctx: &mut Ctx<'_>, covered: u128, cost: u64) {
        if covered == ctx.full {
            if cost < ctx.best_cost {
                ctx.best_cost = cost;
                ctx.best = ctx.stack.clone();
            }
            return;
        }
        if cost.saturating_add(lower_bound(ctx, covered)) >= ctx.best_cost {
            return;
        }
        // branch on the uncovered element with the fewest candidates
        let mut rem = !covered & ctx.full;
        let mut pick = usize::MAX;
        let mut pick_deg = usize::MAX;
        while rem != 0 {
            let e = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let deg = ctx.candidates[e].len();
            if deg < pick_deg {
                pick_deg = deg;
                pick = e;
            }
        }
        let cands = ctx.candidates[pick].clone();
        for s in cands {
            let s = s as usize;
            let add = ctx.instance.cost(s).raw();
            if cost.saturating_add(add) >= ctx.best_cost {
                // candidates are cost-sorted, but a later set could still
                // tie at equal cost; only strictly-greater lets us break.
                if cost.saturating_add(add) > ctx.best_cost {
                    break;
                }
                continue;
            }
            ctx.stack.push(s);
            search(ctx, covered | ctx.set_masks[s], cost + add);
            ctx.stack.pop();
        }
    }

    let mut ctx = Ctx {
        instance,
        set_masks,
        candidates,
        min_cost_for,
        full,
        best_cost: u64::MAX,
        best: Vec::new(),
        stack: Vec::new(),
    };
    search(&mut ctx, 0, 0);
    if ctx.best_cost == u64::MAX {
        return Err(Mc3Error::Internal(
            "exact search found no cover for a coverable instance".to_owned(),
        ));
    }
    Ok(SetCoverSolution::new(instance, ctx.best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    /// Exhaustive optimum over all set subsets (for cross-checking B&B).
    fn brute(instance: &SetCoverInstance) -> Option<u64> {
        let m = instance.num_sets();
        assert!(m <= 16);
        let mut best = None;
        for mask in 0u32..(1 << m) {
            let mut covered = vec![false; instance.num_elements()];
            let mut cost = 0u64;
            for s in 0..m {
                if mask & (1 << s) != 0 {
                    cost += instance.cost(s).raw();
                    for &e in instance.set(s) {
                        covered[e as usize] = true;
                    }
                }
            }
            if covered.iter().all(|&c| c) && best.is_none_or(|b| cost < b) {
                best = Some(cost);
            }
        }
        best
    }

    #[test]
    fn simple_optimum() {
        let inst = SetCoverInstance::new(
            3,
            vec![
                (vec![0, 1, 2], w(5)),
                (vec![0, 1], w(2)),
                (vec![2], w(2)),
                (vec![0], w(1)),
            ],
        );
        let sol = solve_exact(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.cost, w(4)); // {0,1} + {2}
    }

    #[test]
    fn greedy_trap_solved_optimally() {
        // Greedy prefers ratio; exact must find the cheaper overall answer.
        let inst = SetCoverInstance::new(
            4,
            vec![
                (vec![0, 1, 2], w(3)), // ratio 1
                (vec![0, 1], w(1)),
                (vec![2, 3], w(1)),
            ],
        );
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.cost, w(2));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let n = rng.gen_range(1..=7usize);
            let m = rng.gen_range(1..=8usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..20))));
            }
            for _ in 0..m {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.45)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..20))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let sol = solve_exact(&inst).unwrap();
            assert!(sol.is_cover(&inst));
            assert_eq!(Some(sol.cost.raw()), brute(&inst));
        }
    }

    #[test]
    fn zero_cost_sets_handled() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], Weight::ZERO)]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.cost, Weight::ZERO);
    }

    #[test]
    fn uncoverable_errors() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(1))]);
        assert!(solve_exact(&inst).is_err());
    }

    #[test]
    fn duplicate_sets_pick_one() {
        let inst = SetCoverInstance::new(1, vec![(vec![0], w(3)), (vec![0], w(3))]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.selected.len(), 1);
        assert_eq!(sol.cost, w(3));
    }
}
