//! Reverse-delete pruning of WSC solutions.
//!
//! Greedy (and rounding) outputs often contain sets that later selections
//! made redundant — every element they cover is covered again by another
//! selected set. Dropping such sets, most expensive first, can only lower
//! the cost, so all approximation guarantees are preserved. This is one of
//! the practice-oriented heuristics the paper applies on top of its
//! guarantee-carrying algorithms (§1: "augment both algorithms with
//! heuristics which preserve the approximation guarantees, yet improve in
//! practice ... the quality of the solution").

use crate::bitcover::BitCover;
use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;

/// Removes redundant sets from `solution` (most expensive first; ties by
/// larger id for determinism). The result covers exactly the same elements.
pub fn prune_redundant(
    instance: &SetCoverInstance,
    solution: &SetCoverSolution,
) -> SetCoverSolution {
    // multiplicity[e] = how many selected sets cover e; the `unique` bitmap
    // tracks the elements with multiplicity exactly 1 — a set is removable
    // iff it touches none of them (every element of a selected set has
    // multiplicity ≥ 1, so "all ≥ 2" ⇔ "none == 1"), turning the per-set
    // test into an early-exit bitmap probe.
    let mut multiplicity = vec![0u32; instance.num_elements()];
    let mut unique = BitCover::new(instance.num_elements());
    for &s in &solution.selected {
        for &e in instance.set(s) {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
            multiplicity[e as usize] += 1;
        }
    }
    for (e, &m) in multiplicity.iter().enumerate() {
        if m == 1 {
            unique.set(u32_of(e));
        }
    }
    let mut order = solution.selected.clone();
    order.sort_by_key(|&s| (std::cmp::Reverse(instance.cost(s)), std::cmp::Reverse(s)));

    let mut keep: Vec<usize> = Vec::with_capacity(order.len());
    // Steady-state reverse-delete loop: all buffers preallocated above, so
    // this span records zero allocations (pinned by `mc3-audit consistency`).
    let prune_span = mc3_telemetry::span("setcover.prune");
    for s in order {
        let removable = !unique.intersects(instance.set(s));
        if removable && !instance.cost(s).is_zero() {
            for &e in instance.set(s) {
                // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
                let m = &mut multiplicity[e as usize];
                *m -= 1;
                if *m == 1 {
                    unique.set(e);
                }
            }
        } else {
            // audit:allow(no-alloc-in-hot-loops) reviewed: output accumulation with capacity reserved up front
            keep.push(s);
        }
    }
    drop(prune_span);
    mc3_telemetry::span_add(
        mc3_telemetry::Counter::BitCoverWordOps,
        unique.take_word_ops(),
    );
    SetCoverSolution::new(instance, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn drops_fully_shadowed_set() {
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1, 2], w(5)), (vec![0, 1], w(1)), (vec![2], w(1))],
        );
        let sol = SetCoverSolution::new(&inst, vec![0, 1, 2]);
        let pruned = prune_redundant(&inst, &sol);
        assert!(pruned.is_cover(&inst));
        assert_eq!(pruned.selected, vec![1, 2]);
        assert_eq!(pruned.cost, w(2));
    }

    #[test]
    fn keeps_necessary_sets() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(3)), (vec![1], w(4))]);
        let sol = SetCoverSolution::new(&inst, vec![0, 1]);
        let pruned = prune_redundant(&inst, &sol);
        assert_eq!(pruned.selected, vec![0, 1]);
    }

    #[test]
    fn removes_most_expensive_redundancy_first() {
        // Elements 0,1 each covered by three sets; only one needed.
        let inst = SetCoverInstance::new(
            2,
            vec![(vec![0, 1], w(10)), (vec![0, 1], w(2)), (vec![0, 1], w(7))],
        );
        let sol = SetCoverSolution::new(&inst, vec![0, 1, 2]);
        let pruned = prune_redundant(&inst, &sol);
        assert_eq!(pruned.selected, vec![1]);
        assert_eq!(pruned.cost, w(2));
    }

    #[test]
    fn zero_cost_sets_are_never_dropped() {
        let inst = SetCoverInstance::new(1, vec![(vec![0], Weight::ZERO), (vec![0], w(5))]);
        let sol = SetCoverSolution::new(&inst, vec![0, 1]);
        let pruned = prune_redundant(&inst, &sol);
        assert!(pruned.selected.contains(&0));
        assert_eq!(pruned.cost, Weight::ZERO);
    }

    #[test]
    fn never_increases_cost_on_random_greedy_outputs() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(606);
        for _ in 0..50 {
            let n = rng.gen_range(1..=10usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..9))));
            }
            for _ in 0..rng.gen_range(0..=10usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..9))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let sol = solve_greedy(&inst).unwrap();
            let pruned = prune_redundant(&inst, &sol);
            assert!(pruned.is_cover(&inst));
            assert!(pruned.cost <= sol.cost);
        }
    }
}
