//! LP-relaxation rounding for WSC — the literal "LP-based algorithm \[50\]"
//! of the paper's Algorithm 3.
//!
//! Solve `min Σ c_s x_s` subject to `Σ_{s ∋ e} x_s ≥ 1` for every element
//! `e`, `x ≥ 0`, then select every set with `x_s ≥ 1/f` where `f` is the
//! instance frequency. Each constraint has at most `f` variables, so the
//! rounded solution is feasible and costs at most `f · OPT_LP ≤ f · OPT`.
//!
//! The dense simplex makes this path suitable for small/medium instances;
//! Algorithm 3 switches to [`crate::primal_dual`] (same guarantee) above a
//! configurable size threshold.

use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;
use mc3_core::{Mc3Error, Result};
use mc3_lp::{ConstraintOp, LpProblem, LpStatus};

/// Solves WSC by LP rounding. Errors if the instance is uncoverable or the
/// LP solver fails unexpectedly.
pub fn solve_lp_rounding(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    let _span = mc3_telemetry::span("setcover.lp_round");
    instance.ensure_coverable()?;
    if instance.num_elements() == 0 {
        return Ok(SetCoverSolution::new(instance, vec![]));
    }
    let f = instance.frequency().max(1);

    let objective: Vec<f64> = (0..instance.num_sets())
        .map(|s| instance.cost(s).raw() as f64)
        .collect();
    let mut lp = LpProblem::minimize(objective);
    for e in 0..u32_of(instance.num_elements()) {
        let coeffs: Vec<(usize, f64)> = instance
            .containing(e)
            .iter()
            .map(|&s| (s as usize, 1.0))
            .collect();
        lp.constraint(coeffs, ConstraintOp::Ge, 1.0);
    }

    let sol = lp.solve();
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => {
            return Err(Mc3Error::Internal(
                "covering LP reported infeasible despite coverable instance".to_owned(),
            ))
        }
        LpStatus::Unbounded => {
            return Err(Mc3Error::Internal(
                "covering LP reported unbounded (non-negative costs forbid this)".to_owned(),
            ))
        }
        LpStatus::IterationLimit => return Err(Mc3Error::LpIterationLimit { pivots: sol.pivots }),
    }

    let threshold = 1.0 / f as f64 - 1e-7;
    let selected: Vec<usize> = sol
        .values
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x >= threshold)
        .map(|(s, _)| s)
        .collect();
    let rounded = SetCoverSolution::new(instance, selected);
    debug_assert!(rounded.is_cover(instance), "LP rounding must stay feasible");
    Ok(rounded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn integral_lp_recovers_optimum() {
        // Disjoint sets: LP is integral.
        let inst = SetCoverInstance::new(
            4,
            vec![
                (vec![0, 1], w(2)),
                (vec![2, 3], w(3)),
                (vec![0, 1, 2, 3], w(6)),
            ],
        );
        let sol = solve_lp_rounding(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.cost, w(5));
    }

    #[test]
    fn triangle_vertex_cover_rounds_within_factor_two() {
        // VC of a triangle as WSC with f = 2: LP = 1.5, rounding ≤ 3, OPT = 2.
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 2], w(1)), (vec![0, 1], w(1)), (vec![1, 2], w(1))],
        );
        let sol = solve_lp_rounding(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert!(sol.cost <= w(3));
    }

    #[test]
    fn rounding_respects_f_times_opt_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(31337);
        for _ in 0..30 {
            let n = rng.gen_range(1..=6usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..10))));
            }
            for _ in 0..rng.gen_range(0..=5usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..10))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let lp = solve_lp_rounding(&inst).unwrap();
            assert!(lp.is_cover(&inst));
            let opt = crate::exact::solve_exact(&inst).unwrap();
            let f = inst.frequency() as u64;
            assert!(
                lp.cost.raw() <= f * opt.cost.raw(),
                "LP rounding {} exceeds f·OPT = {}·{}",
                lp.cost,
                f,
                opt.cost
            );
        }
    }

    #[test]
    fn zero_cost_sets_always_selected() {
        let inst = SetCoverInstance::new(1, vec![(vec![0], Weight::ZERO), (vec![0], w(4))]);
        let sol = solve_lp_rounding(&inst).unwrap();
        assert_eq!(sol.cost, Weight::ZERO);
    }

    #[test]
    fn uncoverable_errors() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(1))]);
        assert!(solve_lp_rounding(&inst).is_err());
    }

    #[test]
    fn empty_instance() {
        let inst = SetCoverInstance::new(0, vec![(vec![], w(3))]);
        let sol = solve_lp_rounding(&inst).unwrap();
        assert!(sol.selected.is_empty());
    }
}
