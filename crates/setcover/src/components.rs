//! Connected-component decomposition of WSC instances.
//!
//! Two elements interact only if some set contains both (transitively), so
//! an instance splits into independent sub-instances solvable separately —
//! the WSC-level counterpart of the paper's Observation 3.2. Used by the
//! exact reference solver to stay within its per-instance element cap on
//! much larger inputs.

use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;
use mc3_core::Result;

/// A sub-instance plus the mappings back to the parent.
#[derive(Debug)]
pub struct WscComponent {
    /// The sub-instance (elements and sets re-indexed densely).
    pub instance: SetCoverInstance,
    /// `set_map[local_set] = parent set id`.
    pub set_map: Vec<usize>,
    /// `element_map[local_element] = parent element id`.
    pub element_map: Vec<u32>,
}

/// Splits `instance` into its connected components (ordered by smallest
/// parent element). Empty sets are dropped; uncoverable elements (in no
/// set) each form a component with no sets, so coverability checks still
/// surface them.
pub fn split_components(instance: &SetCoverInstance) -> Vec<WscComponent> {
    let n = instance.num_elements();
    // union-find over elements
    let mut parent: Vec<u32> = (0..u32_of(n)).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for s in 0..instance.num_sets() {
        let els = instance.set(s);
        for w in els.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }

    // group elements by root
    let mut groups: mc3_core::FxHashMap<u32, Vec<u32>> = mc3_core::FxHashMap::default();
    for e in 0..u32_of(n) {
        groups.entry(find(&mut parent, e)).or_default().push(e);
    }
    let mut ordered: Vec<Vec<u32>> = groups.into_values().collect();
    for g in &mut ordered {
        g.sort_unstable();
    }
    ordered.sort_by_key(|g| g[0]);

    ordered
        .into_iter()
        .map(|elements| {
            let mut local_of: mc3_core::FxHashMap<u32, u32> = mc3_core::FxHashMap::default();
            for (i, &e) in elements.iter().enumerate() {
                local_of.insert(e, u32_of(i));
            }
            // sets touching this component (every element of such a set is
            // inside it, by construction of the union-find)
            let mut set_map = Vec::new();
            let mut sets = Vec::new();
            let mut seen: mc3_core::FxHashSet<u32> = mc3_core::FxHashSet::default();
            for &e in &elements {
                for &s in instance.containing(e) {
                    if seen.insert(s) {
                        let locals: Vec<u32> = instance
                            .set(s as usize)
                            .iter()
                            .map(|&x| local_of[&x])
                            .collect();
                        sets.push((locals, instance.cost(s as usize)));
                        set_map.push(s as usize);
                    }
                }
            }
            WscComponent {
                instance: SetCoverInstance::new(elements.len(), sets),
                set_map,
                element_map: elements,
            }
        })
        .collect()
}

/// Solves exactly by component decomposition: each component goes through
/// the branch-and-bound solver (so only the *largest component* must fit
/// the element cap, not the whole instance).
pub fn solve_exact_by_components(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    instance.ensure_coverable()?;
    let mut selected = Vec::new();
    for comp in split_components(instance) {
        let sol = crate::exact::solve_exact(&comp.instance)?;
        selected.extend(sol.selected.into_iter().map(|s| comp.set_map[s]));
    }
    Ok(SetCoverSolution::new(instance, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn disjoint_sets_split() {
        let inst = SetCoverInstance::new(
            4,
            vec![(vec![0, 1], w(1)), (vec![2, 3], w(2)), (vec![3], w(3))],
        );
        let comps = split_components(&inst);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].element_map, vec![0, 1]);
        assert_eq!(comps[1].element_map, vec![2, 3]);
        assert_eq!(comps[0].instance.num_sets(), 1);
        assert_eq!(comps[1].instance.num_sets(), 2);
    }

    #[test]
    fn chained_sets_merge() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(1)), (vec![1, 2], w(1))]);
        let comps = split_components(&inst);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].instance.num_elements(), 3);
    }

    #[test]
    fn isolated_uncovered_element_forms_empty_component() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(1))]);
        let comps = split_components(&inst);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1].instance.num_sets(), 0);
        assert!(solve_exact_by_components(&inst).is_err());
    }

    #[test]
    fn component_exact_matches_monolithic_exact() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..40 {
            // build 2–3 disjoint blocks of elements
            let blocks = rng.gen_range(1..=3usize);
            let per = rng.gen_range(1..=4usize);
            let n = blocks * per;
            let mut sets = Vec::new();
            for b in 0..blocks {
                let base = (b * per) as u32;
                for e in 0..per as u32 {
                    sets.push((vec![base + e], w(rng.gen_range(1..12))));
                }
                for _ in 0..rng.gen_range(0..=3usize) {
                    let els: Vec<u32> = (0..per as u32)
                        .filter(|_| rng.gen_bool(0.5))
                        .map(|e| base + e)
                        .collect();
                    if !els.is_empty() {
                        sets.push((els, w(rng.gen_range(1..12))));
                    }
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let mono = crate::exact::solve_exact(&inst).unwrap();
            let split = solve_exact_by_components(&inst).unwrap();
            assert!(split.is_cover(&inst));
            assert_eq!(mono.cost, split.cost);
        }
    }

    #[test]
    fn handles_more_than_128_elements_when_components_are_small() {
        // 200 elements in 100 disjoint pairs — monolithic exact would
        // panic at the 128-element cap; component splitting sails through
        let mut sets = Vec::new();
        for i in 0..100u32 {
            sets.push((vec![2 * i, 2 * i + 1], w(2)));
            sets.push((vec![2 * i], w(3)));
            sets.push((vec![2 * i + 1], w(3)));
        }
        let inst = SetCoverInstance::new(200, sets);
        let sol = solve_exact_by_components(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.cost, w(200)); // pair set (2) per component
    }
}
