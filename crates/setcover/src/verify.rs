//! Runtime certificate checks for the WSC algorithms (`verify` feature).
//!
//! The greedy algorithm's `H(Δ)` guarantee has a *dual-fitting* proof
//! (Chvátal \[6\]): charge each element the selection-time price
//! `cost(S) / newly_covered(S)` of the set that first covered it. Greedy
//! maximality implies that for every set `S`, the prices of its elements
//! sum to at most `H(|S|) · w(S)` — so the prices, scaled down by
//! `H(Δ)`, are a feasible dual and lower-bound the optimum. Re-checking
//! that inequality per set after a run certifies both the implementation
//! (a heap bug that selects a non-maximal set breaks it) and the
//! approximation factor, without knowing the optimum.

use crate::instance::SetCoverInstance;

/// `H(d) = 1 + 1/2 + … + 1/d`, with `H(0) = 0`.
pub fn harmonic(d: usize) -> f64 {
    (1..=d).map(|i| 1.0 / i as f64).sum()
}

/// Slack for accumulated floating-point error in the price sums. Prices
/// are exact rationals `cost/cov`; summing a few thousand of them in
/// `f64` loses at most a relative `~1e-12`, so a relative `1e-6` margin
/// can only mask errors far below any genuine violation (which is at
/// least one misplaced price, i.e. a term of the sum).
fn tolerance(scale: f64) -> f64 {
    1e-6 * scale.max(1.0)
}

/// Checks the greedy dual-fitting certificate.
///
/// `price[e]` must hold `cost(S_e) / newly_covered(S_e)` for the set
/// `S_e` that first covered element `e`, recorded at selection time.
/// Asserts:
///
/// 1. **Accounting** — the prices sum back to the solution's total cost
///    (every unit of cost was distributed over covered elements);
/// 2. **Dual feasibility** — for every set `S`,
///    `Σ_{e ∈ S} price[e] ≤ H(|S|) · w(S)`,
///    which implies `greedy cost ≤ H(Δ) · OPT`.
///
/// Infinite-cost sets are skipped in (2): their bound is vacuous and
/// greedy never selects them while finite cover exists.
pub fn assert_greedy_dual_feasible(instance: &SetCoverInstance, price: &[f64], selected: &[usize]) {
    // raw() matches the u64 the greedy heap priced with (INFINITE is its
    // u64::MAX sentinel, so even a forced infinite pick balances out).
    let total_cost: f64 = selected
        .iter()
        .map(|&s| instance.cost(s).raw() as f64)
        .sum();
    let total_price: f64 = price.iter().sum();
    assert!(
        (total_price - total_cost).abs() <= tolerance(total_cost),
        "greedy prices sum to {total_price}, but the solution costs {total_cost}"
    );

    for s in 0..instance.num_sets() {
        let Some(cost) = instance.cost(s).finite() else {
            continue;
        };
        let bound = harmonic(instance.set(s).len()) * cost as f64;
        let charged: f64 = instance.set(s).iter().map(|&e| price[e as usize]).sum();
        assert!(
            charged <= bound + tolerance(bound),
            "dual infeasible at set {s}: its elements were charged {charged} \
             > H(|S|)·w(S) = {bound}; greedy did not pick maximal-ratio sets"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    #[test]
    fn harmonic_matches_hand_values() {
        assert!(harmonic(0).abs() < 1e-12);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(3) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn accepts_a_genuine_greedy_run() {
        let inst = SetCoverInstance::new(
            3,
            vec![
                (vec![0, 1, 2], Weight::new(3)),
                (vec![2], Weight::new(1)),
                (vec![0, 1], Weight::new(1)),
            ],
        );
        // greedy picks set 2 (ratio 2) then set 1; prices: 0,1 → 1/2; 2 → 1
        let price = [0.5, 0.5, 1.0];
        assert_greedy_dual_feasible(&inst, &price, &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "dual infeasible")]
    fn rejects_a_non_maximal_selection() {
        // A broken greedy that selects the expensive triple first would
        // charge each element 1.0 — but the cheap pair {0,1} (cost 1) only
        // tolerates H(2)·1 = 1.5 < 2.0.
        let inst = SetCoverInstance::new(
            3,
            vec![
                (vec![0, 1, 2], Weight::new(3)),
                (vec![0, 1], Weight::new(1)),
            ],
        );
        let price = [1.0, 1.0, 1.0];
        assert_greedy_dual_feasible(&inst, &price, &[0]);
    }

    #[test]
    #[should_panic(expected = "prices sum")]
    fn rejects_lost_cost_accounting() {
        let inst = SetCoverInstance::new(1, vec![(vec![0], Weight::new(5))]);
        assert_greedy_dual_feasible(&inst, &[1.0], &[0]);
    }
}
