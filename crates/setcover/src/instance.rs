//! Dense Weighted Set Cover instances (Definition 2.4 of the paper).
//!
//! Both incidence directions are stored in CSR (compressed sparse row)
//! layout — two flat `Vec<u32>` arrays per direction instead of a `Vec` of
//! `Vec`s — so iterating a set's elements or an element's sets touches one
//! contiguous slice, and the buffers can be recycled across solver rounds
//! via [`SetCoverInstance::from_parts`]/[`SetCoverInstance::into_parts`].

use mc3_core::u32_of;
use mc3_core::{Mc3Error, Result, Weight};

/// Index of a set within a [`SetCoverInstance`].
pub type SetId = usize;

/// A WSC instance: `m` sets with finite costs over `n` elements
/// (`0..num_elements`).
///
/// Costs must be finite: in the MC³ reduction, infinite-weight classifiers
/// are never materialized as sets (the paper treats them as omitted from the
/// input).
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    num_elements: usize,
    /// CSR offsets into `set_data`; length `m + 1`.
    set_off: Vec<u32>,
    /// Concatenated sorted element lists of all sets.
    set_data: Vec<u32>,
    costs: Vec<Weight>,
    /// CSR offsets into `cont_data`; length `n + 1`.
    cont_off: Vec<u32>,
    /// Concatenated ascending set-id lists per element.
    cont_data: Vec<u32>,
}

impl SetCoverInstance {
    /// Builds an instance; each set is `(sorted-or-not element list, cost)`.
    ///
    /// Element lists are deduplicated and sorted. Panics if a cost is
    /// infinite or an element id is out of range.
    pub fn new(num_elements: usize, sets: Vec<(Vec<u32>, Weight)>) -> SetCoverInstance {
        let mut set_off = Vec::with_capacity(sets.len() + 1);
        let mut set_data = Vec::new();
        let mut costs = Vec::with_capacity(sets.len());
        set_off.push(0u32);
        for (si, (mut els, cost)) in sets.into_iter().enumerate() {
            assert!(cost.is_finite(), "set {si} has infinite cost");
            els.sort_unstable();
            els.dedup();
            for &e in &els {
                assert!((e as usize) < num_elements, "element {e} out of range");
            }
            set_data.extend_from_slice(&els);
            set_off.push(u32_of(set_data.len()));
            costs.push(cost);
        }
        Self::from_parts(
            num_elements,
            set_off,
            set_data,
            costs,
            Vec::new(),
            Vec::new(),
        )
    }

    /// Builds an instance directly from CSR parts. Each set's slice of
    /// `set_data` must already be sorted and deduplicated (checked in debug
    /// builds); costs must be finite. `cont_off`/`cont_data` are recycled
    /// buffers (any contents are discarded) — pass empty `Vec`s when no
    /// buffers are available for reuse.
    pub fn from_parts(
        num_elements: usize,
        set_off: Vec<u32>,
        set_data: Vec<u32>,
        costs: Vec<Weight>,
        mut cont_off: Vec<u32>,
        mut cont_data: Vec<u32>,
    ) -> SetCoverInstance {
        assert_eq!(
            set_off.len(),
            costs.len() + 1,
            "offset/cost length mismatch"
        );
        assert_eq!(
            *set_off.last().unwrap_or(&0) as usize,
            set_data.len(),
            "final offset must equal data length"
        );
        debug_assert!(costs.iter().all(|c| c.is_finite()), "infinite cost");
        debug_assert!(
            set_off.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        debug_assert!(
            set_off.windows(2).all(|w| {
                set_data[w[0] as usize..w[1] as usize]
                    .windows(2)
                    .all(|p| p[0] < p[1])
            }),
            "set element lists must be sorted and deduplicated"
        );
        debug_assert!(
            set_data.iter().all(|&e| (e as usize) < num_elements),
            "element out of range"
        );

        // Counting sort: per-element frequencies → prefix offsets → fill.
        // Iterating sets in ascending order makes every `containing` list
        // ascending by construction.
        cont_off.clear();
        cont_off.resize(num_elements + 1, 0);
        for &e in &set_data {
            // audit:allow(no-unchecked-index-in-hot-loops) e < num_elements checked above
            cont_off[e as usize + 1] += 1;
        }
        for i in 1..cont_off.len() {
            cont_off[i] += cont_off[i - 1];
        }
        cont_data.clear();
        cont_data.resize(set_data.len(), 0);
        let mut cursor: Vec<u32> = cont_off[..num_elements].to_vec();
        for s in 0..costs.len() {
            // audit:allow(no-unchecked-index-in-hot-loops) CSR invariants established above
            for &e in &set_data[set_off[s] as usize..set_off[s + 1] as usize] {
                let c = &mut cursor[e as usize];
                cont_data[*c as usize] = u32_of(s);
                *c += 1;
            }
        }

        SetCoverInstance {
            num_elements,
            set_off,
            set_data,
            costs,
            cont_off,
            cont_data,
        }
    }

    /// Decomposes the instance into its CSR buffers (in `from_parts`
    /// argument order) so their allocations can be recycled.
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>, Vec<Weight>, Vec<u32>, Vec<u32>) {
        (
            self.set_off,
            self.set_data,
            self.costs,
            self.cont_off,
            self.cont_data,
        )
    }

    /// Number of elements `n`.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of sets `m`.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.costs.len()
    }

    /// The (sorted) element list of set `s`.
    #[inline]
    pub fn set(&self, s: SetId) -> &[u32] {
        &self.set_data[self.set_off[s] as usize..self.set_off[s + 1] as usize]
    }

    /// The cost of set `s`.
    #[inline]
    pub fn cost(&self, s: SetId) -> Weight {
        self.costs[s]
    }

    /// The sets containing element `e`, ascending.
    #[inline]
    pub fn containing(&self, e: u32) -> &[u32] {
        &self.cont_data[self.cont_off[e as usize] as usize..self.cont_off[e as usize + 1] as usize]
    }

    /// The instance *frequency* `f`: the maximal number of sets any element
    /// belongs to.
    pub fn frequency(&self) -> usize {
        self.cont_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// The instance *degree* `Δ`: the cardinality of the largest set.
    pub fn degree(&self) -> usize {
        self.set_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Sum of set sizes `Σ|s|` (drives greedy's complexity).
    pub fn total_size(&self) -> usize {
        self.set_data.len()
    }

    /// The first element contained in no set, if any (the instance is then
    /// uncoverable).
    pub fn first_uncoverable_element(&self) -> Option<u32> {
        self.cont_off
            .windows(2)
            .position(|w| w[0] == w[1])
            .map(|e| u32_of(e))
    }

    /// Errors if some element cannot be covered.
    pub fn ensure_coverable(&self) -> Result<()> {
        match self.first_uncoverable_element() {
            Some(e) => Err(Mc3Error::Uncoverable {
                query_index: e as usize,
            }),
            None => Ok(()),
        }
    }
}

/// A WSC solution: the chosen sets and their total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverSolution {
    /// Selected set ids, ascending.
    pub selected: Vec<SetId>,
    /// Sum of selected set costs.
    pub cost: Weight,
}

impl SetCoverSolution {
    /// Builds a solution from selected ids, computing the cost.
    pub fn new(instance: &SetCoverInstance, mut selected: Vec<SetId>) -> SetCoverSolution {
        selected.sort_unstable();
        selected.dedup();
        let cost = selected.iter().map(|&s| instance.cost(s)).sum();
        SetCoverSolution { selected, cost }
    }

    /// Whether every element of `instance` is covered.
    pub fn is_cover(&self, instance: &SetCoverInstance) -> bool {
        let mut covered = crate::bitcover::BitCover::new(instance.num_elements());
        for &s in &self.selected {
            covered.mark(instance.set(s));
        }
        covered.count_ones() as usize == instance.num_elements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn parameters_match_definitions() {
        let inst = SetCoverInstance::new(
            4,
            vec![(vec![0, 1, 2], w(3)), (vec![2, 3], w(1)), (vec![3], w(1))],
        );
        assert_eq!(inst.num_elements(), 4);
        assert_eq!(inst.num_sets(), 3);
        assert_eq!(inst.degree(), 3);
        assert_eq!(inst.frequency(), 2); // elements 2 and 3 are in two sets
        assert_eq!(inst.total_size(), 6);
        assert_eq!(inst.containing(2), &[0, 1]);
        inst.ensure_coverable().unwrap();
    }

    #[test]
    fn dedups_set_elements() {
        let inst = SetCoverInstance::new(2, vec![(vec![1, 0, 1], w(1))]);
        assert_eq!(inst.set(0), &[0, 1]);
    }

    #[test]
    fn detects_uncoverable_element() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(1))]);
        assert_eq!(inst.first_uncoverable_element(), Some(2));
        assert!(inst.ensure_coverable().is_err());
    }

    #[test]
    #[should_panic(expected = "infinite cost")]
    fn rejects_infinite_cost() {
        let _ = SetCoverInstance::new(1, vec![(vec![0], Weight::INFINITE)]);
    }

    #[test]
    fn solution_cost_and_cover_check() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(2)), (vec![2], w(5))]);
        let sol = SetCoverSolution::new(&inst, vec![1, 0, 0]);
        assert_eq!(sol.selected, vec![0, 1]);
        assert_eq!(sol.cost, w(7));
        assert!(sol.is_cover(&inst));
        let partial = SetCoverSolution::new(&inst, vec![0]);
        assert!(!partial.is_cover(&inst));
    }

    #[test]
    fn parts_round_trip_preserves_structure() {
        let inst = SetCoverInstance::new(
            5,
            vec![
                (vec![0, 1, 4], w(3)),
                (vec![2, 3], w(1)),
                (vec![], w(2)),
                (vec![4], w(9)),
            ],
        );
        let sets: Vec<Vec<u32>> = (0..inst.num_sets()).map(|s| inst.set(s).to_vec()).collect();
        let conts: Vec<Vec<u32>> = (0..5).map(|e| inst.containing(e).to_vec()).collect();
        let (so, sd, c, co, cd) = inst.clone().into_parts();
        let rebuilt = SetCoverInstance::from_parts(5, so, sd, c, co, cd);
        for (s, els) in sets.iter().enumerate() {
            assert_eq!(rebuilt.set(s), &els[..]);
            assert_eq!(rebuilt.cost(s), inst.cost(s));
        }
        for (e, cs) in conts.iter().enumerate() {
            assert_eq!(rebuilt.containing(e as u32), &cs[..]);
        }
    }

    #[test]
    fn containing_lists_are_ascending() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1..=12usize);
            let mut sets = Vec::new();
            for _ in 0..rng.gen_range(0..=15usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect();
                sets.push((els, w(rng.gen_range(1..9))));
            }
            let inst = SetCoverInstance::new(n, sets);
            for e in 0..n as u32 {
                assert!(inst.containing(e).windows(2).all(|p| p[0] < p[1]));
            }
        }
    }
}
