//! Dense Weighted Set Cover instances (Definition 2.4 of the paper).

use mc3_core::{Mc3Error, Result, Weight};

/// Index of a set within a [`SetCoverInstance`].
pub type SetId = usize;

/// A WSC instance: `m` sets with finite costs over `n` elements
/// (`0..num_elements`).
///
/// Costs must be finite: in the MC³ reduction, infinite-weight classifiers
/// are never materialized as sets (the paper treats them as omitted from the
/// input).
#[derive(Debug, Clone)]
pub struct SetCoverInstance {
    num_elements: usize,
    elements: Vec<Vec<u32>>,
    costs: Vec<Weight>,
    /// `containing[e]` lists the sets that contain element `e`.
    containing: Vec<Vec<u32>>,
}

impl SetCoverInstance {
    /// Builds an instance; each set is `(sorted-or-not element list, cost)`.
    ///
    /// Element lists are deduplicated and sorted. Panics if a cost is
    /// infinite or an element id is out of range.
    pub fn new(num_elements: usize, sets: Vec<(Vec<u32>, Weight)>) -> SetCoverInstance {
        let mut elements = Vec::with_capacity(sets.len());
        let mut costs = Vec::with_capacity(sets.len());
        let mut containing: Vec<Vec<u32>> = vec![Vec::new(); num_elements];
        for (si, (mut els, cost)) in sets.into_iter().enumerate() {
            assert!(cost.is_finite(), "set {si} has infinite cost");
            els.sort_unstable();
            els.dedup();
            for &e in &els {
                assert!((e as usize) < num_elements, "element {e} out of range");
                containing[e as usize].push(si as u32);
            }
            elements.push(els);
            costs.push(cost);
        }
        SetCoverInstance {
            num_elements,
            elements,
            costs,
            containing,
        }
    }

    /// Number of elements `n`.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of sets `m`.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.elements.len()
    }

    /// The (sorted) element list of set `s`.
    #[inline]
    pub fn set(&self, s: SetId) -> &[u32] {
        &self.elements[s]
    }

    /// The cost of set `s`.
    #[inline]
    pub fn cost(&self, s: SetId) -> Weight {
        self.costs[s]
    }

    /// The sets containing element `e`.
    #[inline]
    pub fn containing(&self, e: u32) -> &[u32] {
        &self.containing[e as usize]
    }

    /// The instance *frequency* `f`: the maximal number of sets any element
    /// belongs to.
    pub fn frequency(&self) -> usize {
        self.containing.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The instance *degree* `Δ`: the cardinality of the largest set.
    pub fn degree(&self) -> usize {
        self.elements.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sum of set sizes `Σ|s|` (drives greedy's complexity).
    pub fn total_size(&self) -> usize {
        self.elements.iter().map(Vec::len).sum()
    }

    /// The first element contained in no set, if any (the instance is then
    /// uncoverable).
    pub fn first_uncoverable_element(&self) -> Option<u32> {
        self.containing
            .iter()
            .position(Vec::is_empty)
            .map(|e| e as u32)
    }

    /// Errors if some element cannot be covered.
    pub fn ensure_coverable(&self) -> Result<()> {
        match self.first_uncoverable_element() {
            Some(e) => Err(Mc3Error::Uncoverable {
                query_index: e as usize,
            }),
            None => Ok(()),
        }
    }
}

/// A WSC solution: the chosen sets and their total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverSolution {
    /// Selected set ids, ascending.
    pub selected: Vec<SetId>,
    /// Sum of selected set costs.
    pub cost: Weight,
}

impl SetCoverSolution {
    /// Builds a solution from selected ids, computing the cost.
    pub fn new(instance: &SetCoverInstance, mut selected: Vec<SetId>) -> SetCoverSolution {
        selected.sort_unstable();
        selected.dedup();
        let cost = selected.iter().map(|&s| instance.cost(s)).sum();
        SetCoverSolution { selected, cost }
    }

    /// Whether every element of `instance` is covered.
    pub fn is_cover(&self, instance: &SetCoverInstance) -> bool {
        let mut covered = vec![false; instance.num_elements()];
        for &s in &self.selected {
            for &e in instance.set(s) {
                covered[e as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn parameters_match_definitions() {
        let inst = SetCoverInstance::new(
            4,
            vec![(vec![0, 1, 2], w(3)), (vec![2, 3], w(1)), (vec![3], w(1))],
        );
        assert_eq!(inst.num_elements(), 4);
        assert_eq!(inst.num_sets(), 3);
        assert_eq!(inst.degree(), 3);
        assert_eq!(inst.frequency(), 2); // elements 2 and 3 are in two sets
        assert_eq!(inst.total_size(), 6);
        assert_eq!(inst.containing(2), &[0, 1]);
        inst.ensure_coverable().unwrap();
    }

    #[test]
    fn dedups_set_elements() {
        let inst = SetCoverInstance::new(2, vec![(vec![1, 0, 1], w(1))]);
        assert_eq!(inst.set(0), &[0, 1]);
    }

    #[test]
    fn detects_uncoverable_element() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(1))]);
        assert_eq!(inst.first_uncoverable_element(), Some(2));
        assert!(inst.ensure_coverable().is_err());
    }

    #[test]
    #[should_panic(expected = "infinite cost")]
    fn rejects_infinite_cost() {
        let _ = SetCoverInstance::new(1, vec![(vec![0], Weight::INFINITE)]);
    }

    #[test]
    fn solution_cost_and_cover_check() {
        let inst = SetCoverInstance::new(3, vec![(vec![0, 1], w(2)), (vec![2], w(5))]);
        let sol = SetCoverSolution::new(&inst, vec![1, 0, 0]);
        assert_eq!(sol.selected, vec![0, 1]);
        assert_eq!(sol.cost, w(7));
        assert!(sol.is_cover(&inst));
        let partial = SetCoverSolution::new(&inst, vec![0]);
        assert!(!partial.is_cover(&inst));
    }
}
