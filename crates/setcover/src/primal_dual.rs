//! The Bar-Yehuda–Even primal–dual `f`-approximation for WSC.
//!
//! For each uncovered element `e` (in index order), raise its dual variable
//! until some set containing `e` becomes *tight* (its residual cost hits
//! zero); select all sets that became tight. Every selected set is tight,
//! and every element's dual is paid by at most `f` selected sets, giving the
//! classic `f`-approximation — the same guarantee as LP rounding
//! (Theorem 2.6) without solving an LP, in `O(Σ_e Σ_{s∋e} 1)` time.
//!
//! This is the scalable path of Algorithm 3's "LP-based" branch; the literal
//! LP-rounding implementation lives in [`crate::lp_round`].

use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;
use mc3_core::Result;

/// Runs the primal–dual algorithm.
pub fn solve_primal_dual(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    let _span = mc3_telemetry::span("setcover.primal_dual");
    instance.ensure_coverable()?;
    let m = instance.num_sets();
    let mut residual: Vec<u64> = (0..m).map(|s| instance.cost(s).raw()).collect();
    let mut selected_mark = vec![false; m];
    let mut covered = vec![false; instance.num_elements()];
    let mut selected = Vec::new();

    for e in 0..u32_of(instance.num_elements()) {
        if covered[e as usize] {
            continue;
        }
        // raise α_e to the minimum residual among sets containing e
        let delta = instance
            .containing(e)
            .iter()
            .map(|&s| residual[s as usize])
            .min()
            // audit:allow(no-unwrap-in-lib) `e` is uncovered ⇒ containing(e) is non-empty (feasibility pre-checked)
            .expect("coverability checked above");
        for &s in instance.containing(e) {
            let r = &mut residual[s as usize];
            *r -= delta;
            if *r == 0 && !selected_mark[s as usize] {
                selected_mark[s as usize] = true;
                selected.push(s as usize);
                for &e2 in instance.set(s as usize) {
                    covered[e2 as usize] = true;
                }
            }
        }
        debug_assert!(
            covered[e as usize],
            "element must be covered after tightening"
        );
    }
    Ok(SetCoverSolution::new(instance, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn covers_and_is_tight() {
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1], w(3)), (vec![1, 2], w(2)), (vec![2], w(1))],
        );
        let sol = solve_primal_dual(&inst).unwrap();
        assert!(sol.is_cover(&inst));
    }

    #[test]
    fn zero_cost_sets_are_immediately_tight() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], Weight::ZERO), (vec![0], w(5))]);
        let sol = solve_primal_dual(&inst).unwrap();
        assert_eq!(sol.cost, Weight::ZERO);
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn respects_frequency_bound_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(5150);
        for _ in 0..50 {
            let n = rng.gen_range(1..=8usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..12))));
            }
            for _ in 0..rng.gen_range(0..=8usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..12))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let pd = solve_primal_dual(&inst).unwrap();
            assert!(pd.is_cover(&inst));
            let opt = crate::exact::solve_exact(&inst).unwrap();
            let f = inst.frequency() as u64;
            assert!(
                pd.cost.raw() <= f * opt.cost.raw(),
                "primal-dual {} exceeds f·OPT = {}·{}",
                pd.cost,
                f,
                opt.cost
            );
        }
    }

    #[test]
    fn single_element_picks_cheapest_containing_set() {
        let inst = SetCoverInstance::new(1, vec![(vec![0], w(7)), (vec![0], w(3))]);
        let sol = solve_primal_dual(&inst).unwrap();
        assert_eq!(sol.selected, vec![1]);
        assert_eq!(sol.cost, w(3));
    }

    #[test]
    fn uncoverable_detected() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(1))]);
        assert!(solve_primal_dual(&inst).is_err());
    }
}
