//! The shared bitset coverage kernel.
//!
//! Every WSC refinement loop in this crate asks the same three questions —
//! *is this element covered?*, *how many of these elements are new?*,
//! *which of these elements are unique?* — against a dense 0..n element
//! universe. [`BitCover`] answers them on a flat `Vec<u64>` block array:
//! single-bit probes for sparse element lists, word-wise popcount sweeps
//! (`and_not`, `count_ones`) for whole-universe queries. Compared to the
//! previous `Vec<bool>`/`containing(e)` fan-out bookkeeping this keeps the
//! hot loops inside one cache-resident bitmap and removes the per-element
//! indirection through the element→sets index entirely.
//!
//! Every primitive tallies the number of 64-bit word operations it
//! performs; callers drain the tally with [`BitCover::take_word_ops`] and
//! flush it to `Counter::BitCoverWordOps`, keeping the hot loops free of
//! atomics while the telemetry stays exact and deterministic.

const WORD_BITS: usize = 64;

/// A dense bitmap over elements `0..len` with word-op accounting.
#[derive(Debug, Clone)]
pub struct BitCover {
    blocks: Vec<u64>,
    len: usize,
    word_ops: u64,
}

impl BitCover {
    /// An all-zeros bitmap over `0..len`.
    pub fn new(len: usize) -> BitCover {
        BitCover {
            blocks: vec![0; len.div_ceil(WORD_BITS)],
            len,
            word_ops: 0,
        }
    }

    /// Number of bits (elements) the bitmap spans.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap spans zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zeroes every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.word_ops += self.blocks.len() as u64;
        self.blocks.fill(0);
    }

    /// Re-targets the bitmap to `0..len`, zeroed, reusing the allocation.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.blocks.clear();
        self.blocks.resize(len.div_ceil(WORD_BITS), 0);
        self.word_ops += self.blocks.len() as u64;
    }

    /// Whether bit `e` is set.
    #[inline]
    pub fn test(&mut self, e: u32) -> bool {
        self.word_ops += 1;
        // audit:allow(no-unchecked-index-in-hot-loops) e < len is the caller's instance invariant
        self.blocks[e as usize / WORD_BITS] >> (e as usize % WORD_BITS) & 1 != 0
    }

    /// Sets bit `e`.
    #[inline]
    pub fn set(&mut self, e: u32) {
        self.word_ops += 1;
        self.blocks[e as usize / WORD_BITS] |= 1u64 << (e as usize % WORD_BITS);
    }

    /// Clears bit `e`.
    #[inline]
    pub fn unset(&mut self, e: u32) {
        self.word_ops += 1;
        self.blocks[e as usize / WORD_BITS] &= !(1u64 << (e as usize % WORD_BITS));
    }

    /// Sets bit `e`, returning whether it was already set.
    #[inline]
    pub fn test_and_set(&mut self, e: u32) -> bool {
        self.word_ops += 1;
        let word = &mut self.blocks[e as usize / WORD_BITS];
        let mask = 1u64 << (e as usize % WORD_BITS);
        let was = *word & mask != 0;
        *word |= mask;
        was
    }

    /// How many of `elems` are *not* yet set (the greedy "newly covered"
    /// count). Does not modify the bitmap.
    pub fn newly_covered(&mut self, elems: &[u32]) -> u32 {
        self.word_ops += elems.len() as u64;
        let mut fresh = 0u32;
        for &e in elems {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..len
            fresh +=
                (self.blocks[e as usize / WORD_BITS] >> (e as usize % WORD_BITS) & 1 == 0) as u32;
        }
        fresh
    }

    /// Sets every bit of `elems`, returning how many were newly set.
    pub fn mark(&mut self, elems: &[u32]) -> u32 {
        self.word_ops += elems.len() as u64;
        let mut fresh = 0u32;
        for &e in elems {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..len
            let word = &mut self.blocks[e as usize / WORD_BITS];
            let mask = 1u64 << (e as usize % WORD_BITS);
            fresh += (*word & mask == 0) as u32;
            *word |= mask;
        }
        fresh
    }

    /// How many of `elems` are currently set. `elems` must be duplicate-free
    /// for the count to equal the intersection cardinality.
    pub fn count_set(&mut self, elems: &[u32]) -> u32 {
        self.word_ops += elems.len() as u64;
        let mut hits = 0u32;
        for &e in elems {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..len
            hits += (self.blocks[e as usize / WORD_BITS] >> (e as usize % WORD_BITS) & 1) as u32;
        }
        hits
    }

    /// Whether any bit of `elems` is set (early exit on the first hit).
    pub fn intersects(&mut self, elems: &[u32]) -> bool {
        for (i, &e) in elems.iter().enumerate() {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..len
            if self.blocks[e as usize / WORD_BITS] >> (e as usize % WORD_BITS) & 1 != 0 {
                self.word_ops += i as u64 + 1;
                return true;
            }
        }
        self.word_ops += elems.len() as u64;
        false
    }

    /// Appends to `out` the members of `elems` whose bit is set, in `elems`
    /// order (e.g. the uniquely-covered elements of a set, against a
    /// multiplicity-one bitmap).
    pub fn unique_of(&mut self, elems: &[u32], out: &mut Vec<u32>) {
        self.word_ops += elems.len() as u64;
        for &e in elems {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..len
            if self.blocks[e as usize / WORD_BITS] >> (e as usize % WORD_BITS) & 1 != 0 {
                // audit:allow(no-alloc-in-hot-loops) reviewed: output accumulation into a caller-recycled buffer
                out.push(e);
            }
        }
    }

    /// Word-wise `self &= !other`. Both bitmaps must span the same length.
    pub fn and_not(&mut self, other: &BitCover) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        self.word_ops += self.blocks.len() as u64;
        for (w, &o) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *w &= !o;
        }
    }

    /// Population count over the whole bitmap (word-wise popcount sweep).
    pub fn count_ones(&mut self) -> u64 {
        self.word_ops += self.blocks.len() as u64;
        self.blocks.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Drains the word-op tally (monotonic since the last call). Callers
    /// flush this into `Counter::BitCoverWordOps`.
    pub fn take_word_ops(&mut self) -> u64 {
        std::mem::take(&mut self.word_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_ops() {
        let mut b = BitCover::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.test(0) && !b.test(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.test(0) && b.test(64) && b.test(129));
        assert!(!b.test(63) && !b.test(65));
        b.unset(64);
        assert!(!b.test(64));
        assert!(!b.test_and_set(7));
        assert!(b.test_and_set(7));
        assert_eq!(b.count_ones(), 3); // 0, 7, 129
    }

    #[test]
    fn newly_covered_and_mark_agree() {
        let mut b = BitCover::new(10);
        let elems = [1u32, 3, 5, 7];
        assert_eq!(b.newly_covered(&elems), 4);
        assert_eq!(b.mark(&elems), 4);
        assert_eq!(b.newly_covered(&elems), 0);
        assert_eq!(b.mark(&[5, 6]), 1); // only 6 is new
        assert_eq!(b.count_set(&[0, 1, 2, 3]), 2);
    }

    #[test]
    fn intersects_and_unique_of() {
        let mut b = BitCover::new(100);
        b.set(40);
        b.set(90);
        assert!(b.intersects(&[1, 40, 90]));
        assert!(!b.intersects(&[1, 2, 3]));
        assert!(!b.intersects(&[]));
        let mut out = Vec::new();
        b.unique_of(&[90, 1, 40], &mut out);
        assert_eq!(out, vec![90, 40]); // input order preserved
    }

    #[test]
    fn and_not_masks_words() {
        let mut a = BitCover::new(70);
        let mut m = BitCover::new(70);
        for e in 0..70u32 {
            a.set(e);
        }
        m.set(0);
        m.set(69);
        a.and_not(&m);
        assert!(!a.test(0) && !a.test(69));
        assert!(a.test(1) && a.test(68));
        assert_eq!(a.count_ones(), 68);
    }

    #[test]
    fn clear_and_reset_reuse_allocation() {
        let mut b = BitCover::new(200);
        b.set(150);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 200);
        b.reset(64);
        assert_eq!(b.len(), 64);
        assert_eq!(b.count_ones(), 0);
        b.set(63);
        assert!(b.test(63));
    }

    #[test]
    fn word_ops_tally_is_exact_and_drains() {
        let mut b = BitCover::new(128); // 2 words
        b.take_word_ops(); // drop construction-time tally (none) for clarity
        b.set(3); // 1
        assert!(b.test(3)); // 1
        b.mark(&[1, 2, 3]); // 3
        assert_eq!(b.newly_covered(&[9, 10]), 2); // 2
        b.clear(); // 2 (words)
        assert_eq!(b.take_word_ops(), 9);
        assert_eq!(b.take_word_ops(), 0);
    }

    #[test]
    fn zero_length_bitmap() {
        let mut b = BitCover::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.intersects(&[]));
    }

    #[test]
    fn matches_bool_vec_reference_on_random_traffic() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(1..=300usize);
            let mut bits = BitCover::new(n);
            let mut reference = vec![false; n];
            for _ in 0..200 {
                let e = rng.gen_range(0..n as u32);
                match rng.gen_range(0..4u8) {
                    0 => {
                        bits.set(e);
                        reference[e as usize] = true;
                    }
                    1 => {
                        bits.unset(e);
                        reference[e as usize] = false;
                    }
                    2 => assert_eq!(bits.test(e), reference[e as usize]),
                    _ => {
                        let was = bits.test_and_set(e);
                        assert_eq!(was, reference[e as usize]);
                        reference[e as usize] = true;
                    }
                }
            }
            let expected = reference.iter().filter(|&&x| x).count() as u64;
            assert_eq!(bits.count_ones(), expected);
        }
    }
}
