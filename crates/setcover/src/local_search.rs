//! Swap-based local search on WSC solutions.
//!
//! A second guarantee-preserving refinement (after
//! [`crate::prune::prune_redundant`]): for every selected set, the elements
//! it *uniquely* covers must stay covered — if some single cheaper set
//! covers all of them, swapping is a strict improvement. Iterated to a
//! fixpoint (with a pass cap), interleaved with redundancy drops. Cost can
//! only decrease, so every approximation guarantee carried by the input
//! solution is preserved.

use crate::bitcover::BitCover;
use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;

/// Maximum improvement passes before giving up on convergence.
const MAX_PASSES: usize = 8;

/// Improves `solution` by 1-for-1 swaps and redundancy drops until no move
/// helps (or the pass cap is hit). The result covers the same instance at
/// equal or lower cost.
///
/// Coverage multiplicities (and the derived multiplicity-one bitmap) are
/// maintained incrementally across passes: every in-pass drop/swap already
/// applies its exact delta, so the `O(selected · m)` from-scratch recount
/// the previous implementation ran at the top of every pass is gone. The
/// uniquely-covered elements of a set fall out of one [`BitCover::unique_of`]
/// probe, and candidate containment is a popcount-style [`BitCover::count_set`]
/// sweep instead of per-element binary searches.
pub fn local_search(instance: &SetCoverInstance, solution: &SetCoverSolution) -> SetCoverSolution {
    let _span = mc3_telemetry::span("setcover.local_search");
    // No up-front redundancy prune: dropping a shadowed cheap set first can
    // block a profitable swap of the expensive set shadowing it. Each pass
    // below drops redundant sets in the same cost order as the swaps.
    let mut mult = vec![0u32; instance.num_elements()];
    let mut selected_mark = vec![false; instance.num_sets()];
    // mult1: bit set ⇔ exactly one selected set covers the element.
    let mut mult1 = BitCover::new(instance.num_elements());
    // uniq_bits: per-set scratch holding its uniquely-covered elements.
    let mut uniq_bits = BitCover::new(instance.num_elements());
    for &s in &solution.selected {
        selected_mark[s] = true;
        for &e in instance.set(s) {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
            mult[e as usize] += 1;
        }
    }
    for (e, &m) in mult.iter().enumerate() {
        if m == 1 {
            mult1.set(u32_of(e));
        }
    }
    // Applies a ±1 multiplicity delta, keeping the mult1 bitmap in sync.
    let bump = |mult: &mut [u32], mult1: &mut BitCover, e: u32, up: bool| {
        // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
        let m = &mut mult[e as usize];
        if up {
            *m += 1;
            if *m == 1 {
                mult1.set(e);
            } else if *m == 2 {
                mult1.unset(e);
            }
        } else {
            *m -= 1;
            if *m == 1 {
                mult1.set(e);
            } else if *m == 0 {
                mult1.unset(e);
            }
        }
    };

    let mut selection = solution.selected.clone();
    // A set's uniquely-covered elements are a subset of the set itself, so
    // the largest set bounds the scratch buffer for every pass.
    let max_set_len = (0..instance.num_sets())
        .map(|s| instance.set(s).len())
        .max()
        .unwrap_or(0);
    let mut unique: Vec<u32> = Vec::with_capacity(max_set_len);
    let mut converged = false;
    for _ in 0..MAX_PASSES {
        let mut improved = false;

        // try to replace expensive sets first (stable over ascending ids)
        selection.sort_unstable();
        selection.sort_by_key(|&s| std::cmp::Reverse(instance.cost(s)));
        // audit:allow(no-alloc-in-hot-loops) reviewed: one allocation per pass, bounded by MAX_PASSES
        let mut result: Vec<usize> = Vec::with_capacity(selection.len());

        // Steady-state swap/drop sweep: scratch buffers are preallocated, so
        // this span records zero allocations (pinned by `mc3-audit
        // consistency`).
        let pass_span = mc3_telemetry::span("setcover.local_search.pass");
        for &s in &selection {
            // elements only this set covers
            unique.clear();
            mult1.unique_of(instance.set(s), &mut unique);
            if unique.is_empty() {
                // redundant — drop
                for &e in instance.set(s) {
                    bump(&mut mult, &mut mult1, e, false);
                }
                selected_mark[s] = false;
                improved = true;
                continue;
            }
            // candidate replacements: cheaper sets covering all unique
            // elements; any unique element's containing list encloses them
            // all, so pivot on the one with the smallest fan-out. The winner
            // (cheapest, then smallest id) is invariant under pivot choice:
            // every containing list iterates in ascending set id.
            uniq_bits.mark(&unique);
            let pivot = unique
                .iter()
                .copied()
                .min_by_key(|&e| instance.containing(e).len())
                // audit:allow(no-unwrap-in-lib) the `unique.is_empty()` branch above already returned
                .expect("unique is non-empty");
            let mut best: Option<usize> = None;
            let mut bound = instance.cost(s);
            for &cand in instance.containing(pivot) {
                let cand = cand as usize;
                if cand == s
                    || selected_mark[cand]
                    || instance.cost(cand) >= bound
                    || instance.set(cand).len() < unique.len()
                {
                    continue;
                }
                if uniq_bits.count_set(instance.set(cand)) as usize == unique.len() {
                    best = Some(cand);
                    bound = instance.cost(cand);
                }
            }
            for &e in &unique {
                uniq_bits.unset(e);
            }
            match best {
                Some(replacement) => {
                    for &e in instance.set(s) {
                        bump(&mut mult, &mut mult1, e, false);
                    }
                    for &e in instance.set(replacement) {
                        bump(&mut mult, &mut mult1, e, true);
                    }
                    selected_mark[s] = false;
                    selected_mark[replacement] = true;
                    // audit:allow(no-alloc-in-hot-loops) reviewed: within-capacity push into the per-pass buffer
                    result.push(replacement);
                    improved = true;
                }
                // audit:allow(no-alloc-in-hot-loops) reviewed: within-capacity push into the per-pass buffer
                None => result.push(s),
            }
        }
        drop(pass_span);

        #[cfg(debug_assertions)]
        {
            // audit:allow(no-alloc-in-hot-loops) reviewed: debug_assertions-only feasibility check
            let check = SetCoverSolution::new(instance, result.clone());
            debug_assert!(check.is_cover(instance), "local search broke feasibility");
            debug_assert!(check.cost <= solution.cost, "local search raised the cost");
        }
        selection = result;
        if !improved {
            converged = true;
            break;
        }
    }
    if !converged {
        mc3_obs::debug(
            "setcover",
            "local search hit the pass cap without converging",
            &[
                ("max_passes", MAX_PASSES.into()),
                ("selected", selection.len().into()),
            ],
        );
    }
    mc3_telemetry::span_add(
        mc3_telemetry::Counter::BitCoverWordOps,
        mult1.take_word_ops() + uniq_bits.take_word_ops(),
    );
    SetCoverSolution::new(instance, selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn swaps_expensive_set_for_cheaper_equivalent() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], w(9)), (vec![0, 1], w(3))]);
        let start = SetCoverSolution::new(&inst, vec![0]);
        let improved = local_search(&inst, &start);
        assert_eq!(improved.selected, vec![1]);
        assert_eq!(improved.cost, w(3));
    }

    #[test]
    fn swap_respects_unique_coverage_only() {
        // set 0 covers {0,1}; element 1 is also covered by set 2, so set 0's
        // unique element is 0 — replaceable by the cheaper {0}-set
        let inst = SetCoverInstance::new(
            2,
            vec![(vec![0, 1], w(5)), (vec![0], w(1)), (vec![1], w(1))],
        );
        let start = SetCoverSolution::new(&inst, vec![0, 2]);
        let improved = local_search(&inst, &start);
        assert!(improved.is_cover(&inst));
        assert_eq!(improved.cost, w(2)); // {0} + {1}
    }

    #[test]
    fn fixpoint_on_optimal_solutions() {
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1], w(2)), (vec![2], w(1)), (vec![0, 1, 2], w(9))],
        );
        let opt = SetCoverSolution::new(&inst, vec![0, 1]);
        let out = local_search(&inst, &opt);
        assert_eq!(out, opt);
    }

    #[test]
    fn chains_of_swaps_converge() {
        // replacing A by B uncovers nothing; then B's redundancy appears
        let inst = SetCoverInstance::new(
            3,
            vec![
                (vec![0, 1, 2], w(10)),
                (vec![0, 1, 2], w(6)),
                (vec![0, 1], w(1)),
                (vec![2], w(1)),
            ],
        );
        let start = SetCoverSolution::new(&inst, vec![0, 2, 3]);
        let out = local_search(&inst, &start);
        assert!(out.is_cover(&inst));
        assert_eq!(out.cost, w(2)); // {0,1} + {2}
    }

    #[test]
    fn never_hurts_greedy_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(1414);
        for _ in 0..60 {
            let n = rng.gen_range(1..=10usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..15))));
            }
            for _ in 0..rng.gen_range(0..=10usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..15))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let g = solve_greedy(&inst).unwrap();
            let ls = local_search(&inst, &g);
            assert!(ls.is_cover(&inst));
            assert!(ls.cost <= g.cost);
            // idempotent at the fixpoint
            let again = local_search(&inst, &ls);
            assert_eq!(again.cost, ls.cost);
        }
    }
}
