//! Swap-based local search on WSC solutions.
//!
//! A second guarantee-preserving refinement (after
//! [`crate::prune::prune_redundant`]): for every selected set, the elements
//! it *uniquely* covers must stay covered — if some single cheaper set
//! covers all of them, swapping is a strict improvement. Iterated to a
//! fixpoint (with a pass cap), interleaved with redundancy drops. Cost can
//! only decrease, so every approximation guarantee carried by the input
//! solution is preserved.

use crate::instance::{SetCoverInstance, SetCoverSolution};

/// Maximum improvement passes before giving up on convergence.
const MAX_PASSES: usize = 8;

/// Improves `solution` by 1-for-1 swaps and redundancy drops until no move
/// helps (or the pass cap is hit). The result covers the same instance at
/// equal or lower cost.
pub fn local_search(instance: &SetCoverInstance, solution: &SetCoverSolution) -> SetCoverSolution {
    // No up-front redundancy prune: dropping a shadowed cheap set first can
    // block a profitable swap of the expensive set shadowing it. Each pass
    // below drops redundant sets in the same cost order as the swaps.
    let mut current = solution.clone();
    for _ in 0..MAX_PASSES {
        let mut improved = false;

        // coverage multiplicity under the current selection
        let mut mult = vec![0u32; instance.num_elements()];
        let mut selected_mark = vec![false; instance.num_sets()];
        for &s in &current.selected {
            selected_mark[s] = true;
            for &e in instance.set(s) {
                mult[e as usize] += 1;
            }
        }

        let mut selected = current.selected.clone();
        // try to replace expensive sets first
        selected.sort_by_key(|&s| std::cmp::Reverse(instance.cost(s)));
        let mut result: Vec<usize> = Vec::with_capacity(selected.len());

        for &s in &selected {
            // elements only this set covers
            let unique: Vec<u32> = instance
                .set(s)
                .iter()
                .copied()
                .filter(|&e| mult[e as usize] == 1)
                .collect();
            if unique.is_empty() {
                // redundant — drop
                for &e in instance.set(s) {
                    mult[e as usize] -= 1;
                }
                selected_mark[s] = false;
                improved = true;
                continue;
            }
            // candidate replacements: cheaper sets covering all unique
            // elements; they all contain unique[0]
            let mut best: Option<usize> = None;
            for &cand in instance.containing(unique[0]) {
                let cand = cand as usize;
                if cand == s || selected_mark[cand] || instance.cost(cand) >= instance.cost(s) {
                    continue;
                }
                if unique
                    .iter()
                    .all(|&e| instance.set(cand).binary_search(&e).is_ok())
                    && best.is_none_or(|b| instance.cost(cand) < instance.cost(b))
                {
                    best = Some(cand);
                }
            }
            match best {
                Some(replacement) => {
                    for &e in instance.set(s) {
                        mult[e as usize] -= 1;
                    }
                    for &e in instance.set(replacement) {
                        mult[e as usize] += 1;
                    }
                    selected_mark[s] = false;
                    selected_mark[replacement] = true;
                    result.push(replacement);
                    improved = true;
                }
                None => result.push(s),
            }
        }

        let next = SetCoverSolution::new(instance, result);
        debug_assert!(next.is_cover(instance), "local search broke feasibility");
        debug_assert!(next.cost <= current.cost, "local search raised the cost");
        current = next;
        if !improved {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::solve_greedy;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn swaps_expensive_set_for_cheaper_equivalent() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], w(9)), (vec![0, 1], w(3))]);
        let start = SetCoverSolution::new(&inst, vec![0]);
        let improved = local_search(&inst, &start);
        assert_eq!(improved.selected, vec![1]);
        assert_eq!(improved.cost, w(3));
    }

    #[test]
    fn swap_respects_unique_coverage_only() {
        // set 0 covers {0,1}; element 1 is also covered by set 2, so set 0's
        // unique element is 0 — replaceable by the cheaper {0}-set
        let inst = SetCoverInstance::new(
            2,
            vec![(vec![0, 1], w(5)), (vec![0], w(1)), (vec![1], w(1))],
        );
        let start = SetCoverSolution::new(&inst, vec![0, 2]);
        let improved = local_search(&inst, &start);
        assert!(improved.is_cover(&inst));
        assert_eq!(improved.cost, w(2)); // {0} + {1}
    }

    #[test]
    fn fixpoint_on_optimal_solutions() {
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1], w(2)), (vec![2], w(1)), (vec![0, 1, 2], w(9))],
        );
        let opt = SetCoverSolution::new(&inst, vec![0, 1]);
        let out = local_search(&inst, &opt);
        assert_eq!(out, opt);
    }

    #[test]
    fn chains_of_swaps_converge() {
        // replacing A by B uncovers nothing; then B's redundancy appears
        let inst = SetCoverInstance::new(
            3,
            vec![
                (vec![0, 1, 2], w(10)),
                (vec![0, 1, 2], w(6)),
                (vec![0, 1], w(1)),
                (vec![2], w(1)),
            ],
        );
        let start = SetCoverSolution::new(&inst, vec![0, 2, 3]);
        let out = local_search(&inst, &start);
        assert!(out.is_cover(&inst));
        assert_eq!(out.cost, w(2)); // {0,1} + {2}
    }

    #[test]
    fn never_hurts_greedy_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(1414);
        for _ in 0..60 {
            let n = rng.gen_range(1..=10usize);
            let mut sets = Vec::new();
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..15))));
            }
            for _ in 0..rng.gen_range(0..=10usize) {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..15))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let g = solve_greedy(&inst).unwrap();
            let ls = local_search(&inst, &g);
            assert!(ls.is_cover(&inst));
            assert!(ls.cost <= g.cost);
            // idempotent at the fixpoint
            let again = local_search(&inst, &ls);
            assert_eq!(again.cost, ls.cost);
        }
    }
}
