//! Chvátal's greedy WSC algorithm on a sorted cursor with an overflow heap.
//!
//! At every step, select the set maximizing `newly covered / cost`
//! (zero-cost sets compare as infinitely good). Approximation factor
//! `H(Δ) ≤ ln Δ + 1` \[6\]. The naive implementation is `O(nm)`; following
//! \[9\] entries may be stale: the inspected entry's coverage count is
//! recomputed and the entry reinserted if it decreased — each set is
//! reinserted at most `|s|` times.
//!
//! Ratio comparisons use `u128` cross-multiplication: `cov_a / cost_a >
//! cov_b / cost_b ⇔ cov_a · cost_b > cov_b · cost_a` — no floats, no ties
//! broken by rounding. Final ties fall back to the smaller set id, keeping
//! the algorithm fully deterministic.
//!
//! ## Priority structure
//!
//! A single binary heap over all `m` entries spends most of the solve
//! sifting through `O(m)` pops of fully-stale entries (every set whose
//! initial optimistic ratio exceeds the final selection threshold surfaces
//! exactly once). Instead, the optimistic priorities are **sorted once** and
//! consumed by a cursor — a pop from the sorted prefix costs two loads —
//! while the rare reinserted (stale-but-alive) entries go to a small
//! overflow heap. The next inspection is the larger of the cursor head and
//! the overflow top, so the inspection sequence is *identical* to the lazy
//! heap's pop sequence (both drain the same total order over optimistic
//! entries), and with it every counter and the selection itself.
//!
//! Sorting uses a two-phase scheme: a pure-integer sort on the fixed-point
//! proxy `key = ⌊cov · 2³² / cost⌋` (descending, ids ascending within equal
//! keys), then a linear verification pass that re-sorts any equal-key run
//! whose exact order disagrees. The proxy is *exactly* monotone in the true
//! ratio — it is the floor of the exact rational scaled by 2³², with no
//! intermediate rounding — so differing keys always agree with the exact
//! comparator and only equal-key runs can need fixing (equal true ratios
//! already sit in exact order, because their tie-break is ascending id).
//!
//! Coverage state lives in a [`BitCover`] bitmap: an inspected entry's
//! current coverage is recomputed on demand with `newly_covered` over the
//! set's element list, instead of maintaining per-set live counters through
//! the element→sets `containing(e)` fan-out on every selection. The recount
//! yields the same value the old counters held, so the selection sequence
//! (and every counter) is bit-identical — only the access pattern changes,
//! from scattered index walks to one cache-resident bitmap.

use crate::bitcover::BitCover;
use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::u32_of;
use mc3_core::{Mc3Error, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Fixed-point proxy for the ratio `cov / cost`, exactly monotone in it:
/// `ratio_a < ratio_b ⟹ key_a ≤ key_b` and equal ratios give equal keys.
/// Zero-cost sets rank as infinitely good.
#[inline]
fn ratio_key(cov: u32, cost: u64) -> u64 {
    if cost == 0 {
        u64::MAX
    } else {
        ((cov as u64) << 32) / cost
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Fixed-point ratio proxy — compared first, exact chain on ties.
    key: u64,
    /// Number of still-uncovered elements this set covered when inspected.
    cov: u32,
    /// The set's cost.
    cost: u64,
    /// The set id (ties → smaller id wins).
    id: u32,
}

impl Entry {
    #[inline]
    fn new(cov: u32, cost: u64, id: u32) -> Entry {
        Entry {
            key: ratio_key(cov, cost),
            cov,
            cost,
            id,
        }
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // The key proxy agrees with the exact ratio order whenever it
        // differs (monotonicity), so it can safely short-circuit the u128
        // cross-multiplication. cost 0 ⇒ infinite ratio; among zero-cost
        // sets, higher coverage first.
        self.key.cmp(&other.key).then_with(|| {
            let lhs = self.cov as u128 * other.cost as u128;
            let rhs = other.cov as u128 * self.cost as u128;
            lhs.cmp(&rhs)
                .then_with(|| {
                    // zero-cost × zero-cost → both products 0: compare coverage
                    if self.cost == 0 && other.cost == 0 {
                        self.cov.cmp(&other.cov)
                    } else {
                        Ordering::Equal
                    }
                })
                .then_with(|| other.id.cmp(&self.id)) // smaller id = greater
        })
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs greedy over the sorted optimistic order; errors with
/// [`Mc3Error::Uncoverable`] (carrying the element index) if some element
/// is in no set.
pub fn solve_greedy(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    let _span = mc3_telemetry::span("setcover.greedy");
    instance.ensure_coverable()?;
    let m = instance.num_sets();
    let entry_at = |s: usize| {
        Entry::new(
            u32_of(instance.set(s).len()),
            instance.cost(s).raw(),
            u32_of(s),
        )
    };

    // Phase 1: pure-integer sort — descending key, ascending id on ties
    // (`!key` flips the order so a plain ascending sort works).
    let mut order: Vec<(u64, u32)> = (0..m)
        .filter(|&s| !instance.set(s).is_empty())
        .map(|s| {
            (
                !ratio_key(u32_of(instance.set(s).len()), instance.cost(s).raw()),
                u32_of(s),
            )
        })
        .collect();
    order.sort_unstable();
    // Phase 2: within each equal-key run, verify the exact descending order
    // and re-sort the run if the key proxy collapsed distinct ratios out of
    // order. Equal true ratios are already exact (their tie-break is the
    // ascending id phase 1 produced), so runs almost never need fixing.
    let mut i = 1;
    while i < order.len() {
        // audit:allow(no-unchecked-index-in-hot-loops) 1 <= i < order.len() by the loop bounds
        if order[i].0 != order[i - 1].0 {
            i += 1;
            continue;
        }
        let start = i - 1;
        // audit:allow(no-unchecked-index-in-hot-loops) start = i - 1 < order.len()
        let key = order[start].0;
        let mut end = i + 1;
        // audit:allow(no-unchecked-index-in-hot-loops) end < order.len() is checked first
        while end < order.len() && order[end].0 == key {
            end += 1;
        }
        // audit:allow(no-unchecked-index-in-hot-loops) start < end <= order.len()
        let run = &mut order[start..end];
        if run
            .windows(2)
            // audit:allow(no-unchecked-index-in-hot-loops) windows(2) yields exactly-2 slices
            .any(|w| entry_at(w[0].1 as usize) < entry_at(w[1].1 as usize))
        {
            run.sort_unstable_by(|a, b| entry_at(b.1 as usize).cmp(&entry_at(a.1 as usize)));
        }
        i = end;
    }

    let mut covered = BitCover::new(instance.num_elements());
    let mut uncovered_left = instance.num_elements();
    let mut cursor = 0usize;
    // Reinserted stale-but-alive entries; at most one live entry per set,
    // so capacity m keeps the selection loop allocation-free.
    let mut overflow: BinaryHeap<Entry> = BinaryHeap::with_capacity(m);

    let mut selected = Vec::with_capacity(m);
    // Certificate (verify feature): record each element's selection-time
    // price cost/newly_covered; dual fitting turns those into a proof of
    // the H(Δ) guarantee (see crate::verify).
    #[cfg(feature = "verify")]
    let mut price: Vec<f64> = vec![0.0; instance.num_elements()];
    let mut iterations = 0u64;
    let mut pq_rebuilds = 0u64;
    // Steady-state selection loop: every buffer is preallocated above, so
    // this span records zero allocations (pinned by `mc3-audit consistency`).
    let select_span = mc3_telemetry::span("setcover.greedy.select");
    while uncovered_left > 0 {
        // Next inspection: the larger of the cursor head and overflow top.
        let from_overflow = match (order.get(cursor), overflow.peek()) {
            (Some(&(flipped, id)), Some(h)) => match h.key.cmp(&!flipped) {
                Ordering::Greater => true,
                Ordering::Less => false,
                Ordering::Equal => *h > entry_at(id as usize),
            },
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => {
                return Err(Mc3Error::Internal(
                    // audit:allow(no-alloc-in-hot-loops) reviewed: cold error path, runs at most once
                    "greedy order exhausted with uncovered elements".to_owned(),
                ));
            }
        };
        let top = if from_overflow {
            // audit:allow(no-unwrap-in-lib) from_overflow requires overflow.peek() was Some
            overflow.pop().expect("peeked above")
        } else {
            // audit:allow(no-unchecked-index-in-hot-loops) !from_overflow requires order.get(cursor) was Some
            let (_, id) = order[cursor];
            cursor += 1;
            entry_at(id as usize)
        };
        iterations += 1;
        let s = top.id as usize;
        // Lazy recount against the coverage bitmap — the exact value the
        // per-set live counters used to hold.
        let current = covered.newly_covered(instance.set(s));
        if current == 0 {
            continue; // fully stale
        }
        if current < top.cov {
            // stale: reinsert with the fresh count
            pq_rebuilds += 1;
            // audit:allow(no-alloc-in-hot-loops) reviewed: lazy-rebuild heap push, amortized and counted by pq_rebuilds
            overflow.push(Entry::new(current, top.cost, top.id));
            continue;
        }
        // fresh maximum: select it
        // audit:allow(no-alloc-in-hot-loops) reviewed: solution accumulation — at most one push per selected set
        selected.push(s);
        mc3_telemetry::record(mc3_telemetry::Hist::GreedyPickCoverage, current as u64);
        #[cfg(feature = "verify")]
        let unit_price = top.cost as f64 / current as f64;
        #[cfg(feature = "verify")]
        for &e in instance.set(s) {
            if !covered.test(e) {
                // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
                price[e as usize] = unit_price;
            }
        }
        uncovered_left -= covered.mark(instance.set(s)) as usize;
    }
    drop(select_span);
    mc3_telemetry::span_add(
        mc3_telemetry::Counter::BitCoverWordOps,
        covered.take_word_ops(),
    );
    mc3_telemetry::span_add(mc3_telemetry::Counter::GreedyIterations, iterations);
    mc3_telemetry::span_add(mc3_telemetry::Counter::GreedyPqRebuilds, pq_rebuilds);
    mc3_telemetry::span_add(
        mc3_telemetry::Counter::GreedySelected,
        selected.len() as u64,
    );
    mc3_obs::debug(
        "setcover",
        "greedy cover built",
        &[
            ("iterations", iterations.into()),
            ("pq_rebuilds", pq_rebuilds.into()),
            ("selected", selected.len().into()),
        ],
    );
    #[cfg(feature = "verify")]
    {
        let _vspan = mc3_telemetry::span("verify.greedy_dual");
        crate::verify::assert_greedy_dual_feasible(instance, &price, &selected);
        mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyGreedyDualChecks, 1);
    }
    Ok(SetCoverSolution::new(instance, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn picks_best_ratio_first() {
        // Set 0 covers 3 elements at cost 3 (ratio 1), set 1 covers 1 at
        // cost 1 (ratio 1), set 2 covers 2 at cost 1 (ratio 2 → first).
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1, 2], w(3)), (vec![2], w(1)), (vec![0, 1], w(1))],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.selected, vec![1, 2]);
        assert_eq!(sol.cost, w(2));
    }

    #[test]
    fn zero_cost_sets_selected_eagerly() {
        let inst = SetCoverInstance::new(
            2,
            vec![
                (vec![0], Weight::ZERO),
                (vec![0, 1], w(10)),
                (vec![1], w(1)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.cost, w(1)); // free set + {1}
        assert!(sol.selected.contains(&0));
    }

    #[test]
    fn classic_log_n_worst_case_still_covers() {
        // Elements 0..6; "column" sets of growing size vs two "half" sets.
        let inst = SetCoverInstance::new(
            6,
            vec![
                (vec![0, 1, 2], w(1)),
                (vec![3, 4, 5], w(1)),
                (vec![0, 3], w(1)),
                (vec![1, 4], w(1)),
                (vec![2, 5], w(1)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        // greedy picks the two triples (ratio 3) = optimal here
        assert_eq!(sol.cost, w(2));
    }

    #[test]
    fn stale_entries_are_refreshed() {
        // After selecting the big set, the overlapping set's count drops.
        let inst = SetCoverInstance::new(
            4,
            vec![
                (vec![0, 1, 2], w(1)),
                (vec![2, 3], w(1)), // becomes 1-coverage after set 0
                (vec![3], w(10)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.selected, vec![0, 1]);
    }

    #[test]
    fn uncoverable_reports_element() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(1))]);
        let err = solve_greedy(&inst).unwrap_err();
        assert_eq!(err, Mc3Error::Uncoverable { query_index: 1 });
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let inst = SetCoverInstance::new(0, vec![]);
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.selected.is_empty());
        assert_eq!(sol.cost, Weight::ZERO);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], w(2)), (vec![0, 1], w(2))]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn key_proxy_is_monotone_in_exact_ratio() {
        // Cross-check the fixed-point proxy against the exact comparator on
        // adversarial near-tie pairs: huge costs (key collapses to 0/1),
        // cross-multiplication off-by-one ratios, and zero costs.
        let pairs: Vec<(u32, u64)> = vec![
            (1, 1),
            (1, 2),
            (2, 3),
            (3, 2),
            (1, u64::MAX),
            (2, u64::MAX),
            (u32::MAX, 1),
            (u32::MAX, u64::MAX),
            (1, (1u64 << 33) + 1),
            (1, (1u64 << 33) - 1),
            (7, 3),
            (0x1000_0001, 0x1000_0000),
            (0x1000_0000, 0x1000_0001),
            (5, 0),
            (9, 0),
        ];
        for &(ca, wa) in &pairs {
            for &(cb, wb) in &pairs {
                let exact = {
                    let lhs = ca as u128 * wb as u128;
                    let rhs = cb as u128 * wa as u128;
                    lhs.cmp(&rhs)
                };
                let ka = ratio_key(ca, wa);
                let kb = ratio_key(cb, wb);
                match exact {
                    Ordering::Less => assert!(ka <= kb, "{ca}/{wa} vs {cb}/{wb}"),
                    Ordering::Greater => assert!(ka >= kb, "{ca}/{wa} vs {cb}/{wb}"),
                    Ordering::Equal => {
                        // equal ratios only collide further on zero-cost
                        if wa != 0 || wb != 0 {
                            assert_eq!(ka, kb, "{ca}/{wa} vs {cb}/{wb}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn respects_harmonic_bound_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..50 {
            let n = rng.gen_range(1..=8usize);
            let m = rng.gen_range(1..=8usize);
            let mut sets = Vec::new();
            // guarantee coverability with singletons
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..10))));
            }
            for _ in 0..m {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..10))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let greedy = solve_greedy(&inst).unwrap();
            assert!(greedy.is_cover(&inst));
            let opt = crate::exact::solve_exact(&inst).unwrap();
            let h: f64 = (1..=inst.degree()).map(|i| 1.0 / i as f64).sum();
            let bound = (opt.cost.raw() as f64) * h + 1e-9;
            assert!(
                greedy.cost.raw() as f64 <= bound,
                "greedy {} exceeds H(Δ)·OPT = {bound}",
                greedy.cost
            );
        }
    }
}
