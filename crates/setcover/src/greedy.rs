//! Chvátal's greedy WSC algorithm with lazy-deletion heaps.
//!
//! At every step, select the set maximizing `newly covered / cost`
//! (zero-cost sets compare as infinitely good). Approximation factor
//! `H(Δ) ≤ ln Δ + 1` \[6\]. The naive implementation is `O(nm)`; following
//! \[9\] we keep a max-heap whose entries may be stale: on pop, the entry's
//! coverage count is recomputed and the entry reinserted if it decreased —
//! each set is reinserted at most `|s|` times, giving
//! `O(log m · Σ_s |s|)`.
//!
//! Ratio comparisons use `u128` cross-multiplication: `cov_a / cost_a >
//! cov_b / cost_b ⇔ cov_a · cost_b > cov_b · cost_a` — no floats, no ties
//! broken by rounding. Final ties fall back to the smaller set id, keeping
//! the algorithm fully deterministic.

use crate::instance::{SetCoverInstance, SetCoverSolution};
use mc3_core::{Mc3Error, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Number of still-uncovered elements this set covered when pushed.
    cov: u32,
    /// The set's cost.
    cost: u64,
    /// The set id (ties → smaller id wins).
    id: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher cov/cost first. cost 0 ⇒ infinite ratio; among zero-cost
        // sets, higher coverage first.
        let lhs = self.cov as u128 * other.cost as u128;
        let rhs = other.cov as u128 * self.cost as u128;
        lhs.cmp(&rhs)
            .then_with(|| {
                // zero-cost × zero-cost → both products 0: compare coverage
                if self.cost == 0 && other.cost == 0 {
                    self.cov.cmp(&other.cov)
                } else {
                    Ordering::Equal
                }
            })
            .then_with(|| other.id.cmp(&self.id)) // smaller id = greater
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs lazy-heap greedy; errors with [`Mc3Error::Uncoverable`] (carrying
/// the element index) if some element is in no set.
pub fn solve_greedy(instance: &SetCoverInstance) -> Result<SetCoverSolution> {
    let _span = mc3_telemetry::span("setcover.greedy");
    instance.ensure_coverable()?;
    let m = instance.num_sets();
    let mut covered = vec![false; instance.num_elements()];
    let mut uncovered_left = instance.num_elements();
    // current number of uncovered elements per set
    let mut live: Vec<u32> = (0..m).map(|s| instance.set(s).len() as u32).collect();

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(m);
    for (s, &cov) in live.iter().enumerate() {
        if cov > 0 {
            heap.push(Entry {
                cov,
                cost: instance.cost(s).raw(),
                id: s as u32,
            });
        }
    }

    let mut selected = Vec::new();
    // Certificate (verify feature): record each element's selection-time
    // price cost/newly_covered; dual fitting turns those into a proof of
    // the H(Δ) guarantee (see crate::verify).
    #[cfg(feature = "verify")]
    let mut price: Vec<f64> = vec![0.0; instance.num_elements()];
    let mut iterations = 0u64;
    let mut pq_rebuilds = 0u64;
    while uncovered_left > 0 {
        let Some(top) = heap.pop() else {
            return Err(Mc3Error::Internal(
                "greedy heap exhausted with uncovered elements".to_owned(),
            ));
        };
        iterations += 1;
        let s = top.id as usize;
        // audit:allow(no-unchecked-index-in-hot-loops) heap ids come from 0..num_sets
        let current = live[s];
        if current == 0 {
            continue; // fully stale
        }
        if current < top.cov {
            // stale: reinsert with the fresh count
            pq_rebuilds += 1;
            heap.push(Entry {
                cov: current,
                cost: top.cost,
                id: top.id,
            });
            continue;
        }
        // fresh maximum: select it
        selected.push(s);
        mc3_telemetry::record(mc3_telemetry::Hist::GreedyPickCoverage, current as u64);
        #[cfg(feature = "verify")]
        let unit_price = top.cost as f64 / current as f64;
        for &e in instance.set(s) {
            // audit:allow(no-unchecked-index-in-hot-loops) element ids are dense 0..num_elements
            if !covered[e as usize] {
                // audit:allow(no-unchecked-index-in-hot-loops) same dense-id invariant
                covered[e as usize] = true;
                #[cfg(feature = "verify")]
                {
                    // audit:allow(no-unchecked-index-in-hot-loops) same dense-id invariant
                    price[e as usize] = unit_price;
                }
                uncovered_left -= 1;
                for &other in instance.containing(e) {
                    // audit:allow(no-unchecked-index-in-hot-loops) containing() yields valid set ids
                    live[other as usize] -= 1;
                }
            }
        }
    }
    mc3_telemetry::span_add(mc3_telemetry::Counter::GreedyIterations, iterations);
    mc3_telemetry::span_add(mc3_telemetry::Counter::GreedyPqRebuilds, pq_rebuilds);
    mc3_telemetry::span_add(
        mc3_telemetry::Counter::GreedySelected,
        selected.len() as u64,
    );
    mc3_obs::debug(
        "setcover",
        "greedy cover built",
        &[
            ("iterations", iterations.into()),
            ("pq_rebuilds", pq_rebuilds.into()),
            ("selected", selected.len().into()),
        ],
    );
    #[cfg(feature = "verify")]
    {
        let _vspan = mc3_telemetry::span("verify.greedy_dual");
        crate::verify::assert_greedy_dual_feasible(instance, &price, &selected);
        mc3_telemetry::span_add(mc3_telemetry::Counter::VerifyGreedyDualChecks, 1);
    }
    Ok(SetCoverSolution::new(instance, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weight;

    fn w(v: u64) -> Weight {
        Weight::new(v)
    }

    #[test]
    fn picks_best_ratio_first() {
        // Set 0 covers 3 elements at cost 3 (ratio 1), set 1 covers 1 at
        // cost 1 (ratio 1), set 2 covers 2 at cost 1 (ratio 2 → first).
        let inst = SetCoverInstance::new(
            3,
            vec![(vec![0, 1, 2], w(3)), (vec![2], w(1)), (vec![0, 1], w(1))],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.selected, vec![1, 2]);
        assert_eq!(sol.cost, w(2));
    }

    #[test]
    fn zero_cost_sets_selected_eagerly() {
        let inst = SetCoverInstance::new(
            2,
            vec![
                (vec![0], Weight::ZERO),
                (vec![0, 1], w(10)),
                (vec![1], w(1)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.cost, w(1)); // free set + {1}
        assert!(sol.selected.contains(&0));
    }

    #[test]
    fn classic_log_n_worst_case_still_covers() {
        // Elements 0..6; "column" sets of growing size vs two "half" sets.
        let inst = SetCoverInstance::new(
            6,
            vec![
                (vec![0, 1, 2], w(1)),
                (vec![3, 4, 5], w(1)),
                (vec![0, 3], w(1)),
                (vec![1, 4], w(1)),
                (vec![2, 5], w(1)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        // greedy picks the two triples (ratio 3) = optimal here
        assert_eq!(sol.cost, w(2));
    }

    #[test]
    fn stale_entries_are_refreshed() {
        // After selecting the big set, the overlapping set's count drops.
        let inst = SetCoverInstance::new(
            4,
            vec![
                (vec![0, 1, 2], w(1)),
                (vec![2, 3], w(1)), // becomes 1-coverage after set 0
                (vec![3], w(10)),
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.is_cover(&inst));
        assert_eq!(sol.selected, vec![0, 1]);
    }

    #[test]
    fn uncoverable_reports_element() {
        let inst = SetCoverInstance::new(2, vec![(vec![0], w(1))]);
        let err = solve_greedy(&inst).unwrap_err();
        assert_eq!(err, Mc3Error::Uncoverable { query_index: 1 });
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let inst = SetCoverInstance::new(0, vec![]);
        let sol = solve_greedy(&inst).unwrap();
        assert!(sol.selected.is_empty());
        assert_eq!(sol.cost, Weight::ZERO);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let inst = SetCoverInstance::new(2, vec![(vec![0, 1], w(2)), (vec![0, 1], w(2))]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn respects_harmonic_bound_on_random_instances() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..50 {
            let n = rng.gen_range(1..=8usize);
            let m = rng.gen_range(1..=8usize);
            let mut sets = Vec::new();
            // guarantee coverability with singletons
            for e in 0..n as u32 {
                sets.push((vec![e], w(rng.gen_range(1..10))));
            }
            for _ in 0..m {
                let els: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.5)).collect();
                if !els.is_empty() {
                    sets.push((els, w(rng.gen_range(1..10))));
                }
            }
            let inst = SetCoverInstance::new(n, sets);
            let greedy = solve_greedy(&inst).unwrap();
            assert!(greedy.is_cover(&inst));
            let opt = crate::exact::solve_exact(&inst).unwrap();
            let h: f64 = (1..=inst.degree()).map(|i| 1.0 / i as f64).sum();
            let bound = (opt.cost.raw() as f64) * h + 1e-9;
            assert!(
                greedy.cost.raw() as f64 <= bound,
                "greedy {} exceeds H(Δ)·OPT = {bound}",
                greedy.cost
            );
        }
    }
}
