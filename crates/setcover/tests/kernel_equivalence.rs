//! Bit-identical equivalence of the `BitCover`-kernel hot paths against the
//! pre-kernel sparse reference implementations.
//!
//! The bitset rewrite of greedy / prune / local search is a pure access-
//! pattern change: every recount, removability probe and containment test
//! computes exactly the value the old per-set counters and binary searches
//! held. These tests pin that claim by replaying the *old* implementations
//! (copied below verbatim, modulo the coverage bookkeeping they used) on 200
//! seeded instances and demanding identical outputs — not just equal costs.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`).

use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_setcover::{
    local_search, prune_redundant, solve_greedy, SetCoverInstance, SetCoverSolution,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const CASES: u64 = 200;

/// A coverable WSC instance large enough to span several bitmap words.
fn rand_instance(rng: &mut StdRng) -> SetCoverInstance {
    let n = rng.gen_range(1..=200usize);
    let mut sets: Vec<(Vec<u32>, Weight)> = (0..n)
        .map(|e| (vec![e as u32], Weight::new(rng.gen_range(1..20u64))))
        .collect();
    let extras = rng.gen_range(0..=120usize);
    for _ in 0..extras {
        let len = rng.gen_range(1..=40usize);
        let els: Vec<u32> = (0..len).map(|_| rng.gen_range(0..n as u32)).collect();
        sets.push((els, Weight::new(rng.gen_range(1..20u64))));
    }
    SetCoverInstance::new(n, sets)
}

// --- pre-kernel reference implementations ---------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    cov: u32,
    cost: u64,
    id: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.cov as u128 * other.cost as u128;
        let rhs = other.cov as u128 * self.cost as u128;
        lhs.cmp(&rhs)
            .then_with(|| {
                if self.cost == 0 && other.cost == 0 {
                    self.cov.cmp(&other.cov)
                } else {
                    Ordering::Equal
                }
            })
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The old lazy-heap greedy: per-set live counters decremented through the
/// element→sets `containing(e)` fan-out on every selection.
fn reference_greedy(instance: &SetCoverInstance) -> (Vec<usize>, SetCoverSolution) {
    instance
        .ensure_coverable()
        .expect("coverable by singletons");
    let m = instance.num_sets();
    let mut covered = vec![false; instance.num_elements()];
    let mut uncovered_left = instance.num_elements();
    let mut live: Vec<u32> = (0..m).map(|s| instance.set(s).len() as u32).collect();

    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(m);
    for (s, &cov) in live.iter().enumerate() {
        if cov > 0 {
            heap.push(Entry {
                cov,
                cost: instance.cost(s).raw(),
                id: s as u32,
            });
        }
    }

    let mut sequence = Vec::new();
    while uncovered_left > 0 {
        let top = heap.pop().expect("heap exhausted");
        let s = top.id as usize;
        let current = live[s];
        if current == 0 {
            continue;
        }
        if current < top.cov {
            heap.push(Entry {
                cov: current,
                cost: top.cost,
                id: top.id,
            });
            continue;
        }
        sequence.push(s);
        for &e in instance.set(s) {
            if !covered[e as usize] {
                covered[e as usize] = true;
                uncovered_left -= 1;
                for &t in instance.containing(e) {
                    live[t as usize] -= 1;
                }
            }
        }
    }
    let sol = SetCoverSolution::new(instance, sequence.clone());
    (sequence, sol)
}

/// The old prune: full multiplicity recount, removability by an
/// all-elements `mult ≥ 2` scan.
fn reference_prune(instance: &SetCoverInstance, solution: &SetCoverSolution) -> SetCoverSolution {
    let mut multiplicity = vec![0u32; instance.num_elements()];
    for &s in &solution.selected {
        for &e in instance.set(s) {
            multiplicity[e as usize] += 1;
        }
    }
    let mut order = solution.selected.clone();
    order.sort_by_key(|&s| (std::cmp::Reverse(instance.cost(s)), std::cmp::Reverse(s)));

    let mut keep: Vec<usize> = Vec::with_capacity(order.len());
    for s in order {
        let removable = instance
            .set(s)
            .iter()
            .all(|&e| multiplicity[e as usize] >= 2);
        if removable && !instance.cost(s).is_zero() {
            for &e in instance.set(s) {
                multiplicity[e as usize] -= 1;
            }
        } else {
            keep.push(s);
        }
    }
    SetCoverSolution::new(instance, keep)
}

/// The old local search: per-pass `O(selected · m)` multiplicity recount and
/// per-element binary-search containment tests.
fn reference_local_search(
    instance: &SetCoverInstance,
    solution: &SetCoverSolution,
) -> SetCoverSolution {
    const MAX_PASSES: usize = 8;
    let mut current = solution.clone();
    for _ in 0..MAX_PASSES {
        let mut improved = false;

        let mut mult = vec![0u32; instance.num_elements()];
        let mut selected_mark = vec![false; instance.num_sets()];
        for &s in &current.selected {
            selected_mark[s] = true;
            for &e in instance.set(s) {
                mult[e as usize] += 1;
            }
        }

        let mut selected = current.selected.clone();
        selected.sort_by_key(|&s| std::cmp::Reverse(instance.cost(s)));
        let mut result: Vec<usize> = Vec::with_capacity(selected.len());

        for &s in &selected {
            let unique: Vec<u32> = instance
                .set(s)
                .iter()
                .copied()
                .filter(|&e| mult[e as usize] == 1)
                .collect();
            if unique.is_empty() {
                for &e in instance.set(s) {
                    mult[e as usize] -= 1;
                }
                selected_mark[s] = false;
                improved = true;
                continue;
            }
            let mut best: Option<usize> = None;
            for &cand in instance.containing(unique[0]) {
                let cand = cand as usize;
                if cand == s || selected_mark[cand] || instance.cost(cand) >= instance.cost(s) {
                    continue;
                }
                if unique
                    .iter()
                    .all(|&e| instance.set(cand).binary_search(&e).is_ok())
                    && best.is_none_or(|b| instance.cost(cand) < instance.cost(b))
                {
                    best = Some(cand);
                }
            }
            match best {
                Some(replacement) => {
                    for &e in instance.set(s) {
                        mult[e as usize] -= 1;
                    }
                    for &e in instance.set(replacement) {
                        mult[e as usize] += 1;
                    }
                    selected_mark[s] = false;
                    selected_mark[replacement] = true;
                    result.push(replacement);
                    improved = true;
                }
                None => result.push(s),
            }
        }

        current = SetCoverSolution::new(instance, result);
        if !improved {
            break;
        }
    }
    current
}

// --- equivalence properties -----------------------------------------------

#[test]
fn greedy_matches_sparse_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        let (sequence, reference) = reference_greedy(&inst);
        let kernel = solve_greedy(&inst).expect("coverable");
        assert_eq!(kernel.selected, reference.selected, "seed {seed}");
        assert_eq!(kernel.cost, reference.cost, "seed {seed}");
        // the sorted selection is exactly the selection sequence as a set
        let mut sorted = sequence;
        sorted.sort_unstable();
        assert_eq!(kernel.selected, sorted, "seed {seed}");
    }
}

#[test]
fn prune_matches_sparse_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        let greedy = solve_greedy(&inst).expect("coverable");
        let reference = reference_prune(&inst, &greedy);
        let kernel = prune_redundant(&inst, &greedy);
        assert_eq!(kernel.selected, reference.selected, "seed {seed}");
        assert_eq!(kernel.cost, reference.cost, "seed {seed}");
    }
}

#[test]
fn local_search_matches_sparse_reference() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        let greedy = solve_greedy(&inst).expect("coverable");
        let reference = reference_local_search(&inst, &greedy);
        let kernel = local_search(&inst, &greedy);
        assert_eq!(kernel.selected, reference.selected, "seed {seed}");
        assert_eq!(kernel.cost, reference.cost, "seed {seed}");
    }
}
