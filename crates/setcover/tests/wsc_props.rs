//! Property-based tests of the WSC substrate: every algorithm covers, the
//! approximation guarantees hold against the exact optimum, reverse-delete
//! never hurts, and all solvers are deterministic.

use mc3_core::Weight;
use mc3_setcover::{
    prune_redundant, solve_exact, solve_greedy, solve_lp_rounding, solve_primal_dual,
    SetCoverInstance,
};
use proptest::prelude::*;

/// A coverable WSC instance: singletons for every element plus random sets.
fn arb_instance() -> impl Strategy<Value = SetCoverInstance> {
    (1..8usize)
        .prop_flat_map(|n| {
            let singleton_costs = prop::collection::vec(1..20u64, n);
            let extra_set = (prop::collection::vec(0..n as u32, 1..6), 1..20u64);
            let extras = prop::collection::vec(extra_set, 0..8);
            (Just(n), singleton_costs, extras)
        })
        .prop_map(|(n, singles, extras)| {
            let mut sets: Vec<(Vec<u32>, Weight)> = singles
                .into_iter()
                .enumerate()
                .map(|(e, c)| (vec![e as u32], Weight::new(c)))
                .collect();
            for (els, c) in extras {
                sets.push((els, Weight::new(c)));
            }
            SetCoverInstance::new(n, sets)
        })
}

proptest! {
    #[test]
    fn all_algorithms_cover(inst in arb_instance()) {
        for sol in [
            solve_greedy(&inst).unwrap(),
            solve_primal_dual(&inst).unwrap(),
            solve_lp_rounding(&inst).unwrap(),
            solve_exact(&inst).unwrap(),
        ] {
            prop_assert!(sol.is_cover(&inst));
        }
    }

    #[test]
    fn guarantees_hold(inst in arb_instance()) {
        let opt = solve_exact(&inst).unwrap().cost.raw();
        let h: f64 = (1..=inst.degree().max(1)).map(|i| 1.0 / i as f64).sum();
        let f = inst.frequency().max(1) as u64;

        let greedy = solve_greedy(&inst).unwrap().cost.raw();
        prop_assert!(greedy as f64 <= h * opt as f64 + 1e-9, "greedy {greedy} > H(Δ)·{opt}");

        let pd = solve_primal_dual(&inst).unwrap().cost.raw();
        prop_assert!(pd <= f * opt, "primal-dual {pd} > {f}·{opt}");

        let lp = solve_lp_rounding(&inst).unwrap().cost.raw();
        prop_assert!(lp <= f * opt, "lp rounding {lp} > {f}·{opt}");

        // nothing beats the optimum
        prop_assert!(greedy >= opt && pd >= opt && lp >= opt);
    }

    #[test]
    fn prune_never_hurts_and_stays_feasible(inst in arb_instance()) {
        for sol in [
            solve_greedy(&inst).unwrap(),
            solve_primal_dual(&inst).unwrap(),
        ] {
            let pruned = prune_redundant(&inst, &sol);
            prop_assert!(pruned.is_cover(&inst));
            prop_assert!(pruned.cost <= sol.cost);
            prop_assert!(pruned.selected.len() <= sol.selected.len());
            // idempotent
            let twice = prune_redundant(&inst, &pruned);
            prop_assert_eq!(twice.cost, pruned.cost);
        }
    }

    #[test]
    fn determinism(inst in arb_instance()) {
        prop_assert_eq!(solve_greedy(&inst).unwrap(), solve_greedy(&inst).unwrap());
        prop_assert_eq!(solve_primal_dual(&inst).unwrap(), solve_primal_dual(&inst).unwrap());
        prop_assert_eq!(solve_exact(&inst).unwrap().cost, solve_exact(&inst).unwrap().cost);
    }

    #[test]
    fn exact_is_a_lower_bound_for_any_cover(inst in arb_instance(), pick_bits in prop::collection::vec(any::<bool>(), 16)) {
        // any feasible subset of sets costs at least OPT
        let opt = solve_exact(&inst).unwrap().cost;
        let selected: Vec<usize> = (0..inst.num_sets())
            .filter(|&s| pick_bits.get(s).copied().unwrap_or(false))
            .collect();
        let candidate = mc3_setcover::SetCoverSolution::new(&inst, selected);
        if candidate.is_cover(&inst) {
            prop_assert!(candidate.cost >= opt);
        }
    }
}
