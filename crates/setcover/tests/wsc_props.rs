//! Property-based tests of the WSC substrate: every algorithm covers, the
//! approximation guarantees hold against the exact optimum, reverse-delete
//! never hurts, and all solvers are deterministic.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_setcover::{
    prune_redundant, solve_exact, solve_greedy, solve_lp_rounding, solve_primal_dual,
    SetCoverInstance,
};

const CASES: u64 = 200;

/// A coverable WSC instance: singletons for every element plus random sets.
fn rand_instance(rng: &mut StdRng) -> SetCoverInstance {
    let n = rng.gen_range(1..8usize);
    let mut sets: Vec<(Vec<u32>, Weight)> = (0..n)
        .map(|e| (vec![e as u32], Weight::new(rng.gen_range(1..20u64))))
        .collect();
    let extras = rng.gen_range(0..8usize);
    for _ in 0..extras {
        let len = rng.gen_range(1..6usize);
        let els: Vec<u32> = (0..len).map(|_| rng.gen_range(0..n as u32)).collect();
        sets.push((els, Weight::new(rng.gen_range(1..20u64))));
    }
    SetCoverInstance::new(n, sets)
}

#[test]
fn all_algorithms_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        for sol in [
            solve_greedy(&inst).expect("coverable"),
            solve_primal_dual(&inst).expect("coverable"),
            solve_lp_rounding(&inst).expect("coverable"),
            solve_exact(&inst).expect("coverable"),
        ] {
            assert!(sol.is_cover(&inst), "seed {seed}");
        }
    }
}

#[test]
fn guarantees_hold() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        let opt = solve_exact(&inst).expect("coverable").cost.raw();
        let h: f64 = (1..=inst.degree().max(1)).map(|i| 1.0 / i as f64).sum();
        let f = inst.frequency().max(1) as u64;

        let greedy = solve_greedy(&inst).expect("coverable").cost.raw();
        assert!(
            greedy as f64 <= h * opt as f64 + 1e-9,
            "greedy {greedy} > H(Δ)·{opt}, seed {seed}"
        );

        let pd = solve_primal_dual(&inst).expect("coverable").cost.raw();
        assert!(pd <= f * opt, "primal-dual {pd} > {f}·{opt}, seed {seed}");

        let lp = solve_lp_rounding(&inst).expect("coverable").cost.raw();
        assert!(lp <= f * opt, "lp rounding {lp} > {f}·{opt}, seed {seed}");

        // nothing beats the optimum
        assert!(
            greedy >= opt && pd >= opt && lp >= opt,
            "below OPT, seed {seed}"
        );
    }
}

#[test]
fn prune_never_hurts_and_stays_feasible() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        for sol in [
            solve_greedy(&inst).expect("coverable"),
            solve_primal_dual(&inst).expect("coverable"),
        ] {
            let pruned = prune_redundant(&inst, &sol);
            assert!(pruned.is_cover(&inst), "pruned cover, seed {seed}");
            assert!(pruned.cost <= sol.cost, "prune raised cost, seed {seed}");
            assert!(
                pruned.selected.len() <= sol.selected.len(),
                "prune grew selection, seed {seed}"
            );
            // idempotent
            let twice = prune_redundant(&inst, &pruned);
            assert_eq!(twice.cost, pruned.cost, "prune not idempotent, seed {seed}");
        }
    }
}

#[test]
fn determinism() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        assert_eq!(
            solve_greedy(&inst).expect("coverable"),
            solve_greedy(&inst).expect("coverable"),
            "greedy nondeterministic, seed {seed}"
        );
        assert_eq!(
            solve_primal_dual(&inst).expect("coverable"),
            solve_primal_dual(&inst).expect("coverable"),
            "primal-dual nondeterministic, seed {seed}"
        );
        assert_eq!(
            solve_exact(&inst).expect("coverable").cost,
            solve_exact(&inst).expect("coverable").cost,
            "exact nondeterministic, seed {seed}"
        );
    }
}

#[test]
fn exact_is_a_lower_bound_for_any_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = rand_instance(&mut rng);
        // any feasible subset of sets costs at least OPT
        let opt = solve_exact(&inst).expect("coverable").cost;
        let selected: Vec<usize> = (0..inst.num_sets()).filter(|_| rng.gen_bool(0.5)).collect();
        let candidate = mc3_setcover::SetCoverSolution::new(&inst, selected);
        if candidate.is_cover(&inst) {
            assert!(candidate.cost >= opt, "cover below OPT, seed {seed}");
        }
    }
}
