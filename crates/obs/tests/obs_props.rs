//! Property tests for the exporters and the bench gate, driven by the
//! workspace's seeded `mc3_core::rng` (no external property-test crate).
//!
//! * Chrome export of a random well-nested span tree preserves parent/child
//!   containment and every duration exactly (via the `args.start_ns` /
//!   `args.wall_ns` integers the exporter embeds alongside the µs fields).
//! * Prometheus text round-trips every counter value, histogram
//!   count/sum/cumulative-bucket, and span wall/instance total through a
//!   small in-test exposition parser.
//! * `gate::compare` accepts identical reports and sits exactly on the
//!   documented tolerance boundary: a drift of `base × tol` passes, one
//!   more unit fails and names the offending counter/span.

use mc3_core::json::Json;
use mc3_core::rng::prelude::*;
use mc3_obs::{
    build_info_text, chrome_trace_json, compare, prometheus_text, GateConfig, GateViolation,
    RequestMetrics, Route,
};
use mc3_telemetry::{HistogramData, SpanData, TelemetryReport};
use std::collections::BTreeMap;

/// Random well-nested span tree: every node's wall time is the sum of its
/// children's walls plus a strictly positive self time, which is exactly
/// the shape real telemetry aggregation produces. Names are globally
/// unique so events map back to nodes unambiguously.
fn gen_tree(rng: &mut StdRng, depth: u32, next_id: &mut u32) -> SpanData {
    let id = *next_id;
    *next_id += 1;
    let n_children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..=3u32)
    };
    let children: Vec<SpanData> = (0..n_children)
        .map(|_| gen_tree(rng, depth - 1, next_id))
        .collect();
    let child_wall: u64 = children.iter().map(|c| c.wall_ns).sum();
    SpanData {
        name: format!("s{id}"),
        wall_ns: child_wall + rng.gen_range(1..=1_000_000u64),
        count: rng.gen_range(1..=5u64),
        counters: BTreeMap::new(),
        mem: mc3_telemetry::SpanMem::default(),
        children,
    }
}

fn walk<'a>(
    span: &'a SpanData,
    parent: Option<&'a str>,
    nodes: &mut Vec<&'a SpanData>,
    edges: &mut Vec<(&'a str, &'a str)>,
) {
    nodes.push(span);
    if let Some(p) = parent {
        edges.push((p, &span.name));
    }
    for child in &span.children {
        walk(child, Some(&span.name), nodes, edges);
    }
}

fn report_with(spans: Vec<SpanData>) -> TelemetryReport {
    TelemetryReport {
        spans,
        ..TelemetryReport::default()
    }
}

/// `(start_ns, wall_ns)` per event name, read from the exact-nanosecond
/// `args`, plus a µs-consistency check of the lossy `ts`/`dur` fields.
fn x_event_intervals(j: &Json) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    let events = j
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .expect("name")
            .to_owned();
        let args = e.get("args").expect("args");
        let start = args
            .get("start_ns")
            .and_then(Json::as_u64)
            .expect("start_ns");
        let wall = args.get("wall_ns").and_then(Json::as_u64).expect("wall_ns");
        for (micro_field, ns) in [("ts", start), ("dur", wall)] {
            let micros = e
                .get(micro_field)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("numeric {micro_field}"));
            assert!(
                (micros * 1_000.0 - ns as f64).abs() < 0.5,
                "{micro_field}={micros}µs disagrees with {ns}ns for '{name}'"
            );
        }
        assert!(
            out.insert(name, (start, wall)).is_none(),
            "duplicate event name"
        );
    }
    out
}

#[test]
fn chrome_export_preserves_nesting_and_durations() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let mut next_id = 0u32;
        let roots: Vec<SpanData> = (0..rng.gen_range(1..=3u32))
            .map(|_| gen_tree(&mut rng, 3, &mut next_id))
            .collect();
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for r in &roots {
            walk(r, None, &mut nodes, &mut edges);
        }

        let j = chrome_trace_json(&report_with(roots.clone()));
        let intervals = x_event_intervals(&j);

        // One complete event per tree node, each with its exact duration.
        assert_eq!(intervals.len(), nodes.len(), "seed {seed}");
        for n in &nodes {
            let &(_, wall) = intervals.get(&n.name).expect("event for node");
            assert_eq!(wall, n.wall_ns, "duration of '{}' (seed {seed})", n.name);
        }

        // Parent/child containment for every edge of the source tree.
        for (p, c) in &edges {
            let &(ps, pw) = intervals.get(*p).expect("parent event");
            let &(cs, cw) = intervals.get(*c).expect("child event");
            assert!(
                ps <= cs && cs + cw <= ps + pw,
                "child '{c}' [{cs}, {}) escapes parent '{p}' [{ps}, {}) (seed {seed})",
                cs + cw,
                ps + pw
            );
        }

        // Siblings (including the roots) never overlap: each starts at or
        // after the previous one's end, in source order.
        let mut sibling_runs: Vec<Vec<&SpanData>> = vec![roots.iter().collect()];
        sibling_runs.extend(nodes.iter().map(|n| n.children.iter().collect()));
        for run in sibling_runs {
            for pair in run.windows(2) {
                let &(s0, w0) = intervals.get(&pair[0].name).expect("event");
                let &(s1, _) = intervals.get(&pair[1].name).expect("event");
                assert!(
                    s0 + w0 <= s1,
                    "siblings '{}' and '{}' overlap (seed {seed})",
                    pair[0].name,
                    pair[1].name
                );
            }
        }
    }
}

/// Minimal exposition-format reader: every non-comment sample line becomes
/// `full sample name (labels included) → integer value`. All values this
/// repo exports are u64.
fn parse_prom(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        let value: u64 = value.parse().expect("u64 sample value");
        assert!(
            out.insert(name.to_owned(), value).is_none(),
            "duplicate sample {name}"
        );
    }
    out
}

#[test]
fn prometheus_text_round_trips_counts_and_sums() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);

        let counters: BTreeMap<String, u64> = (0..rng.gen_range(1..=6u32))
            .map(|i| (format!("c{i}"), rng.gen_range(0..=1_000_000u64)))
            .collect();

        let histograms: Vec<HistogramData> = (0..rng.gen_range(1..=3u32))
            .map(|i| {
                let mut buckets: Vec<(u32, u64)> = Vec::new();
                for idx in 0..=rng.gen_range(0..=12u32) {
                    if rng.gen_bool(0.6) {
                        buckets.push((idx, rng.gen_range(1..=50u64)));
                    }
                }
                let count = buckets.iter().map(|&(_, c)| c).sum();
                HistogramData {
                    name: format!("h{i}"),
                    count,
                    sum: rng.gen_range(0..=1_000_000u64),
                    buckets,
                }
            })
            .collect();

        let mut next_id = 0u32;
        let roots: Vec<SpanData> = (0..rng.gen_range(1..=2u32))
            .map(|_| gen_tree(&mut rng, 2, &mut next_id))
            .collect();

        let report = TelemetryReport {
            spans: roots.clone(),
            counters: counters.clone(),
            histograms: histograms.clone(),
            ..TelemetryReport::default()
        };
        let text = prometheus_text(&report);
        let samples = parse_prom(&text);

        for (name, &value) in &counters {
            assert_eq!(
                samples.get(&format!("mc3_{name}_total")),
                Some(&value),
                "counter {name} (seed {seed})"
            );
        }

        for h in &histograms {
            let metric = format!("mc3_{}", h.name);
            assert_eq!(samples.get(&format!("{metric}_sum")), Some(&h.sum));
            assert_eq!(samples.get(&format!("{metric}_count")), Some(&h.count));
            assert_eq!(
                samples.get(&format!("{metric}_bucket{{le=\"+Inf\"}}")),
                Some(&h.count),
                "+Inf bucket equals count (seed {seed})"
            );
            // Every emitted finite bucket must carry the cumulative count
            // of all source buckets whose upper bound fits under its `le`.
            let bucket_prefix = format!("{metric}_bucket{{le=\"");
            for (sample, &got) in &samples {
                let Some(rest) = sample.strip_prefix(&bucket_prefix) else {
                    continue;
                };
                let le = rest.trim_end_matches("\"}");
                if le == "+Inf" {
                    continue;
                }
                let bound: u64 = le.parse().expect("numeric le");
                let expected: u64 = h
                    .buckets
                    .iter()
                    .filter(|&&(idx, _)| HistogramData::bucket_bound(idx as usize) <= bound)
                    .map(|&(_, c)| c)
                    .sum();
                assert_eq!(got, expected, "cumulative at le={bound} (seed {seed})");
            }
        }

        // Span families: every path's wall and instance totals survive.
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        for r in &roots {
            walk(r, None, &mut nodes, &mut edges);
        }
        fn paths(prefix: &str, spans: &[SpanData], out: &mut Vec<(String, u64, u64)>) {
            for s in spans {
                let path = if prefix.is_empty() {
                    s.name.clone()
                } else {
                    format!("{prefix}/{}", s.name)
                };
                paths(&path, &s.children, out);
                out.push((path, s.wall_ns, s.count));
            }
        }
        let mut flat = Vec::new();
        paths("", &roots, &mut flat);
        for (path, wall, count) in flat {
            assert_eq!(
                samples.get(&format!(
                    "mc3_span_wall_nanoseconds_total{{span=\"{path}\"}}"
                )),
                Some(&wall),
                "wall of {path} (seed {seed})"
            );
            assert_eq!(
                samples.get(&format!("mc3_span_instances_total{{span=\"{path}\"}}")),
                Some(&count),
                "instances of {path} (seed {seed})"
            );
        }
    }
}

/// Like [`parse_prom`], but for the serving-plane families whose sample
/// values are seconds (floats). Every non-comment line must still parse.
fn parse_prom_f64(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().expect("numeric sample value");
        assert!(
            out.insert(name.to_owned(), value).is_none(),
            "duplicate sample {name}"
        );
    }
    out
}

#[test]
fn server_families_and_build_info_round_trip() {
    let status_class = |status: u16| match status / 100 {
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    };
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x5E17E ^ seed);
        let metrics = RequestMetrics::new();
        let mut expected: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        let mut latency: BTreeMap<&str, (u64, u64)> = BTreeMap::new(); // route → (count, sum_ns)
        for _ in 0..rng.gen_range(1..=200u32) {
            let route = match rng.gen_range(0..5u32) {
                0 => Route::Solve,
                1 => Route::Metrics,
                2 => Route::Healthz,
                3 => Route::Buildinfo,
                _ => Route::Other,
            };
            let status: u16 = match rng.gen_range(0..5u32) {
                0 => 200,
                1 => 204,
                2 => 301,
                3 => 404,
                _ => 500,
            };
            let ns = rng.gen_range(0..=10_000_000_000u64);
            metrics.observe(route, status, ns);
            *expected
                .entry((route.as_str(), status_class(status)))
                .or_default() += 1;
            let slot = latency.entry(route.as_str()).or_default();
            slot.0 += 1;
            slot.1 += ns;
        }

        let samples = parse_prom_f64(&metrics.render());

        // Requests: every (route, class) cell round-trips, zeros included.
        for route in Route::ALL {
            for class in ["2xx", "3xx", "4xx", "5xx", "other"] {
                let key = format!(
                    "mc3_requests_total{{route=\"{}\",status=\"{class}\"}}",
                    route.as_str()
                );
                let want = expected.get(&(route.as_str(), class)).copied().unwrap_or(0) as f64;
                assert_eq!(samples.get(&key), Some(&want), "{key} (seed {seed})");
            }
        }

        // Latency histograms: count and second-sum round-trip exactly
        // (the render computes sum as `sum_ns as f64 / 1e9`; so do we),
        // buckets are cumulative and end at +Inf == count.
        for route in Route::ALL {
            let r = route.as_str();
            let (count, sum_ns) = latency.get(r).copied().unwrap_or((0, 0));
            assert_eq!(
                samples.get(&format!(
                    "mc3_request_latency_seconds_count{{route=\"{r}\"}}"
                )),
                Some(&(count as f64))
            );
            assert_eq!(
                samples.get(&format!("mc3_request_latency_seconds_sum{{route=\"{r}\"}}")),
                Some(&(sum_ns as f64 / 1e9))
            );
            let prefix = format!("mc3_request_latency_seconds_bucket{{route=\"{r}\",le=\"");
            let mut buckets: Vec<(f64, f64)> = samples
                .iter()
                .filter_map(|(k, &v)| {
                    let le = k.strip_prefix(&prefix)?.trim_end_matches("\"}");
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().expect("numeric le")
                    };
                    Some((bound, v))
                })
                .collect();
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            assert!(!buckets.is_empty(), "no buckets for {r}");
            for pair in buckets.windows(2) {
                assert!(pair[0].1 <= pair[1].1, "non-cumulative buckets for {r}");
            }
            let last = buckets.last().expect("buckets non-empty");
            assert!(last.0.is_infinite(), "last bucket must be +Inf for {r}");
            assert_eq!(last.1, count as f64, "+Inf == count for {r} (seed {seed})");
        }

        assert!(samples.contains_key("mc3_inflight_requests"));
        assert!(samples.contains_key("mc3_log_events_dropped_total"));
    }

    // build_info: labels escape cleanly and the value is the constant 1.
    let text = build_info_text("1.2.3", Some("abc1234"));
    let samples = parse_prom_f64(&text);
    assert_eq!(
        samples.get("mc3_build_info{version=\"1.2.3\",git=\"abc1234\"}"),
        Some(&1.0)
    );
    let text = build_info_text("0.1.0", None);
    assert!(text.contains("git=\"unknown\""));

    // The three /metrics sections compose without declaring any family
    // twice (Prometheus rejects duplicate # TYPE lines).
    let mut exposition = prometheus_text(&TelemetryReport::default());
    exposition.push_str(&build_info_text("1.0.0", Some("deadbeef")));
    exposition.push_str(&RequestMetrics::new().render());
    let mut seen = BTreeMap::new();
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().expect("family name");
            assert!(
                seen.insert(family.to_owned(), ()).is_none(),
                "family {family} declared twice across the composed exposition"
            );
        }
    }
}

/// Base report whose counter values and span walls are multiples of 4, so
/// `base × tol` is an exact integer (and exact in f64) for every tolerance
/// tested — the pass/fail boundary sits on a representable value.
fn gate_base(rng: &mut StdRng) -> TelemetryReport {
    let counters: BTreeMap<String, u64> = (0..5u32)
        .map(|i| (format!("c{i}"), rng.gen_range(1..=1_000u64) * 4))
        .collect();
    let spans = vec![
        SpanData {
            name: "solve".to_owned(),
            wall_ns: rng.gen_range(1_000..=1_000_000u64) * 4,
            count: 1,
            counters: BTreeMap::new(),
            mem: mc3_telemetry::SpanMem::default(),
            children: vec![SpanData {
                name: "inner".to_owned(),
                wall_ns: rng.gen_range(100..=100_000u64) * 4,
                count: 1,
                counters: BTreeMap::new(),
                mem: mc3_telemetry::SpanMem::default(),
                children: Vec::new(),
            }],
        },
        SpanData {
            name: "io".to_owned(),
            wall_ns: rng.gen_range(100..=100_000u64) * 4,
            count: 1,
            counters: BTreeMap::new(),
            mem: mc3_telemetry::SpanMem::default(),
            children: Vec::new(),
        },
    ];
    TelemetryReport {
        spans,
        counters,
        ..TelemetryReport::default()
    }
}

#[test]
fn gate_boundaries_are_exact_at_every_tolerance() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x6A7E ^ seed);
        let base = gate_base(&mut rng);

        for tol in [0.0, 0.25, 0.5, 1.0] {
            let cfg = GateConfig {
                wall_tol: tol,
                counter_tol: tol,
                min_wall_ns: 0,
                check_mem: true,
            };

            // Identical reports always pass.
            let verdict = compare(&base, &base, &cfg);
            assert!(
                verdict.passed(),
                "identical must pass at tol {tol}: {verdict:?}"
            );

            // Counter boundary: drift of exactly base×tol passes in both
            // directions; one more unit fails and names the counter.
            let victim = "c2";
            let b = base.counters[victim];
            let drift = (b as f64 * tol) as u64;
            for cand_value in [b + drift, b - drift] {
                let mut cand = base.clone();
                cand.counters.insert(victim.to_owned(), cand_value);
                assert!(
                    compare(&base, &cand, &cfg).passed(),
                    "{b} -> {cand_value} is on the boundary at tol {tol} (seed {seed})"
                );
            }
            let mut too_high = base.clone();
            too_high.counters.insert(victim.to_owned(), b + drift + 1);
            let verdict = compare(&base, &too_high, &cfg);
            assert!(!verdict.passed());
            assert!(
                verdict.violations.iter().any(|v| matches!(
                    v,
                    GateViolation::CounterDrift { name, .. } if name == victim
                )),
                "offending counter must be named: {verdict:?}"
            );
            if let Some(cand_value) = b.checked_sub(drift + 1) {
                let mut too_low = base.clone();
                too_low.counters.insert(victim.to_owned(), cand_value);
                assert!(
                    !compare(&base, &too_low, &cfg).passed(),
                    "{b} -> {cand_value} exceeds tol {tol} downward (seed {seed})"
                );
            }

            // Wall boundary on the nested span: exactly base×(1+tol)
            // passes, one more nanosecond regresses. Shrinking never fails
            // (wall checks are regression-only).
            let w = base.spans[0].children[0].wall_ns;
            let limit = w + (w as f64 * tol) as u64;
            for (cand_wall, ok) in [(limit, true), (limit + 1, false), (w / 2, true)] {
                let mut cand = base.clone();
                cand.spans[0].children[0].wall_ns = cand_wall;
                // Keep the parent's wall ≥ its child's so the tree stays
                // plausible; the parent only grows, which is also checked.
                cand.spans[0].wall_ns = cand.spans[0].wall_ns.max(cand_wall) + 4;
                let verdict = compare(&base, &cand, &cfg);
                let wall_ok = !verdict.violations.iter().any(|v| {
                    matches!(
                        v,
                        GateViolation::WallRegression { path, .. } if path == "solve/inner"
                    )
                });
                assert_eq!(
                    wall_ok, ok,
                    "wall {w} -> {cand_wall} at tol {tol} (seed {seed}): {verdict:?}"
                );
            }

            // A vanished span is always a named violation.
            let mut gone = base.clone();
            gone.spans.pop();
            let verdict = compare(&base, &gone, &cfg);
            assert!(verdict.violations.iter().any(|v| matches!(
                v,
                GateViolation::MissingSpan { path } if path == "io"
            )));
        }
    }
}
