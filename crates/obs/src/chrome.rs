//! Chrome trace-event export.
//!
//! Converts a [`TelemetryReport`] span tree into the Chrome trace-event
//! JSON object format, loadable by `chrome://tracing` and Perfetto. Every
//! aggregated span node becomes one complete (`"ph": "X"`) event with
//! microsecond `ts`/`dur`; the exact nanosecond values ride along in
//! `args` so no precision is lost to the microsecond scale.
//!
//! A [`TelemetryReport`] stores *aggregated* spans (same-name siblings
//! merged, wall times summed), not raw begin/end timestamps, so the
//! exporter lays events out deterministically: roots are placed one after
//! another on a single track, and each node's children are packed
//! left-to-right starting at the parent's own start. For the well-nested
//! trees telemetry produces (children of one instance never outlast their
//! parent, so summed child wall ≤ summed parent wall), this preserves
//! strict parent/child containment — the property tests pin that.
//!
//! The memory axis rides along twice: every `"X"` event carries its
//! span's allocation tally in `args` (`mem.allocs`, `mem.alloc_bytes`,
//! `mem.frees`, `mem.peak_live_bytes`), and a `live_bytes` counter track
//! (`"ph": "C"`) samples net live bytes at every root-span boundary, so
//! the trace viewer draws the session's memory profile as a graph. The
//! counter samples roots only — per-span tallies are inclusive of
//! children, so summing nested spans would double-count.

use mc3_core::json::Json;
use mc3_telemetry::{SpanData, TelemetryReport};

/// Process id used for every emitted event.
const PID: u64 = 1;
/// Thread id used for every emitted event (one logical track: the report
/// has already merged worker-thread roots by name).
const TID: u64 = 1;

/// `ts`/`dur` value in microseconds: integral when exact, fractional
/// otherwise. Chrome and Perfetto both accept fractional microseconds.
fn micros(ns: u64) -> Json {
    if ns % 1_000 == 0 {
        Json::Int((ns / 1_000) as i128)
    } else {
        Json::Float(ns as f64 / 1_000.0)
    }
}

fn span_event(span: &SpanData, start_ns: u64) -> Json {
    let mut args: Vec<(String, Json)> = vec![
        ("start_ns".to_owned(), Json::Int(start_ns as i128)),
        ("wall_ns".to_owned(), Json::Int(span.wall_ns as i128)),
        ("count".to_owned(), Json::Int(span.count as i128)),
        ("mem.allocs".to_owned(), Json::Int(span.mem.allocs as i128)),
        (
            "mem.alloc_bytes".to_owned(),
            Json::Int(span.mem.alloc_bytes as i128),
        ),
        ("mem.frees".to_owned(), Json::Int(span.mem.frees as i128)),
        (
            "mem.peak_live_bytes".to_owned(),
            Json::Int(span.mem.peak_live_bytes as i128),
        ),
    ];
    for (name, &v) in &span.counters {
        args.push((format!("counter.{name}"), Json::Int(v as i128)));
    }
    Json::Object(
        [
            ("name".to_owned(), Json::Str(span.name.clone())),
            ("cat".to_owned(), Json::Str("mc3".to_owned())),
            ("ph".to_owned(), Json::Str("X".to_owned())),
            ("ts".to_owned(), micros(start_ns)),
            ("dur".to_owned(), micros(span.wall_ns)),
            ("pid".to_owned(), Json::Int(PID as i128)),
            ("tid".to_owned(), Json::Int(TID as i128)),
            ("args".to_owned(), Json::Object(args.into_iter().collect())),
        ]
        .into_iter()
        .collect(),
    )
}

/// Emits `span` at `start_ns` and packs its children sequentially from the
/// same origin.
fn emit_subtree(span: &SpanData, start_ns: u64, out: &mut Vec<Json>) {
    out.push(span_event(span, start_ns));
    let mut cursor = start_ns;
    for child in &span.children {
        emit_subtree(child, cursor, out);
        cursor = cursor.saturating_add(child.wall_ns);
    }
}

fn metadata_event(name: &str, value: &str) -> Json {
    Json::Object(
        [
            ("name".to_owned(), Json::Str(name.to_owned())),
            ("ph".to_owned(), Json::Str("M".to_owned())),
            ("pid".to_owned(), Json::Int(PID as i128)),
            ("tid".to_owned(), Json::Int(TID as i128)),
            (
                "args".to_owned(),
                Json::Object([("name".to_owned(), Json::Str(value.to_owned()))].into()),
            ),
        ]
        .into_iter()
        .collect(),
    )
}

/// A `"C"` (counter-track) sample of net live bytes at `ts_ns`.
fn live_bytes_event(ts_ns: u64, live: u64) -> Json {
    Json::Object(
        [
            ("name".to_owned(), Json::Str("live_bytes".to_owned())),
            ("cat".to_owned(), Json::Str("mc3".to_owned())),
            ("ph".to_owned(), Json::Str("C".to_owned())),
            ("ts".to_owned(), micros(ts_ns)),
            ("pid".to_owned(), Json::Int(PID as i128)),
            ("tid".to_owned(), Json::Int(TID as i128)),
            (
                "args".to_owned(),
                Json::Object([("bytes".to_owned(), Json::Int(live as i128))].into()),
            ),
        ]
        .into_iter()
        .collect(),
    )
}

/// Converts a report into the Chrome trace-event **object format**:
/// `{"traceEvents": [...], "displayTimeUnit": "ns"}`, with one `"X"`
/// event per aggregated span node, a `live_bytes` counter track sampled
/// at root-span boundaries, plus process/thread metadata events.
pub fn chrome_trace_json(report: &TelemetryReport) -> Json {
    let mut events = vec![
        metadata_event("process_name", "mc3"),
        metadata_event("thread_name", "solver"),
    ];
    let mut cursor = 0u64;
    // Running net live bytes across the sequential root layout, clamped
    // at zero (a root can free more than it allocates when it consumes
    // buffers built before the session gate opened).
    let mut live = 0i128;
    for root in &report.spans {
        events.push(live_bytes_event(cursor, clamp_live(live)));
        emit_subtree(root, cursor, &mut events);
        cursor = cursor.saturating_add(root.wall_ns);
        live += i128::from(root.mem.alloc_bytes) - i128::from(root.mem.free_bytes);
    }
    if !report.spans.is_empty() {
        events.push(live_bytes_event(cursor, clamp_live(live)));
    }
    Json::object([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::Str("ns".to_owned())),
    ])
}

fn clamp_live(live: i128) -> u64 {
    u64::try_from(live.max(0)).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn span(name: &str, wall_ns: u64, children: Vec<SpanData>) -> SpanData {
        SpanData {
            name: name.to_owned(),
            wall_ns,
            count: 1,
            counters: BTreeMap::from([("dinic_phases".to_owned(), 3u64)]),
            mem: mc3_telemetry::SpanMem {
                allocs: 4,
                alloc_bytes: 2048,
                frees: 2,
                free_bytes: 1024,
                peak_live_bytes: 1536,
                min_instance_allocs: 4,
            },
            children,
        }
    }

    fn report_with(spans: Vec<SpanData>) -> TelemetryReport {
        TelemetryReport {
            spans,
            ..TelemetryReport::default()
        }
    }

    fn trace_events(j: &Json) -> Vec<&Json> {
        j.get("traceEvents")
            .and_then(Json::as_array)
            .map(|a| a.iter().collect())
            .unwrap_or_default()
    }

    #[test]
    fn events_are_complete_x_events_with_micro_ts() {
        let report = report_with(vec![span(
            "solve",
            2_500_000,
            vec![
                span("setup", 1_000_000, vec![]),
                span("core", 1_234, vec![]),
            ],
        )]);
        let j = chrome_trace_json(&report);
        let events = trace_events(&j);
        // 2 metadata + 3 spans + 2 live_bytes samples (one per root
        // boundary: before the root and after the last one)
        assert_eq!(events.len(), 7);
        let xs: Vec<&&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        for e in &xs {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        }
        // solve: 2.5ms = 2500µs exactly
        let solve = xs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("solve"))
            .expect("solve event");
        assert_eq!(solve.get("dur").and_then(Json::as_u64), Some(2_500));
        // 1234ns is fractional in µs
        let core = xs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("core"))
            .expect("core event");
        let dur = core.get("dur").and_then(Json::as_f64).expect("f64 dur");
        assert!((dur - 1.234).abs() < 1e-9, "dur = {dur}");
        // counters and the memory tally surface in args
        assert_eq!(
            solve
                .get("args")
                .and_then(|a| a.get("counter.dinic_phases"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            solve
                .get("args")
                .and_then(|a| a.get("mem.alloc_bytes"))
                .and_then(Json::as_u64),
            Some(2048)
        );
        assert_eq!(
            solve
                .get("args")
                .and_then(|a| a.get("mem.peak_live_bytes"))
                .and_then(Json::as_u64),
            Some(1536)
        );
    }

    #[test]
    fn live_bytes_track_samples_root_boundaries() {
        // Two roots, each netting +1024 live bytes: samples must read
        // 0 (start), 1024 (between roots), 2048 (end).
        let report = report_with(vec![span("a", 1_000, vec![]), span("b", 2_000, vec![])]);
        let j = chrome_trace_json(&report);
        let samples: Vec<(u64, u64)> = trace_events(&j)
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .map(|e| {
                (
                    e.get("ts").and_then(Json::as_u64).expect("integral ts"),
                    e.get("args")
                        .and_then(|a| a.get("bytes"))
                        .and_then(Json::as_u64)
                        .expect("bytes"),
                )
            })
            .collect();
        assert_eq!(samples, vec![(0, 0), (1, 1024), (3, 2048)]);
    }

    #[test]
    fn roots_are_laid_out_sequentially() {
        let report = report_with(vec![span("a", 1_000, vec![]), span("b", 2_000, vec![])]);
        let j = chrome_trace_json(&report);
        let starts: Vec<u64> = trace_events(&j)
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("start_ns"))
                    .and_then(Json::as_u64)
                    .expect("start_ns")
            })
            .collect();
        assert_eq!(starts, vec![0, 1_000]);
    }

    #[test]
    fn output_parses_back_through_mc3_json() {
        let report = report_with(vec![span("solve", 77, vec![span("x", 33, vec![])])]);
        let text = chrome_trace_json(&report).to_string_pretty();
        let parsed = mc3_core::json::parse(&text).expect("chrome JSON parses");
        // 2 metadata + 2 spans + 2 live_bytes samples
        assert_eq!(trace_events(&parsed).len(), 6);
    }
}
