//! Prometheus text-format exposition.
//!
//! Renders a [`TelemetryReport`] in the Prometheus text exposition format
//! (version 0.0.4): every registered counter as `mc3_<name>_total`, every
//! log2 histogram as a native Prometheus histogram with cumulative
//! `_bucket{le="..."}` lines (upper bounds from
//! [`HistogramData::bucket_bound`]), and the aggregated span tree as four
//! labelled counter families (`mc3_span_wall_nanoseconds_total`,
//! `mc3_span_instances_total`, `mc3_span_allocs_total`,
//! `mc3_span_alloc_bytes_total`, label `span="<path>"`). The session's
//! memory high-water marks surface as two gauges
//! (`mc3_peak_live_bytes`, `mc3_peak_rss_bytes`); the global allocator
//! counters (`mem_allocs`, ...) and the `alloc_size_bytes` histogram flow
//! through the ordinary counter/histogram paths.
//!
//! Today the output is written to a file (`mc3 profile --prom FILE`); the
//! same function is the scrape body for a future serving mode — the text
//! is a complete, self-describing exposition with `# HELP`/`# TYPE` on
//! every family.

use mc3_telemetry::{HistogramData, SpanData, TelemetryReport};
use std::fmt::Write as _;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn walk_spans<'a>(prefix: &str, spans: &'a [SpanData], out: &mut Vec<(String, &'a SpanData)>) {
    for s in spans {
        let path = if prefix.is_empty() {
            s.name.clone()
        } else {
            format!("{prefix}/{}", s.name)
        };
        walk_spans(&path, &s.children, out);
        out.push((path, s));
    }
}

fn render_histogram(out: &mut String, h: &HistogramData) {
    let name = format!("mc3_{}", h.name);
    let _ = writeln!(
        out,
        "# HELP {name} MC3 log2-bucketed histogram `{}` (see docs/observability.md).",
        h.name
    );
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Cumulative counts over the dense index range up to the highest
    // non-empty bucket; `le` is each bucket's inclusive upper bound.
    let max_idx = h.buckets.iter().map(|&(i, _)| i).max();
    let mut cumulative = 0u64;
    if let Some(max_idx) = max_idx {
        for idx in 0..=max_idx {
            cumulative += h
                .buckets
                .iter()
                .find(|&&(i, _)| i == idx)
                .map(|&(_, c)| c)
                .unwrap_or(0);
            let bound = HistogramData::bucket_bound(idx as usize);
            if bound == u64::MAX {
                // The last log2 bucket is unbounded above; fold it into +Inf.
                break;
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders the `mc3_build_info` gauge: the conventional constant-`1`
/// info metric whose labels carry the crate version and (when the build
/// embedded one) the git revision. Appended to both the `/metrics` scrape
/// body and `mc3 profile --prom` exports so every exposition states
/// which build produced it.
pub fn build_info_text(version: &str, git: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP mc3_build_info Build metadata as labels; the value is always 1."
    );
    let _ = writeln!(out, "# TYPE mc3_build_info gauge");
    let _ = writeln!(
        out,
        "mc3_build_info{{version=\"{}\",git=\"{}\"}} 1",
        escape_label(version),
        escape_label(git.unwrap_or("unknown"))
    );
    out
}

/// Renders the full report as a Prometheus text exposition.
pub fn prometheus_text(report: &TelemetryReport) -> String {
    let mut out = String::new();
    for (name, &value) in &report.counters {
        let metric = format!("mc3_{name}_total");
        let _ = writeln!(
            out,
            "# HELP {metric} MC3 solver-internals counter `{name}` (see docs/observability.md)."
        );
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for h in &report.histograms {
        render_histogram(&mut out, h);
    }
    let _ = writeln!(
        out,
        "# HELP mc3_peak_live_bytes Peak net live bytes observed by the tracking allocator during the session."
    );
    let _ = writeln!(out, "# TYPE mc3_peak_live_bytes gauge");
    let _ = writeln!(out, "mc3_peak_live_bytes {}", report.peak_live_bytes);
    // "Not measured" (None) omits the family entirely — a scraper sees an
    // absent series, never a fake zero sample.
    if let Some(rss) = report.peak_rss_bytes {
        let _ = writeln!(
            out,
            "# HELP mc3_peak_rss_bytes Process peak resident set size (VmHWM) at report time; absent where unreadable."
        );
        let _ = writeln!(out, "# TYPE mc3_peak_rss_bytes gauge");
        let _ = writeln!(out, "mc3_peak_rss_bytes {rss}");
    }

    let mut flat: Vec<(String, &SpanData)> = Vec::new();
    walk_spans("", &report.spans, &mut flat);
    flat.sort_by(|a, b| a.0.cmp(&b.0));
    if !flat.is_empty() {
        let _ = writeln!(
            out,
            "# HELP mc3_span_wall_nanoseconds_total Summed wall time of an aggregated telemetry span (label `span` = /-joined path)."
        );
        let _ = writeln!(out, "# TYPE mc3_span_wall_nanoseconds_total counter");
        for (path, s) in &flat {
            let _ = writeln!(
                out,
                "mc3_span_wall_nanoseconds_total{{span=\"{}\"}} {}",
                escape_label(path),
                s.wall_ns
            );
        }
        let _ = writeln!(
            out,
            "# HELP mc3_span_instances_total Raw span instances merged into an aggregated telemetry span."
        );
        let _ = writeln!(out, "# TYPE mc3_span_instances_total counter");
        for (path, s) in &flat {
            let _ = writeln!(
                out,
                "mc3_span_instances_total{{span=\"{}\"}} {}",
                escape_label(path),
                s.count
            );
        }
        let _ = writeln!(
            out,
            "# HELP mc3_span_allocs_total Heap allocations attributed to an aggregated telemetry span (inclusive of children)."
        );
        let _ = writeln!(out, "# TYPE mc3_span_allocs_total counter");
        for (path, s) in &flat {
            let _ = writeln!(
                out,
                "mc3_span_allocs_total{{span=\"{}\"}} {}",
                escape_label(path),
                s.mem.allocs
            );
        }
        let _ = writeln!(
            out,
            "# HELP mc3_span_alloc_bytes_total Heap bytes allocated within an aggregated telemetry span (inclusive of children)."
        );
        let _ = writeln!(out, "# TYPE mc3_span_alloc_bytes_total counter");
        for (path, s) in &flat {
            let _ = writeln!(
                out,
                "mc3_span_alloc_bytes_total{{span=\"{}\"}} {}",
                escape_label(path),
                s.mem.alloc_bytes
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample() -> TelemetryReport {
        TelemetryReport {
            spans: vec![SpanData {
                name: "solve".to_owned(),
                wall_ns: 5_000,
                count: 1,
                counters: BTreeMap::new(),
                mem: mc3_telemetry::SpanMem {
                    allocs: 12,
                    alloc_bytes: 4096,
                    frees: 8,
                    free_bytes: 2048,
                    peak_live_bytes: 3072,
                    min_instance_allocs: 12,
                },
                children: vec![SpanData {
                    name: "setup".to_owned(),
                    wall_ns: 2_000,
                    count: 3,
                    counters: BTreeMap::new(),
                    mem: mc3_telemetry::SpanMem {
                        allocs: 6,
                        alloc_bytes: 1024,
                        frees: 6,
                        free_bytes: 1024,
                        peak_live_bytes: 512,
                        min_instance_allocs: 2,
                    },
                    children: Vec::new(),
                }],
            }],
            counters: BTreeMap::from([
                ("dinic_phases".to_owned(), 9u64),
                ("greedy_iterations".to_owned(), 0u64),
            ]),
            histograms: vec![HistogramData {
                name: "component_size".to_owned(),
                count: 6,
                sum: 23,
                buckets: vec![(0, 1), (2, 3), (3, 2)],
            }],
            peak_live_bytes: 3072,
            peak_rss_bytes: Some(1 << 21),
        }
    }

    #[test]
    fn counters_render_with_help_and_type() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE mc3_dinic_phases_total counter"));
        assert!(text.contains("\nmc3_dinic_phases_total 9\n"));
        // zeros are emitted too — absence would read as "metric vanished"
        assert!(text.contains("mc3_greedy_iterations_total 0"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_bounds() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE mc3_component_size histogram"));
        // bucket 0 (le=0): 1; bucket 1 (le=1): still 1; bucket 2 (le=3): 4;
        // bucket 3 (le=7): 6; then +Inf = count.
        assert!(text.contains("mc3_component_size_bucket{le=\"0\"} 1"));
        assert!(text.contains("mc3_component_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("mc3_component_size_bucket{le=\"3\"} 4"));
        assert!(text.contains("mc3_component_size_bucket{le=\"7\"} 6"));
        assert!(text.contains("mc3_component_size_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("mc3_component_size_sum 23"));
        assert!(text.contains("mc3_component_size_count 6"));
    }

    #[test]
    fn span_paths_become_labels() {
        let text = prometheus_text(&sample());
        assert!(text.contains("mc3_span_wall_nanoseconds_total{span=\"solve\"} 5000"));
        assert!(text.contains("mc3_span_wall_nanoseconds_total{span=\"solve/setup\"} 2000"));
        assert!(text.contains("mc3_span_instances_total{span=\"solve/setup\"} 3"));
    }

    #[test]
    fn span_memory_families_and_peak_gauges_render() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE mc3_span_allocs_total counter"));
        assert!(text.contains("mc3_span_allocs_total{span=\"solve\"} 12"));
        assert!(text.contains("mc3_span_allocs_total{span=\"solve/setup\"} 6"));
        assert!(text.contains("mc3_span_alloc_bytes_total{span=\"solve\"} 4096"));
        assert!(text.contains("mc3_span_alloc_bytes_total{span=\"solve/setup\"} 1024"));
        assert!(text.contains("# TYPE mc3_peak_live_bytes gauge"));
        assert!(text.contains("\nmc3_peak_live_bytes 3072\n"));
        assert!(text.contains("# TYPE mc3_peak_rss_bytes gauge"));
        assert!(text.contains("\nmc3_peak_rss_bytes 2097152\n"));
    }

    #[test]
    fn unmeasured_rss_omits_the_gauge_family() {
        let mut r = sample();
        r.peak_rss_bytes = None;
        let text = prometheus_text(&r);
        assert!(!text.contains("mc3_peak_rss_bytes"), "{text}");
        // The live-bytes gauge is unconditional.
        assert!(text.contains("\nmc3_peak_live_bytes 3072\n"), "{text}");
    }

    #[test]
    fn build_info_renders_labels_and_constant_one() {
        let text = build_info_text("0.1.0", Some("abc1234"));
        assert!(text.contains("# TYPE mc3_build_info gauge"), "{text}");
        assert!(
            text.contains("mc3_build_info{version=\"0.1.0\",git=\"abc1234\"} 1"),
            "{text}"
        );
        let no_git = build_info_text("0.1.0", None);
        assert!(
            no_git.contains("mc3_build_info{version=\"0.1.0\",git=\"unknown\"} 1"),
            "{no_git}"
        );
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }
}
