//! The server-side metric families behind `GET /metrics`.
//!
//! The registry in `mc3-telemetry` covers *solver* internals; a serving
//! process additionally needs the classic RED trio per route — request
//! counts by status, in-flight gauge, latency distribution. Those live
//! here, deliberately **outside** the closed `Counter`/`Hist` registry:
//! they are labelled families (route × status class), which the registry
//! is not shaped for, and keeping them separate means the batch-mode
//! report schema, the bench-gate baselines and the audit consistency
//! checks are all untouched by serving concerns.
//!
//! Everything is plain atomics — the hot path per request is a handful
//! of relaxed adds. Latency histograms reuse the telemetry crate's log2
//! bucketing ([`mc3_telemetry::bucket_of`] over nanoseconds) and render
//! with `le` bounds converted to seconds, the Prometheus convention.

use mc3_telemetry::HistogramData;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Routes the server distinguishes in its metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /solve`.
    Solve,
    /// `POST /solve-batch`.
    SolveBatch,
    /// `GET /metrics`.
    Metrics,
    /// `GET /healthz`.
    Healthz,
    /// `GET /buildinfo`.
    Buildinfo,
    /// Anything else (404s, bad methods).
    Other,
}

impl Route {
    /// Every route, in label order.
    pub const ALL: [Route; 6] = [
        Route::Solve,
        Route::SolveBatch,
        Route::Metrics,
        Route::Healthz,
        Route::Buildinfo,
        Route::Other,
    ];

    /// The `route` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Route::Solve => "solve",
            Route::SolveBatch => "solve-batch",
            Route::Metrics => "metrics",
            Route::Healthz => "healthz",
            Route::Buildinfo => "buildinfo",
            Route::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            Route::Solve => 0,
            Route::SolveBatch => 1,
            Route::Metrics => 2,
            Route::Healthz => 3,
            Route::Buildinfo => 4,
            Route::Other => 5,
        }
    }
}

/// Status classes used as the `status` label (individual codes would
/// explode cardinality without telling an operator anything more).
const STATUS_CLASSES: [&str; 5] = ["2xx", "3xx", "4xx", "5xx", "other"];

fn status_class_idx(status: u16) -> usize {
    match status / 100 {
        2 => 0,
        3 => 1,
        4 => 2,
        5 => 3,
        _ => 4,
    }
}

const ROUTES: usize = Route::ALL.len();
const CLASSES: usize = STATUS_CLASSES.len();

struct RouteLatency {
    count: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; mc3_telemetry::HIST_BUCKETS],
}

impl RouteLatency {
    fn new() -> RouteLatency {
        RouteLatency {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Live request-plane counters: `mc3_requests_total{route,status}`,
/// `mc3_inflight_requests` and the per-route
/// `mc3_request_latency_seconds` log2 histograms. One instance lives for
/// the server's lifetime; worker threads update it lock-free.
pub struct RequestMetrics {
    requests: [[AtomicU64; CLASSES]; ROUTES],
    inflight: AtomicU64,
    latency: [RouteLatency; ROUTES],
}

impl Default for RequestMetrics {
    fn default() -> RequestMetrics {
        RequestMetrics::new()
    }
}

/// RAII in-flight marker: increments `mc3_inflight_requests` on creation
/// and decrements on drop, so a panicking handler cannot leak the gauge.
pub struct InflightGuard<'a> {
    metrics: &'a RequestMetrics,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        // audit:allow(no-relaxed-atomics) reviewed: gauge decrement — scrapes only need an eventually-consistent figure
        self.metrics.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl RequestMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> RequestMetrics {
        RequestMetrics {
            requests: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            inflight: AtomicU64::new(0),
            latency: std::array::from_fn(|_| RouteLatency::new()),
        }
    }

    /// Marks a request in flight for the guard's lifetime.
    pub fn inflight_guard(&self) -> InflightGuard<'_> {
        // audit:allow(no-relaxed-atomics) reviewed: gauge increment — scrapes only need an eventually-consistent figure
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { metrics: self }
    }

    /// Current in-flight request count.
    pub fn inflight(&self) -> u64 {
        // audit:allow(no-relaxed-atomics) reviewed: gauge read for a scrape
        self.inflight.load(Ordering::Relaxed)
    }

    /// Records one completed request: bumps the status-classed request
    /// counter and folds the latency into the route's histogram.
    pub fn observe(&self, route: Route, status: u16, latency_ns: u64) {
        let (Some(row), Some(lat)) = (
            self.requests.get(route.idx()),
            self.latency.get(route.idx()),
        ) else {
            return;
        };
        if let Some(cell) = row.get(status_class_idx(status)) {
            // audit:allow(no-relaxed-atomics) reviewed: monotonic counter — scrapes tolerate momentary skew
            cell.fetch_add(1, Ordering::Relaxed);
        }
        // audit:allow(no-relaxed-atomics) reviewed: monotonic histogram cells — scrapes tolerate momentary skew
        lat.count.fetch_add(1, Ordering::Relaxed);
        // audit:allow(no-relaxed-atomics) reviewed: monotonic histogram cells — scrapes tolerate momentary skew
        lat.sum_ns.fetch_add(latency_ns, Ordering::Relaxed);
        if let Some(bucket) = lat.buckets.get(mc3_telemetry::bucket_of(latency_ns)) {
            // audit:allow(no-relaxed-atomics) reviewed: monotonic histogram cells — scrapes tolerate momentary skew
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total requests recorded for `route` with the status class of
    /// `status` — test/assertion hook.
    pub fn requests_total(&self, route: Route, status: u16) -> u64 {
        self.requests
            .get(route.idx())
            .and_then(|row| row.get(status_class_idx(status)))
            // audit:allow(no-relaxed-atomics) reviewed: monotonic counter read
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Renders the request-plane families (including the live
    /// `mc3_log_events_dropped_total` fed by the event-log rate limiter)
    /// as Prometheus exposition text. The server appends this to
    /// [`prometheus_text`](crate::prometheus_text) output for a scrape.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP mc3_requests_total Requests served, by route and status class."
        );
        let _ = writeln!(out, "# TYPE mc3_requests_total counter");
        for route in Route::ALL {
            let Some(row) = self.requests.get(route.idx()) else {
                continue;
            };
            for (class, cell) in STATUS_CLASSES.iter().zip(row.iter()) {
                // audit:allow(no-relaxed-atomics) reviewed: monotonic counter read for a scrape
                let v = cell.load(Ordering::Relaxed);
                let _ = writeln!(
                    out,
                    "mc3_requests_total{{route=\"{}\",status=\"{class}\"}} {v}",
                    route.as_str()
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP mc3_inflight_requests Requests currently being handled."
        );
        let _ = writeln!(out, "# TYPE mc3_inflight_requests gauge");
        let _ = writeln!(out, "mc3_inflight_requests {}", self.inflight());
        let _ = writeln!(
            out,
            "# HELP mc3_request_latency_seconds Request latency, log2-bucketed (bounds are exact nanosecond powers rendered in seconds)."
        );
        let _ = writeln!(out, "# TYPE mc3_request_latency_seconds histogram");
        for route in Route::ALL {
            let Some(lat) = self.latency.get(route.idx()) else {
                continue;
            };
            // audit:allow(no-relaxed-atomics) reviewed: histogram reads for a scrape — per-cell monotonicity suffices
            let count = lat.count.load(Ordering::Relaxed);
            // audit:allow(no-relaxed-atomics) reviewed: histogram reads for a scrape — per-cell monotonicity suffices
            let sum_ns = lat.sum_ns.load(Ordering::Relaxed);
            let label = route.as_str();
            let mut cumulative = 0u64;
            let max_idx = lat
                .buckets
                .iter()
                .enumerate()
                // audit:allow(no-relaxed-atomics) reviewed: histogram reads for a scrape
                .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
                .map(|(i, _)| i)
                .max();
            if let Some(max_idx) = max_idx {
                for (idx, bucket) in lat.buckets.iter().enumerate().take(max_idx + 1) {
                    // audit:allow(no-relaxed-atomics) reviewed: histogram reads for a scrape
                    cumulative += bucket.load(Ordering::Relaxed);
                    let bound_ns = HistogramData::bucket_bound(idx);
                    if bound_ns == u64::MAX {
                        break; // unbounded last bucket folds into +Inf
                    }
                    let _ = writeln!(
                        out,
                        "mc3_request_latency_seconds_bucket{{route=\"{label}\",le=\"{}\"}} {cumulative}",
                        bound_ns as f64 / 1e9
                    );
                }
            }
            let _ = writeln!(
                out,
                "mc3_request_latency_seconds_bucket{{route=\"{label}\",le=\"+Inf\"}} {count}"
            );
            let _ = writeln!(
                out,
                "mc3_request_latency_seconds_sum{{route=\"{label}\"}} {}",
                sum_ns as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "mc3_request_latency_seconds_count{{route=\"{label}\"}} {count}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP mc3_log_events_dropped_total Events dropped by the JSONL event-log rate limiter since process start."
        );
        let _ = writeln!(out, "# TYPE mc3_log_events_dropped_total counter");
        let _ = writeln!(
            out,
            "mc3_log_events_dropped_total {}",
            crate::events::dropped_total()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_buckets_by_route_and_status_class() {
        let m = RequestMetrics::new();
        m.observe(Route::Solve, 200, 1_000_000);
        m.observe(Route::Solve, 204, 2_000_000);
        m.observe(Route::Solve, 400, 500);
        m.observe(Route::Healthz, 200, 100);
        assert_eq!(m.requests_total(Route::Solve, 200), 2);
        assert_eq!(m.requests_total(Route::Solve, 404), 1);
        assert_eq!(m.requests_total(Route::Healthz, 200), 1);
        assert_eq!(m.requests_total(Route::Metrics, 200), 0);
    }

    #[test]
    fn inflight_guard_is_panic_safe() {
        let m = RequestMetrics::new();
        {
            let _a = m.inflight_guard();
            let _b = m.inflight_guard();
            assert_eq!(m.inflight(), 2);
        }
        assert_eq!(m.inflight(), 0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.inflight_guard();
            panic!("handler died");
        }));
        assert!(caught.is_err());
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn render_emits_every_family_with_seconds_bounds() {
        let m = RequestMetrics::new();
        // 1 µs and ~1 s latencies land in distinct log2 buckets.
        m.observe(Route::Solve, 200, 1_000);
        m.observe(Route::Solve, 200, 1_000_000_000);
        m.observe(Route::Other, 500, 10);
        let text = m.render();
        assert!(text.contains("# TYPE mc3_requests_total counter"), "{text}");
        assert!(
            text.contains("mc3_requests_total{route=\"solve\",status=\"2xx\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mc3_requests_total{route=\"other\",status=\"5xx\"} 1"),
            "{text}"
        );
        assert!(text.contains("mc3_inflight_requests 0"), "{text}");
        assert!(
            text.contains("# TYPE mc3_request_latency_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("mc3_request_latency_seconds_count{route=\"solve\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("mc3_request_latency_seconds_bucket{route=\"solve\",le=\"+Inf\"} 2"),
            "{text}"
        );
        // The sum renders in seconds: 1_000 ns + 1 s = 1.000001 s.
        assert!(
            text.contains("mc3_request_latency_seconds_sum{route=\"solve\"} 1.000001"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE mc3_log_events_dropped_total counter"),
            "{text}"
        );
    }

    #[test]
    fn latency_bucket_bounds_are_cumulative_and_sorted() {
        let m = RequestMetrics::new();
        for ns in [1u64, 2, 4, 1_000, 1_000_000] {
            m.observe(Route::Metrics, 200, ns);
        }
        let text = m.render();
        // Pull out this route's bucket lines and check cumulative order.
        let mut last = 0u64;
        let mut bounds: Vec<f64> = Vec::new();
        for line in text.lines() {
            let Some(rest) =
                line.strip_prefix("mc3_request_latency_seconds_bucket{route=\"metrics\",le=\"")
            else {
                continue;
            };
            let Some((le, count)) = rest.split_once("\"} ") else {
                continue;
            };
            let count: u64 = count.parse().expect("count parses");
            assert!(count >= last, "cumulative counts must not decrease");
            last = count;
            if le != "+Inf" {
                bounds.push(le.parse().expect("le parses as f64"));
            }
        }
        assert_eq!(last, 5);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
    }
}
