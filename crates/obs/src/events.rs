//! The structured event log: leveled JSONL with sequence numbers, span
//! context and token-bucket rate limiting.
//!
//! Library crates must not write diagnostics to stderr directly (the
//! `no-raw-eprintln-in-lib` audit rule); they call [`debug`]/[`info`]/
//! [`warn`]/[`error`] instead. When no sink is installed an event costs
//! one relaxed atomic load — the same discipline as the telemetry gate —
//! so call sites can live on hot paths.
//!
//! One event is one JSON object on one line (keys sorted, courtesy of
//! `mc3_core::json`):
//!
//! ```json
//! {"fields":{"components":3},"level":"info","msg":"solve finished",
//!  "seq":7,"span":"solve/solve_core","target":"solver","ts_ns":1290334}
//! ```
//!
//! * `seq` — monotonic per admitted event, no gaps; a consumer can detect
//!   sink restarts by a reset and rate-limit drops by the `dropped` field.
//! * `ts_ns` — [`mc3_telemetry::monotonic_ns`] (this crate never reads the
//!   clock itself; see the `no-bare-instant` rule).
//! * `span` — the emitting thread's open telemetry span path, when a
//!   session is recording.
//! * `dropped` — present on the first admitted event after the token
//!   bucket dropped events; counts the events lost since the last line.
//!
//! Rate limiting is a token bucket (capacity [`EventLogConfig::burst`],
//! refill [`EventLogConfig::per_sec`] tokens per second) so a pathological
//! solve cannot turn the event log into an IO bottleneck: bursts pass,
//! sustained floods are summarized by `dropped` counts.

use mc3_core::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics (per-phase internals).
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Something unusual that did not fail the operation.
    Warn = 2,
    /// An operation failed.
    Error = 3,
}

impl Level {
    /// Wire name, lowercase.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a wire name back into a level.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    /// Gate encoding of the level: the discriminant as `u8`
    /// (`u8::MAX` is reserved for "gate closed").
    #[inline]
    fn as_gate(self) -> u8 {
        // audit:allow(no-silent-truncation) enum discriminants are 0..=3 by construction
        self as u8
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::Int(*v as i128),
            Value::I64(v) => Json::Int(*v as i128),
            Value::F64(v) => Json::Float(*v),
            Value::Bool(v) => Json::Bool(*v),
            Value::Str(v) => Json::Str(v.clone()),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Sink installation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventLogConfig {
    /// Minimum level admitted to the sink.
    pub min_level: Level,
    /// Token-bucket capacity: how many events may pass in one burst.
    pub burst: u32,
    /// Token refill rate per second; `0` disables rate limiting.
    pub per_sec: u32,
}

impl Default for EventLogConfig {
    fn default() -> EventLogConfig {
        EventLogConfig {
            min_level: Level::Info,
            burst: 512,
            per_sec: 128,
        }
    }
}

struct SinkState {
    writer: Box<dyn std::io::Write + Send>,
    cfg: EventLogConfig,
    /// Token bucket level, scaled ×1e9 so refill arithmetic stays integral.
    tokens_nano: u128,
    last_refill_ns: u64,
    /// Events dropped since the last admitted one.
    dropped: u64,
}

/// `u8::MAX` = no sink installed; otherwise the installed minimum level.
/// This single relaxed load is the whole disabled-path cost.
static GATE: AtomicU8 = AtomicU8::new(u8::MAX);
static SEQ: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<SinkState>> = Mutex::new(None);
/// Cumulative rate-limiter drops since process start. Unlike the per-line
/// `dropped` field (which resets on every admitted event) this never
/// resets, so `/metrics` can expose it as a live monotonic counter
/// (`mc3_log_events_dropped_total`) instead of the figure only being
/// reconstructable from the log at shutdown.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Request id attached to every event this thread emits while a
    /// [`RequestIdScope`] is live — the span-context analogue for server
    /// requests, so one request's log lines correlate without parsing.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Total events dropped by the token-bucket rate limiter since process
/// start (monotonic; never reset by sink reinstalls).
pub fn dropped_total() -> u64 {
    // audit:allow(no-relaxed-atomics) reviewed: monotonic counter read for a metrics scrape — no ordering needed
    DROPPED_TOTAL.load(Ordering::Relaxed)
}

/// RAII scope attaching `request_id` to every event emitted from this
/// thread until the guard drops. Scopes are per-thread (the type is
/// `!Send`) and restore the previous id on drop, so brief nested scopes
/// behave.
pub struct RequestIdScope {
    prev: Option<String>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a [`RequestIdScope`] for `request_id` on this thread.
pub fn request_id_scope(request_id: &str) -> RequestIdScope {
    let prev = REQUEST_ID.with(|r| r.borrow_mut().replace(request_id.to_owned()));
    RequestIdScope {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for RequestIdScope {
    fn drop(&mut self) {
        REQUEST_ID.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

/// The request id currently scoped onto this thread, if any.
pub fn current_request_id() -> Option<String> {
    REQUEST_ID.with(|r| r.borrow().clone())
}

fn lock_sink() -> std::sync::MutexGuard<'static, Option<SinkState>> {
    SINK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Installs `writer` as the process-wide event sink, replacing any
/// previous one. Sequence numbers restart at 0 on every install so one
/// sink sees one gapless sequence.
pub fn install(writer: Box<dyn std::io::Write + Send>, cfg: EventLogConfig) {
    let mut sink = lock_sink();
    // audit:allow(no-relaxed-atomics) reviewed: SeqCst — the seq restart must be ordered before the gate publish below
    SEQ.store(0, Ordering::SeqCst);
    *sink = Some(SinkState {
        writer,
        cfg,
        tokens_nano: u128::from(cfg.burst) * 1_000_000_000,
        last_refill_ns: mc3_telemetry::monotonic_ns(),
        dropped: 0,
    });
    // audit:allow(no-relaxed-atomics) reviewed: SeqCst gate publish — opens the sink to concurrent emitters
    GATE.store(cfg.min_level.as_gate(), Ordering::SeqCst);
}

/// Installs a sink appending JSONL to `path`.
pub fn install_file(path: &str, cfg: EventLogConfig) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    install(Box::new(std::io::BufWriter::new(file)), cfg);
    Ok(())
}

/// Installs a sink writing JSONL lines to stderr (the binary's stdout
/// stays reserved for its actual output).
pub fn install_stderr(cfg: EventLogConfig) {
    install(Box::new(std::io::stderr()), cfg);
}

/// Shared line buffer for tests and in-process consumers.
pub type CaptureBuffer = Arc<Mutex<Vec<String>>>;

struct CaptureWriter {
    lines: CaptureBuffer,
    partial: Vec<u8>,
}

impl std::io::Write for CaptureWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if let Ok(mut lines) = self.lines.lock() {
                lines.push(text);
            }
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Installs an in-memory sink and returns the shared buffer of emitted
/// lines — the test harness's view of the log.
pub fn install_capture(cfg: EventLogConfig) -> CaptureBuffer {
    let lines: CaptureBuffer = Arc::new(Mutex::new(Vec::new()));
    install(
        Box::new(CaptureWriter {
            lines: Arc::clone(&lines),
            partial: Vec::new(),
        }),
        cfg,
    );
    lines
}

/// Removes the installed sink (flushing it) and closes the gate.
pub fn uninstall() {
    let mut sink = lock_sink();
    // audit:allow(no-relaxed-atomics) reviewed: SeqCst gate close — must be visible before the sink is dropped
    GATE.store(u8::MAX, Ordering::SeqCst);
    if let Some(mut state) = sink.take() {
        // audit:allow(no-swallowed-result) reviewed: best-effort flush on teardown, the sink is going away
        let _ = state.writer.flush();
    }
}

/// Whether an event at `level` would currently be admitted by the gate
/// (sink installed and level at or above the configured minimum).
#[inline]
pub fn enabled(level: Level) -> bool {
    // audit:allow(no-relaxed-atomics) reviewed: monotonic gate probe — a stale read only delays admission
    level.as_gate() >= GATE.load(Ordering::Relaxed) && GATE.load(Ordering::Relaxed) != u8::MAX
}

#[allow(clippy::too_many_arguments)]
fn build_line(
    seq: u64,
    ts_ns: u64,
    level: Level,
    target: &str,
    msg: &str,
    fields: &[(&str, Value)],
    span: Option<String>,
    request_id: Option<String>,
    dropped: u64,
) -> String {
    let mut map: BTreeMap<String, Json> = BTreeMap::new();
    map.insert("seq".to_owned(), Json::Int(seq as i128));
    map.insert("ts_ns".to_owned(), Json::Int(ts_ns as i128));
    map.insert("level".to_owned(), Json::Str(level.as_str().to_owned()));
    map.insert("target".to_owned(), Json::Str(target.to_owned()));
    map.insert("msg".to_owned(), Json::Str(msg.to_owned()));
    if let Some(span) = span {
        map.insert("span".to_owned(), Json::Str(span));
    }
    if let Some(rid) = request_id {
        map.insert("request_id".to_owned(), Json::Str(rid));
    }
    if !fields.is_empty() {
        map.insert(
            "fields".to_owned(),
            Json::Object(
                fields
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.to_json()))
                    .collect(),
            ),
        );
    }
    if dropped > 0 {
        map.insert("dropped".to_owned(), Json::Int(dropped as i128));
    }
    Json::Object(map).to_string()
}

/// Emits one event. The normal entry points are the level helpers
/// ([`debug`], [`info`], [`warn`], [`error`]); this is the shared core.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    // Fast path: no sink, or level below the installed minimum.
    // audit:allow(no-relaxed-atomics) reviewed: gate probe only — admission is re-checked under the sink lock
    let gate = GATE.load(Ordering::Relaxed);
    if gate == u8::MAX || level.as_gate() < gate {
        return;
    }
    let now = mc3_telemetry::monotonic_ns();
    let span = mc3_telemetry::current_span_path();
    let request_id = current_request_id();
    let mut sink = lock_sink();
    let Some(state) = sink.as_mut() else { return };

    // Token-bucket admission (nanotoken units: 1 token = 1e9).
    if state.cfg.per_sec > 0 {
        let elapsed = now.saturating_sub(state.last_refill_ns);
        state.last_refill_ns = now;
        let refill = u128::from(elapsed) * u128::from(state.cfg.per_sec);
        let cap = u128::from(state.cfg.burst) * 1_000_000_000;
        state.tokens_nano = (state.tokens_nano + refill).min(cap);
        if state.tokens_nano < 1_000_000_000 {
            state.dropped += 1;
            // audit:allow(no-relaxed-atomics) reviewed: monotonic tally — readers only need eventual totals
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.tokens_nano -= 1_000_000_000;
    }

    // audit:allow(no-relaxed-atomics) reviewed: seq only needs uniqueness — writes are serialized by the sink mutex
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dropped = std::mem::take(&mut state.dropped);
    let line = build_line(
        seq, now, level, target, msg, fields, span, request_id, dropped,
    );
    if writeln!(state.writer, "{line}").is_err() || state.writer.flush().is_err() {
        // Last resort when the sink itself is broken: say so once on
        // stderr and tear the sink down rather than erroring every event.
        // audit:allow(no-raw-eprintln-in-lib) reviewed: sink-failure fallback, the sink is gone
        eprintln!("mc3-obs: event sink write failed; uninstalling event log");
        // audit:allow(no-relaxed-atomics) reviewed: SeqCst gate close on sink failure — must beat the sink teardown
        GATE.store(u8::MAX, Ordering::SeqCst);
        *sink = None;
    }
}

/// Emits a [`Level::Debug`] event.
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Debug, target, msg, fields);
}

/// Emits a [`Level::Info`] event.
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Info, target, msg, fields);
}

/// Emits a [`Level::Warn`] event.
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Warn, target, msg, fields);
}

/// Emits a [`Level::Error`] event.
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Error, target, msg, fields);
}

/// Emits one structured access-log event for a served HTTP request
/// (target `server.access`, level info). The request id riding on the
/// thread's [`RequestIdScope`] attaches automatically, so the line
/// correlates with every other event the request emitted.
pub fn access(method: &str, route: &str, status: u16, latency_ns: u64, bytes_out: u64) {
    event(
        Level::Info,
        "server.access",
        "request served",
        &[
            ("method", Value::Str(method.to_owned())),
            ("route", Value::Str(route.to_owned())),
            ("status", Value::U64(u64::from(status))),
            ("latency_ns", Value::U64(latency_ns)),
            ("bytes_out", Value::U64(bytes_out)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Event-log tests share the global sink; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn parse_line(line: &str) -> Json {
        mc3_core::json::parse(line).expect("event line is valid JSON")
    }

    #[test]
    fn events_are_jsonl_with_contiguous_seq() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            ..EventLogConfig::default()
        });
        info("solver", "solve finished", &[("cost", Value::U64(42))]);
        debug("flow", "phase done", &[]);
        warn("setcover", "fallback", &[("reason", "lp".into())]);
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = parse_line(line);
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert!(v.get("ts_ns").and_then(Json::as_u64).is_some());
        }
        let first = parse_line(&lines[0]);
        assert_eq!(first.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(first.get("target").and_then(Json::as_str), Some("solver"));
        assert_eq!(
            first
                .get("fields")
                .and_then(|f| f.get("cost"))
                .and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn level_filter_drops_below_minimum() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Warn,
            ..EventLogConfig::default()
        });
        debug("t", "nope", &[]);
        info("t", "nope", &[]);
        warn("t", "yes", &[]);
        error("t", "yes", &[]);
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(lines.len(), 2);
        // Filtered events consume no sequence numbers.
        assert_eq!(
            parse_line(&lines[1]).get("seq").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn no_sink_means_no_panic_and_no_cost() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        uninstall();
        assert!(!enabled(Level::Error));
        info("t", "dropped on the floor", &[]);
    }

    #[test]
    fn token_bucket_drops_and_reports() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            burst: 3,
            per_sec: 1, // slow refill: the loop below outruns it
        });
        for i in 0..10u64 {
            info("t", "flood", &[("i", Value::U64(i))]);
        }
        // A burst of 3 passes; the rest drop (refill over a few µs is ~0).
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        assert!(
            lines.len() >= 3 && lines.len() < 10,
            "expected rate limiting, got {} lines",
            lines.len()
        );
        // Sequence numbers of admitted events stay contiguous.
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                parse_line(line).get("seq").and_then(Json::as_u64),
                Some(i as u64)
            );
        }
    }

    #[test]
    fn dropped_count_surfaces_after_refill() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            burst: 1,
            per_sec: 100, // refills a token every 10ms
        });
        info("t", "first", &[]); // consumes the whole burst
        for _ in 0..5 {
            info("t", "flood", &[]); // all dropped: µs apart, no refill
        }
        std::thread::sleep(std::time::Duration::from_millis(30)); // ≥ 1 token back
        info("t", "after", &[]);
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        let last = parse_line(lines.last().expect("admitted event after refill"));
        assert_eq!(last.get("msg").and_then(Json::as_str), Some("after"));
        assert_eq!(last.get("dropped").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn span_context_attaches_when_recording() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            ..EventLogConfig::default()
        });
        let session = mc3_telemetry::Session::begin();
        {
            let _outer = mc3_telemetry::span("solve");
            let _inner = mc3_telemetry::span("solve_core");
            info("solver", "inside", &[]);
        }
        drop(session);
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        let v = parse_line(&lines[0]);
        assert_eq!(
            v.get("span").and_then(Json::as_str),
            Some("solve/solve_core")
        );
    }

    #[test]
    fn request_id_scope_attaches_and_restores() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            ..EventLogConfig::default()
        });
        info("t", "before", &[]);
        {
            let _scope = request_id_scope("req-42");
            assert_eq!(current_request_id().as_deref(), Some("req-42"));
            info("t", "inside", &[]);
        }
        assert_eq!(current_request_id(), None);
        info("t", "after", &[]);
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(lines.len(), 3);
        assert_eq!(parse_line(&lines[0]).get("request_id"), None);
        assert_eq!(
            parse_line(&lines[1])
                .get("request_id")
                .and_then(Json::as_str),
            Some("req-42")
        );
        assert_eq!(parse_line(&lines[2]).get("request_id"), None);
    }

    #[test]
    fn access_event_carries_route_status_and_request_id() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            ..EventLogConfig::default()
        });
        {
            let _scope = request_id_scope("req-7");
            access("POST", "/solve", 200, 1_234, 567);
        }
        uninstall();
        let lines = lines.lock().unwrap_or_else(|p| p.into_inner());
        let v = parse_line(&lines[0]);
        assert_eq!(
            v.get("target").and_then(Json::as_str),
            Some("server.access")
        );
        assert_eq!(v.get("request_id").and_then(Json::as_str), Some("req-7"));
        let fields = v.get("fields").expect("fields object");
        assert_eq!(fields.get("route").and_then(Json::as_str), Some("/solve"));
        assert_eq!(fields.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(fields.get("latency_ns").and_then(Json::as_u64), Some(1_234));
    }

    #[test]
    fn dropped_total_accumulates_across_installs() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let before = dropped_total();
        let _lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            burst: 1,
            per_sec: 1,
        });
        info("t", "takes the only token", &[]);
        for _ in 0..4 {
            info("t", "dropped", &[]);
        }
        uninstall();
        let after_first = dropped_total();
        assert!(
            after_first >= before + 4,
            "expected >= {} drops, saw {after_first}",
            before + 4
        );
        // A reinstall resets seq but never the cumulative drop counter.
        let _lines = install_capture(EventLogConfig {
            min_level: Level::Debug,
            burst: 1,
            per_sec: 1,
        });
        info("t", "token", &[]);
        info("t", "dropped again", &[]);
        uninstall();
        assert!(dropped_total() > after_first);
    }

    #[test]
    fn level_parse_round_trips() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("fatal"), None);
    }
}
