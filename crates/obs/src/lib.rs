#![warn(missing_docs)]

//! `mc3-obs` — the consumer layer on top of `mc3-telemetry`.
//!
//! `mc3-telemetry` records; this crate makes the recordings *usable*
//! outside the process, with the same zero-external-dependency rule as
//! the rest of the workspace:
//!
//! * [`chrome`] — converts a [`TelemetryReport`] span tree into Chrome
//!   trace-event JSON that `chrome://tracing` and Perfetto open directly
//!   (`mc3 profile --chrome FILE`, `mc3 solve --chrome FILE`).
//! * [`prom`] — renders every registered counter and histogram (and the
//!   span wall-times) in the Prometheus text exposition format, for file
//!   export today (`mc3 profile --prom FILE`) and a serving-mode scrape
//!   endpoint later.
//! * [`events`] — a leveled, rate-limited JSONL event sink with monotonic
//!   sequence numbers and per-event span context. Library crates emit
//!   diagnostics through it instead of `eprintln!` (the `mc3-audit` rule
//!   `no-raw-eprintln-in-lib` enforces that).
//! * [`gate`] — the perf-regression sentinel behind `mc3 bench-gate`:
//!   compares a candidate [`TelemetryReport`] against a checked-in
//!   baseline (`BENCH_baseline.json`), span wall-times under a loose
//!   relative tolerance and solver-internals counters strictly.
//! * [`serve_metrics`] — the request-plane families `mc3 serve` scrapes
//!   expose next to the solver registry: per-route/status request
//!   counters, the in-flight gauge and log2 latency histograms.
//!
//! [`TelemetryReport`]: mc3_telemetry::TelemetryReport

pub mod chrome;
pub mod events;
pub mod gate;
pub mod prom;
pub mod serve_metrics;

pub use chrome::chrome_trace_json;
pub use events::{
    access, current_request_id, debug, dropped_total, error, event, info, request_id_scope, warn,
    EventLogConfig, Level, RequestIdScope, Value,
};
pub use gate::{compare, BaselineFile, GateConfig, GateOutcome, GateViolation, WorkloadSpec};
pub use prom::{build_info_text, prometheus_text};
pub use serve_metrics::{InflightGuard, RequestMetrics, Route};
