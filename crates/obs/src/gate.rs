//! The perf-regression sentinel behind `mc3 bench-gate`.
//!
//! A checked-in [`BaselineFile`] (`BENCH_baseline.json`) pins a
//! deterministic workload spec plus the [`TelemetryReport`] a known-good
//! build produced for it. The gate re-runs the same workload, then
//! compares:
//!
//! * **wall time per span path** — regression-only, under a loose relative
//!   tolerance ([`GateConfig::wall_tol`]) and an absolute floor
//!   ([`GateConfig::min_wall_ns`]) so scheduler jitter on tiny spans
//!   cannot flake the gate. Getting *faster* never fails.
//! * **solver-internals counters** — symmetric and strict by default
//!   ([`GateConfig::counter_tol`] = 0): greedy iterations, Dinic phases,
//!   push-relabel relabels, preprocessing firings and the rest of the
//!   registry are deterministic for a pinned workload, so *any* drift is a
//!   behavior change that must be acknowledged by re-baselining
//!   (`mc3 bench-gate --baseline FILE --update`).
//! * **allocation counts and bytes per span path** — *exact*, no
//!   tolerance and no size floor ([`GateConfig::check_mem`], on by
//!   default). Unlike wall time, the allocator trace of a pinned
//!   single-threaded workload is fully deterministic, so the memory axis
//!   is the one signal the gate can pin to the byte; a kernel quietly
//!   growing a buffer per iteration trips the gate even when wall time
//!   hides inside the jitter tolerance.
//!
//! Every violation names the offending span path or counter with both
//! values, which is what the CI log shows when the gate trips.

use mc3_core::json::Json;
use mc3_telemetry::{SpanData, TelemetryReport};
use std::collections::BTreeMap;
use std::fmt;

/// Schema version of [`BaselineFile`].
pub const BASELINE_VERSION: u64 = 1;

/// The deterministic workload a baseline was recorded on. The CLI re-runs
/// exactly this spec to produce the candidate report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Generator kind (`mc3 generate --kind` vocabulary).
    pub kind: String,
    /// Number of queries to generate.
    pub queries: u64,
    /// Generator seed.
    pub seed: u64,
    /// Solver algorithm name (`mc3 solve --algorithm` vocabulary).
    pub algorithm: String,
}

/// A checked-in baseline: workload spec + the report it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineFile {
    /// The pinned workload.
    pub spec: WorkloadSpec,
    /// The known-good report.
    pub report: TelemetryReport,
}

impl BaselineFile {
    /// Serializes to versioned JSON.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("version", Json::Int(BASELINE_VERSION as i128)),
            (
                "workload",
                Json::object([
                    ("kind", Json::Str(self.spec.kind.clone())),
                    ("queries", Json::Int(self.spec.queries as i128)),
                    ("seed", Json::Int(self.spec.seed as i128)),
                    ("algorithm", Json::Str(self.spec.algorithm.clone())),
                ]),
            ),
            ("report", self.report.to_json()),
        ])
    }

    /// Strict parse: unknown versions and malformed fields are errors, and
    /// the embedded report goes through the schema-drift-rejecting
    /// [`TelemetryReport::from_json`].
    pub fn from_json(v: &Json) -> Result<BaselineFile, String> {
        let spec = BaselineFile::spec_from_json(v)?;
        let report =
            TelemetryReport::from_json(v.get("report").ok_or("baseline missing 'report'")?)?;
        Ok(BaselineFile { spec, report })
    }

    /// Parses only the version and workload spec, ignoring the embedded
    /// report. `--update` flows use this: a baseline whose report predates
    /// newly registered counters fails the strict [`BaselineFile::from_json`]
    /// schema check, but its workload pin is still the right default for
    /// re-recording.
    pub fn spec_from_json(v: &Json) -> Result<WorkloadSpec, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("baseline missing u64 'version'")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "unsupported baseline version {version} (expected {BASELINE_VERSION})"
            ));
        }
        let w = v.get("workload").ok_or("baseline missing 'workload'")?;
        Ok(WorkloadSpec {
            kind: w
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("workload missing string 'kind'")?
                .to_owned(),
            queries: w
                .get("queries")
                .and_then(Json::as_u64)
                .ok_or("workload missing u64 'queries'")?,
            seed: w
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("workload missing u64 'seed'")?,
            algorithm: w
                .get("algorithm")
                .and_then(Json::as_str)
                .ok_or("workload missing string 'algorithm'")?
                .to_owned(),
        })
    }
}

/// Gate tolerances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative wall-time regression tolerance per span: candidate fails
    /// when `candidate > baseline × (1 + wall_tol)`. `1.0` = may take up
    /// to 2× the baseline.
    pub wall_tol: f64,
    /// Relative counter drift tolerance, symmetric: candidate fails when
    /// `|candidate − baseline| > baseline × counter_tol` (a zero baseline
    /// admits only zero at tolerance 0). `0.0` = exact match required.
    pub counter_tol: f64,
    /// Spans whose **baseline** wall time is below this are not wall-time
    /// checked (their counters still are, via the global registry).
    pub min_wall_ns: u64,
    /// Whether to gate on the memory axis: exact per-span-path allocation
    /// counts and bytes (no tolerance, no floor — allocator traces of a
    /// pinned workload are deterministic), plus the global `mem_*`
    /// counters. `mc3 bench-gate --no-mem` turns this off.
    pub check_mem: bool,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            wall_tol: 1.0,
            counter_tol: 0.0,
            min_wall_ns: 200_000,
            check_mem: true,
        }
    }
}

/// One named gate failure.
#[derive(Debug, Clone, PartialEq)]
pub enum GateViolation {
    /// A span path got slower than the tolerance allows.
    WallRegression {
        /// `/`-joined span path.
        path: String,
        /// Baseline wall time (ns).
        baseline_ns: u64,
        /// Candidate wall time (ns).
        candidate_ns: u64,
        /// The tolerance that was exceeded.
        tol: f64,
    },
    /// A registered counter drifted outside the tolerance.
    CounterDrift {
        /// Counter wire name.
        name: String,
        /// Baseline total.
        baseline: u64,
        /// Candidate total.
        candidate: u64,
        /// The tolerance that was exceeded.
        tol: f64,
    },
    /// A span present in the baseline vanished from the candidate.
    MissingSpan {
        /// `/`-joined span path.
        path: String,
    },
    /// A span path's allocation tally changed. Exact by design: for a
    /// pinned seed the allocator trace is deterministic, so any change is
    /// a real behavior change (fix it or re-record the baseline).
    MemDrift {
        /// `/`-joined span path.
        path: String,
        /// Which memory field drifted (`allocs` or `alloc_bytes`).
        field: &'static str,
        /// Baseline value.
        baseline: u64,
        /// Candidate value.
        candidate: u64,
    },
}

impl GateViolation {
    /// One aligned, human-readable diff line for this violation: what was
    /// measured against what baseline, with the signed delta and the
    /// bound that was exceeded. Rendered indented under the machine-ish
    /// `REGRESSION:` line so a CI log shows both the greppable name and
    /// the at-a-glance magnitude.
    pub fn diff_line(&self) -> String {
        fn signed(baseline: u64, candidate: u64) -> String {
            if candidate >= baseline {
                format!("+{}", candidate - baseline)
            } else {
                format!("-{}", baseline - candidate)
            }
        }
        match self {
            GateViolation::WallRegression {
                path,
                baseline_ns,
                candidate_ns,
                tol,
            } => {
                let pct = 100.0 * (*candidate_ns as f64 / (*baseline_ns).max(1) as f64 - 1.0);
                format!(
                    "  └─ {path}: wall {baseline_ns} ns -> {candidate_ns} ns \
                     (Δ {} ns, {pct:+.1}% vs +{:.1}% allowed)",
                    signed(*baseline_ns, *candidate_ns),
                    tol * 100.0
                )
            }
            GateViolation::CounterDrift {
                name,
                baseline,
                candidate,
                tol,
            } => format!(
                "  └─ {name}: counter {baseline} -> {candidate} \
                 (Δ {}, tolerance ±{:.1}%)",
                signed(*baseline, *candidate),
                tol * 100.0
            ),
            GateViolation::MissingSpan { path } => {
                format!("  └─ {path}: span recorded in baseline, absent from candidate")
            }
            GateViolation::MemDrift {
                path,
                field,
                baseline,
                candidate,
            } => format!(
                "  └─ {path}: {field} {baseline} -> {candidate} \
                 (Δ {}, exact gate — re-baseline to accept)",
                signed(*baseline, *candidate)
            ),
        }
    }
}

impl fmt::Display for GateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateViolation::WallRegression {
                path,
                baseline_ns,
                candidate_ns,
                tol,
            } => write!(
                f,
                "span '{path}': wall time regressed {baseline_ns}ns -> {candidate_ns}ns \
                 ({:.2}x, tolerance {:.2}x)",
                *candidate_ns as f64 / (*baseline_ns).max(1) as f64,
                1.0 + tol
            ),
            GateViolation::CounterDrift {
                name,
                baseline,
                candidate,
                tol,
            } => write!(
                f,
                "counter '{name}': drifted {baseline} -> {candidate} \
                 (relative tolerance {tol:.2})"
            ),
            GateViolation::MissingSpan { path } => {
                write!(
                    f,
                    "span '{path}': present in baseline, absent from candidate"
                )
            }
            GateViolation::MemDrift {
                path,
                field,
                baseline,
                candidate,
            } => write!(
                f,
                "span '{path}': {field} drifted {baseline} -> {candidate} \
                 (memory gating is exact; re-record the baseline to accept)"
            ),
        }
    }
}

/// The gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Every violation, spans first then counters, in path/name order.
    pub violations: Vec<GateViolation>,
    /// Span paths that were wall-time checked.
    pub spans_checked: usize,
    /// Counters that were compared.
    pub counters_checked: usize,
}

impl GateOutcome {
    /// Whether the candidate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable verdict: for every violation, the greppable
    /// `REGRESSION:` line plus an indented diff line showing baseline vs
    /// measured and the bound that was exceeded, then the summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "REGRESSION: {v}");
            let _ = writeln!(out, "{}", v.diff_line());
        }
        let _ = writeln!(
            out,
            "bench-gate: {} span paths and {} counters checked, {} regression(s)",
            self.spans_checked,
            self.counters_checked,
            self.violations.len()
        );
        out
    }
}

/// Per-path figures the gate compares.
#[derive(Debug, Clone, Copy, Default)]
struct PathStats {
    wall_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

fn flatten<'a>(prefix: &str, spans: &'a [SpanData], out: &mut BTreeMap<String, PathStats>) {
    for s in spans {
        let path = if prefix.is_empty() {
            s.name.clone()
        } else {
            format!("{prefix}/{}", s.name)
        };
        flatten(&path, &s.children, out);
        // Same-path collisions cannot survive report aggregation, but be
        // safe under hand-built reports: sum.
        let cell = out.entry(path).or_insert_with(PathStats::default);
        cell.wall_ns = cell.wall_ns.saturating_add(s.wall_ns);
        cell.allocs = cell.allocs.saturating_add(s.mem.allocs);
        cell.alloc_bytes = cell.alloc_bytes.saturating_add(s.mem.alloc_bytes);
    }
}

/// Compares `candidate` against `baseline` under `cfg`.
pub fn compare(
    baseline: &TelemetryReport,
    candidate: &TelemetryReport,
    cfg: &GateConfig,
) -> GateOutcome {
    let mut violations = Vec::new();

    let mut base_spans = BTreeMap::new();
    flatten("", &baseline.spans, &mut base_spans);
    let mut cand_spans = BTreeMap::new();
    flatten("", &candidate.spans, &mut cand_spans);

    let mut spans_checked = 0usize;
    for (path, base) in &base_spans {
        match cand_spans.get(path) {
            None => violations.push(GateViolation::MissingSpan { path: path.clone() }),
            Some(cand) => {
                // Memory first: exact, no jitter floor — the allocator
                // trace of a pinned workload is deterministic.
                if cfg.check_mem {
                    for (field, b, c) in [
                        ("allocs", base.allocs, cand.allocs),
                        ("alloc_bytes", base.alloc_bytes, cand.alloc_bytes),
                    ] {
                        if b != c {
                            violations.push(GateViolation::MemDrift {
                                path: path.clone(),
                                field,
                                baseline: b,
                                candidate: c,
                            });
                        }
                    }
                }
                if base.wall_ns < cfg.min_wall_ns {
                    continue;
                }
                spans_checked += 1;
                let limit = base.wall_ns as f64 * (1.0 + cfg.wall_tol);
                if cand.wall_ns as f64 > limit {
                    violations.push(GateViolation::WallRegression {
                        path: path.clone(),
                        baseline_ns: base.wall_ns,
                        candidate_ns: cand.wall_ns,
                        tol: cfg.wall_tol,
                    });
                }
            }
        }
    }

    let mut counters_checked = 0usize;
    for (name, &base) in &baseline.counters {
        // The global mem_* totals belong to the memory axis: skipped
        // entirely under --no-mem (they move with every allocation, so
        // keeping them strict would defeat the opt-out).
        if !cfg.check_mem && name.starts_with("mem_") {
            continue;
        }
        let cand = candidate.counters.get(name).copied().unwrap_or(0);
        counters_checked += 1;
        let drift = cand.abs_diff(base);
        if drift as f64 > base as f64 * cfg.counter_tol {
            violations.push(GateViolation::CounterDrift {
                name: name.clone(),
                baseline: base,
                candidate: cand,
                tol: cfg.counter_tol,
            });
        }
    }

    GateOutcome {
        violations,
        spans_checked,
        counters_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, wall_ns: u64, children: Vec<SpanData>) -> SpanData {
        SpanData {
            name: name.to_owned(),
            wall_ns,
            count: 1,
            counters: BTreeMap::new(),
            mem: mc3_telemetry::SpanMem {
                allocs: 10,
                alloc_bytes: 1024,
                frees: 10,
                free_bytes: 1024,
                peak_live_bytes: 512,
                min_instance_allocs: 10,
            },
            children,
        }
    }

    fn report(solve_ns: u64, greedy: u64) -> TelemetryReport {
        TelemetryReport {
            spans: vec![span(
                "solve",
                solve_ns,
                vec![span("solve_core", solve_ns / 2, vec![])],
            )],
            counters: BTreeMap::from([
                ("greedy_iterations".to_owned(), greedy),
                ("dinic_phases".to_owned(), 7u64),
            ]),
            ..TelemetryReport::default()
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(10_000_000, 40);
        let out = compare(&r, &r, &GateConfig::default());
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.counters_checked, 2);
        assert!(out.spans_checked >= 2);
    }

    #[test]
    fn faster_candidate_passes() {
        let base = report(10_000_000, 40);
        let cand = report(2_000_000, 40);
        assert!(compare(&base, &cand, &GateConfig::default()).passed());
    }

    #[test]
    fn wall_regression_is_named() {
        let base = report(10_000_000, 40);
        let cand = report(30_000_000, 40);
        let out = compare(&base, &cand, &GateConfig::default());
        assert!(!out.passed());
        let text = out.render();
        assert!(text.contains("span 'solve'"), "{text}");
        assert!(text.contains("regressed"), "{text}");
    }

    #[test]
    fn tiny_spans_are_jitter_exempt() {
        let base = report(100_000, 40); // below min_wall_ns
        let cand = report(90_000_000, 40);
        let out = compare(&base, &cand, &GateConfig::default());
        assert!(out.passed(), "{}", out.render());
        assert_eq!(out.spans_checked, 0);
    }

    #[test]
    fn counter_drift_is_strict_and_symmetric_by_default() {
        let base = report(10_000_000, 40);
        for cand_val in [39u64, 41, 80] {
            let cand = report(10_000_000, cand_val);
            let out = compare(&base, &cand, &GateConfig::default());
            assert!(!out.passed(), "counter {cand_val} must trip the gate");
            assert!(out.render().contains("counter 'greedy_iterations'"));
        }
    }

    #[test]
    fn counter_tolerance_admits_bounded_drift() {
        let base = report(10_000_000, 100);
        let cfg = GateConfig {
            counter_tol: 0.10,
            ..GateConfig::default()
        };
        assert!(compare(&base, &report(10_000_000, 110), &cfg).passed());
        assert!(!compare(&base, &report(10_000_000, 111), &cfg).passed());
        assert!(compare(&base, &report(10_000_000, 90), &cfg).passed());
        assert!(!compare(&base, &report(10_000_000, 89), &cfg).passed());
    }

    #[test]
    fn mem_drift_is_exact_even_on_tiny_spans() {
        // 100_000 ns is below min_wall_ns, so wall time is exempt — but
        // memory gating has no floor: one extra alloc must trip the gate.
        let base = report(100_000, 40);
        let mut cand = report(100_000, 40);
        cand.spans[0].children[0].mem.allocs += 1;
        let out = compare(&base, &cand, &GateConfig::default());
        assert!(!out.passed());
        let text = out.render();
        assert!(text.contains("span 'solve/solve_core'"), "{text}");
        assert!(text.contains("allocs drifted 10 -> 11"), "{text}");
        // Both directions trip: fewer allocations is also a change.
        let mut cand = report(100_000, 40);
        cand.spans[0].mem.alloc_bytes -= 1;
        assert!(!compare(&base, &cand, &GateConfig::default()).passed());
    }

    #[test]
    fn no_mem_config_admits_allocation_drift() {
        let mut base = report(10_000_000, 40);
        base.counters.insert("mem_allocs".to_owned(), 1_000);
        let mut cand = report(10_000_000, 40);
        cand.counters.insert("mem_allocs".to_owned(), 2_000);
        cand.spans[0].mem.allocs += 99;
        cand.spans[0].mem.alloc_bytes += 4096;
        let cfg = GateConfig {
            check_mem: false,
            ..GateConfig::default()
        };
        let out = compare(&base, &cand, &cfg);
        assert!(out.passed(), "{}", out.render());
        // With the default config the same drift fails on all three axes.
        let strict = compare(&base, &cand, &GateConfig::default());
        assert!(strict.violations.len() >= 3, "{}", strict.render());
    }

    #[test]
    fn missing_span_is_a_violation() {
        let base = report(10_000_000, 40);
        let mut cand = report(10_000_000, 40);
        cand.spans[0].children.clear();
        let out = compare(&base, &cand, &GateConfig::default());
        assert!(out.violations.iter().any(
            |v| matches!(v, GateViolation::MissingSpan { path } if path == "solve/solve_core")
        ));
    }

    #[test]
    fn render_snapshot_shows_diff_lines_per_violation() {
        let outcome = GateOutcome {
            violations: vec![
                GateViolation::WallRegression {
                    path: "solve".to_owned(),
                    baseline_ns: 10_000_000,
                    candidate_ns: 30_000_000,
                    tol: 1.0,
                },
                GateViolation::CounterDrift {
                    name: "greedy_iterations".to_owned(),
                    baseline: 40,
                    candidate: 36,
                    tol: 0.0,
                },
                GateViolation::MissingSpan {
                    path: "solve/solve_core".to_owned(),
                },
                GateViolation::MemDrift {
                    path: "solve/solve_core".to_owned(),
                    field: "allocs",
                    baseline: 10,
                    candidate: 11,
                },
            ],
            spans_checked: 2,
            counters_checked: 31,
        };
        let expected = "\
REGRESSION: span 'solve': wall time regressed 10000000ns -> 30000000ns (3.00x, tolerance 2.00x)
  └─ solve: wall 10000000 ns -> 30000000 ns (Δ +20000000 ns, +200.0% vs +100.0% allowed)
REGRESSION: counter 'greedy_iterations': drifted 40 -> 36 (relative tolerance 0.00)
  └─ greedy_iterations: counter 40 -> 36 (Δ -4, tolerance ±0.0%)
REGRESSION: span 'solve/solve_core': present in baseline, absent from candidate
  └─ solve/solve_core: span recorded in baseline, absent from candidate
REGRESSION: span 'solve/solve_core': allocs drifted 10 -> 11 (memory gating is exact; re-record the baseline to accept)
  └─ solve/solve_core: allocs 10 -> 11 (Δ +1, exact gate — re-baseline to accept)
bench-gate: 2 span paths and 31 counters checked, 4 regression(s)
";
        assert_eq!(outcome.render(), expected);
    }

    #[test]
    fn baseline_file_round_trips() {
        let b = BaselineFile {
            spec: WorkloadSpec {
                kind: "synthetic".to_owned(),
                queries: 300,
                seed: 42,
                algorithm: "auto".to_owned(),
            },
            report: {
                let mut r = report(5_000, 3);
                // from_json is strict: fill the whole registry
                r.counters = mc3_telemetry::COUNTER_NAMES
                    .iter()
                    .map(|n| (n.to_string(), 1u64))
                    .collect();
                r.histograms = mc3_telemetry::HIST_NAMES
                    .iter()
                    .map(|n| mc3_telemetry::HistogramData {
                        name: n.to_string(),
                        count: 0,
                        sum: 0,
                        buckets: Vec::new(),
                    })
                    .collect();
                r
            },
        };
        let text = b.to_json().to_string_pretty();
        let parsed = mc3_core::json::parse(&text).expect("baseline JSON parses");
        let back = BaselineFile::from_json(&parsed).expect("strict parse");
        assert_eq!(back, b);
    }

    #[test]
    fn baseline_rejects_bad_version() {
        let b = BaselineFile {
            spec: WorkloadSpec {
                kind: "synthetic".to_owned(),
                queries: 1,
                seed: 1,
                algorithm: "auto".to_owned(),
            },
            report: TelemetryReport::default(),
        };
        let mut v = b.to_json();
        if let Json::Object(map) = &mut v {
            map.insert("version".to_owned(), Json::Int(99));
        }
        assert!(BaselineFile::from_json(&v).is_err());
    }
}
