//! Property-based tests of the workload generators: every generated dataset
//! is a valid, solvable instance whose marginals stay within the published
//! bounds, and serialization round-trips.

use mc3_workload::{
    random_subset, read_dataset_json, write_dataset_json, BestBuyConfig, PrivateConfig,
    SyntheticConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthetic_instances_are_valid(n in 1..300usize, seed in any::<u64>()) {
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        prop_assert_eq!(ds.instance.num_queries(), n);
        prop_assert!(ds.instance.max_query_len() <= 10);
        for q in ds.instance.queries() {
            prop_assert!(q.len() >= 2);
            let w = ds.instance.weight(q);
            prop_assert!((1..=50).contains(&w.finite().unwrap()));
        }
    }

    #[test]
    fn bestbuy_instances_are_valid(n in 1..300usize, seed in 1..u64::MAX) {
        let mut cfg = BestBuyConfig::with_queries(n);
        cfg.seed = seed;
        let ds = cfg.generate();
        prop_assert_eq!(ds.instance.num_queries(), n);
        prop_assert!(ds.instance.max_query_len() <= 4);
        for q in ds.instance.queries().iter().take(10) {
            prop_assert_eq!(ds.instance.weight(q).finite(), Some(1));
        }
    }

    #[test]
    fn private_instances_are_valid(n in 10..300usize, seed in 1..u64::MAX) {
        let mut cfg = PrivateConfig::with_queries(n);
        cfg.seed = seed;
        let ds = cfg.generate();
        prop_assert!(ds.instance.num_queries() <= n);
        prop_assert!(ds.instance.num_queries() >= n - n / 10 - 2); // share rounding
        prop_assert!(ds.instance.max_query_len() <= 6);
        for q in ds.instance.queries().iter().take(10) {
            let w = ds.instance.weight(q).finite().unwrap();
            prop_assert!((1..=63).contains(&w));
        }
    }

    #[test]
    fn zipf_instances_are_valid(n in 1..200usize, s in 2..25u32) {
        let ds = SyntheticConfig::with_queries(n)
            .zipf(s as f64 / 10.0)
            .generate();
        prop_assert_eq!(ds.instance.num_queries(), n);
        prop_assert!(ds.instance.queries().iter().all(|q| q.len() >= 2));
    }

    #[test]
    fn roundtrip_any_generated_dataset(n in 1..120usize, seed in any::<u64>()) {
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        prop_assert_eq!(back.instance.queries(), ds.instance.queries());
        for q in ds.instance.queries().iter().take(10) {
            prop_assert_eq!(back.instance.weight(q), ds.instance.weight(q));
        }
    }

    #[test]
    fn subsets_compose(n in 10..200usize, a in 1..100usize, seed in any::<u64>()) {
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        let sub = random_subset(&ds.instance, a, seed ^ 1).unwrap();
        let subsub = random_subset(&sub, a / 2, seed ^ 2).unwrap();
        prop_assert!(subsub.num_queries() <= sub.num_queries());
        for q in subsub.queries() {
            prop_assert!(ds.instance.queries().contains(q));
        }
    }
}
