//! Property-based tests of the workload generators: every generated dataset
//! is a valid, solvable instance whose marginals stay within the published
//! bounds, and serialization round-trips.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_workload::{
    random_subset, read_dataset_json, write_dataset_json, BestBuyConfig, PrivateConfig,
    SyntheticConfig,
};

const CASES: u64 = 24;

#[test]
fn synthetic_instances_are_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1..300usize);
        let seed = rng.gen::<u64>();
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        assert_eq!(ds.instance.num_queries(), n, "case {case}");
        assert!(ds.instance.max_query_len() <= 10, "case {case}");
        for q in ds.instance.queries() {
            assert!(q.len() >= 2, "case {case}");
            let w = ds.instance.weight(q);
            assert!(
                (1..=50).contains(&w.finite().expect("finite weight")),
                "case {case}"
            );
        }
    }
}

#[test]
fn bestbuy_instances_are_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1..300usize);
        let mut cfg = BestBuyConfig::with_queries(n);
        cfg.seed = rng.gen_range(1..u64::MAX);
        let ds = cfg.generate();
        assert_eq!(ds.instance.num_queries(), n, "case {case}");
        assert!(ds.instance.max_query_len() <= 4, "case {case}");
        for q in ds.instance.queries().iter().take(10) {
            assert_eq!(ds.instance.weight(q).finite(), Some(1), "case {case}");
        }
    }
}

#[test]
fn private_instances_are_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(10..300usize);
        let mut cfg = PrivateConfig::with_queries(n);
        cfg.seed = rng.gen_range(1..u64::MAX);
        let ds = cfg.generate();
        assert!(ds.instance.num_queries() <= n, "case {case}");
        assert!(
            ds.instance.num_queries() >= n - n / 10 - 2,
            "share rounding, case {case}"
        );
        assert!(ds.instance.max_query_len() <= 6, "case {case}");
        for q in ds.instance.queries().iter().take(10) {
            let w = ds.instance.weight(q).finite().expect("finite weight");
            assert!((1..=63).contains(&w), "case {case}");
        }
    }
}

#[test]
fn zipf_instances_are_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1..200usize);
        let s = rng.gen_range(2..25u32);
        let ds = SyntheticConfig::with_queries(n)
            .zipf(s as f64 / 10.0)
            .generate();
        assert_eq!(ds.instance.num_queries(), n, "case {case}");
        assert!(
            ds.instance.queries().iter().all(|q| q.len() >= 2),
            "case {case}"
        );
    }
}

#[test]
fn roundtrip_any_generated_dataset() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1..120usize);
        let seed = rng.gen::<u64>();
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).expect("write");
        let back = read_dataset_json(buf.as_slice()).expect("read back");
        assert_eq!(
            back.instance.queries(),
            ds.instance.queries(),
            "case {case}"
        );
        for q in ds.instance.queries().iter().take(10) {
            assert_eq!(
                back.instance.weight(q),
                ds.instance.weight(q),
                "case {case}"
            );
        }
    }
}

#[test]
fn subsets_compose() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(10..200usize);
        let a = rng.gen_range(1..100usize);
        let seed = rng.gen::<u64>();
        let ds = SyntheticConfig::with_queries(n).seed(seed).generate();
        let sub = random_subset(&ds.instance, a, seed ^ 1).expect("subset");
        let subsub = random_subset(&sub, a / 2, seed ^ 2).expect("subset of subset");
        assert!(subsub.num_queries() <= sub.num_queries(), "case {case}");
        for q in subsub.queries() {
            assert!(ds.instance.queries().contains(q), "case {case}");
        }
    }
}
