//! Private-dataset-alike generator.
//!
//! The paper's private dataset holds 10 000 popular e-commerce queries of
//! lengths 1–6 with classifier costs 1–63 (normalized expert-labeling
//! estimates), and is "a union of several sub-datasets pertaining to
//! different categories of products (Electronics, Fashion, Home & Garden)";
//! the Fashion slice has ~1000 queries, 96 % of which have length ≤ 2
//! (§6.1). Each category draws from its own property pool (catalog
//! attributes rarely cross categories), which also gives the component
//! structure Step 2 exploits.

use crate::Dataset;
use mc3_core::rng::prelude::*;
use mc3_core::u32_of;
use mc3_core::{Instance, Weights};

/// A product category of the private-alike dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivateCategory {
    /// ~5000 queries, mixed lengths 1–6.
    Electronics,
    /// ~1000 queries, 96 % of length ≤ 2 (max 5).
    Fashion,
    /// ~4000 queries, mixed lengths 1–6.
    HomeAndGarden,
}

impl PrivateCategory {
    fn query_share(self, total: usize) -> usize {
        match self {
            PrivateCategory::Electronics => total / 2,
            PrivateCategory::Fashion => total / 10,
            PrivateCategory::HomeAndGarden => total - total / 2 - total / 10,
        }
    }

    /// Property ids are namespaced per category so pools never overlap.
    fn prop_base(self) -> u32 {
        match self {
            PrivateCategory::Electronics => 0,
            PrivateCategory::Fashion => 10_000_000,
            PrivateCategory::HomeAndGarden => 20_000_000,
        }
    }

    fn sample_len(self, rng: &mut StdRng) -> usize {
        match self {
            // Fashion: 96 % short, max 5
            PrivateCategory::Fashion => match rng.gen_range(0..100u32) {
                0..=40 => 1,
                41..=95 => 2,
                96..=97 => 3,
                98 => 4,
                _ => 5,
            },
            // Others: inverse length/frequency correlation over 1..6
            _ => match rng.gen_range(0..100u32) {
                0..=29 => 1,
                30..=64 => 2,
                65..=82 => 3,
                83..=92 => 4,
                93..=97 => 5,
                _ => 6,
            },
        }
    }
}

/// Configuration of the private-alike generator.
#[derive(Debug, Clone)]
pub struct PrivateConfig {
    /// Total queries across all categories (paper: 10 000).
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cost range (paper: `[1, 63]`).
    pub cost_range: (u64, u64),
    /// Per-category pool divisor: pool = category queries / divisor
    /// (smaller divisor → more distinct properties).
    pub pool_divisor: usize,
}

impl Default for PrivateConfig {
    fn default() -> Self {
        PrivateConfig {
            num_queries: 10_000,
            seed: 0x50, // 'P'
            cost_range: (1, 63),
            pool_divisor: 2,
        }
    }
}

impl PrivateConfig {
    /// Paper defaults with `n` total queries.
    pub fn with_queries(num_queries: usize) -> PrivateConfig {
        PrivateConfig {
            num_queries,
            ..Default::default()
        }
    }

    /// Generates the full three-category dataset.
    pub fn generate(&self) -> Dataset {
        let mut queries = Vec::with_capacity(self.num_queries);
        for cat in [
            PrivateCategory::Electronics,
            PrivateCategory::Fashion,
            PrivateCategory::HomeAndGarden,
        ] {
            queries.extend(self.generate_category_queries(cat, cat.query_share(self.num_queries)));
        }
        let weights = Weights::seeded(self.seed ^ 0xAB, self.cost_range.0, self.cost_range.1);
        // audit:allow(no-unwrap-in-lib) generator invariant: queries are non-empty and <= 16 props
        let instance = Instance::new(queries, weights).expect("valid queries");
        Dataset::new("P", instance)
    }

    /// Generates only the Fashion category (~`num_queries / 10` queries;
    /// the 1000-query subset of Fig. 3d where Short-First wins).
    pub fn generate_fashion(&self) -> Dataset {
        let n = PrivateCategory::Fashion.query_share(self.num_queries);
        let queries = self.generate_category_queries(PrivateCategory::Fashion, n);
        let weights = Weights::seeded(self.seed ^ 0xAB, self.cost_range.0, self.cost_range.1);
        // audit:allow(no-unwrap-in-lib) generator invariant: queries are non-empty and <= 16 props
        let instance = Instance::new(queries, weights).expect("valid queries");
        Dataset::new("P-fashion", instance)
    }

    fn generate_category_queries(&self, cat: PrivateCategory, n: usize) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ cat.prop_base() as u64);
        let pool = u32_of(n / self.pool_divisor).max(8);
        let base = cat.prop_base();
        let mut seen = mc3_core::FxHashSet::default();
        let mut queries = Vec::with_capacity(n);
        let max_attempts = n.saturating_mul(80) + 1000;
        let mut attempts = 0;
        while queries.len() < n && attempts < max_attempts {
            attempts += 1;
            let len = cat.sample_len(&mut rng);
            let mut props: Vec<u32> = Vec::with_capacity(len);
            while props.len() < len {
                let p = base + rng.gen_range(0..pool);
                if !props.contains(&p) {
                    props.push(p);
                }
            }
            props.sort_unstable();
            if seen.insert(props.clone()) {
                queries.push(props);
            }
        }
        queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_marginals() {
        let ds = PrivateConfig::default().generate();
        assert_eq!(ds.instance.num_queries(), 10_000);
        assert!(ds.instance.max_query_len() <= 6);
        // costs within [1, 63]
        for q in ds.instance.queries().iter().take(20) {
            let w = ds.instance.weight(q).finite().unwrap();
            assert!((1..=63).contains(&w));
        }
    }

    #[test]
    fn fashion_slice_is_mostly_short() {
        let ds = PrivateConfig::default().generate_fashion();
        assert_eq!(ds.instance.num_queries(), 1000);
        let hist = ds.instance.length_histogram();
        let short =
            (hist[1] + hist.get(2).copied().unwrap_or(0)) as f64 / ds.instance.num_queries() as f64;
        assert!(short >= 0.93, "short fraction {short}");
    }

    #[test]
    fn categories_are_property_disjoint() {
        let ds = PrivateConfig::default().generate();
        // every query lives in exactly one category namespace
        for q in ds.instance.queries() {
            let cat = q.ids()[0].0 / 10_000_000;
            assert!(q.iter().all(|p| p.0 / 10_000_000 == cat));
        }
    }

    #[test]
    fn deterministic() {
        let a = PrivateConfig::default().generate();
        let b = PrivateConfig::default().generate();
        assert_eq!(a.instance.queries(), b.instance.queries());
    }

    #[test]
    fn varying_costs_not_uniform() {
        let ds = PrivateConfig::default().generate();
        let costs: mc3_core::FxHashSet<u64> = ds
            .instance
            .queries()
            .iter()
            .take(100)
            .map(|q| ds.instance.weight(q).finite().unwrap())
            .collect();
        assert!(costs.len() > 10, "costs look uniform: {costs:?}");
    }
}
