//! Random query-subset sampling — the paper's varying-cardinality protocol.
//!
//! "For each inspected dataset, along with running the experiments on its
//! entire query load, we also randomly select subsets of this query set of
//! different cardinalities and run the algorithms over these corresponding
//! sub-instances" (§6.1).

use mc3_core::rng::prelude::*;
use mc3_core::{Instance, Result};

/// A sub-instance of `size` queries sampled uniformly without replacement
/// (clamped to the instance size).
pub fn random_subset(instance: &Instance, size: usize, seed: u64) -> Result<Instance> {
    let n = instance.num_queries();
    let size = size.min(n);
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    indices.truncate(size);
    indices.sort_unstable();
    instance.restrict_to(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc3_core::Weights;

    fn instance(n: usize) -> Instance {
        let queries: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![2 * i, 2 * i + 1]).collect();
        Instance::new(queries, Weights::uniform(1u64)).unwrap()
    }

    #[test]
    fn subset_has_requested_size() {
        let inst = instance(100);
        let sub = random_subset(&inst, 30, 1).unwrap();
        assert_eq!(sub.num_queries(), 30);
    }

    #[test]
    fn oversized_request_clamps() {
        let inst = instance(10);
        let sub = random_subset(&inst, 99, 1).unwrap();
        assert_eq!(sub.num_queries(), 10);
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let inst = instance(50);
        let a = random_subset(&inst, 20, 7).unwrap();
        let b = random_subset(&inst, 20, 7).unwrap();
        assert_eq!(a.queries(), b.queries());
        let c = random_subset(&inst, 20, 8).unwrap();
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn subset_queries_come_from_parent() {
        let inst = instance(40);
        let sub = random_subset(&inst, 15, 3).unwrap();
        for q in sub.queries() {
            assert!(inst.queries().contains(q));
        }
    }
}
