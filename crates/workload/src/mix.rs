//! Named dataset generation and the serving-mode request mix.
//!
//! Two consumers share the `kind/queries/seed` vocabulary: `mc3 generate`
//! / `mc3 bench-gate` (one pinned workload per invocation) and the
//! serving plane (`mc3 loadgen` drives `POST /solve` with a *mix* of
//! workloads). [`GeneratorKind`] and [`generate_dataset`] are the single
//! source of truth for turning a named spec into an [`Dataset`];
//! [`RequestMix`] layers a deterministic weighted rotation on top so a
//! load run is reproducible request-for-request — no RNG, request `i`
//! always maps to the same entry.

use crate::{BestBuyConfig, Dataset, PrivateConfig, SyntheticConfig};

/// Which dataset generator a named workload spec uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// The paper's §6.1 synthetic recipe.
    Synthetic,
    /// Synthetic restricted to length-2 queries.
    SyntheticShort,
    /// BestBuy-alike (uniform costs, 95 % short).
    BestBuy,
    /// Private-alike (three categories, costs 1–63).
    Private,
    /// Only the Fashion category of the private-alike dataset.
    PrivateFashion,
    /// Components drawn from a small pool of repeated shapes on disjoint
    /// property ranges — the serving pattern the cross-request solve
    /// cache targets (isomorphic components recur across bodies).
    DuplicateHeavy,
}

impl GeneratorKind {
    /// The wire spelling of this generator (inverse of
    /// [`GeneratorKind::parse`]); shared by the CLI, bench-gate baselines
    /// and `--mix` specs.
    pub fn name(self) -> &'static str {
        match self {
            GeneratorKind::Synthetic => "synthetic",
            GeneratorKind::SyntheticShort => "synthetic-short",
            GeneratorKind::BestBuy => "bestbuy",
            GeneratorKind::Private => "private",
            GeneratorKind::PrivateFashion => "private-fashion",
            GeneratorKind::DuplicateHeavy => "duplicate-heavy",
        }
    }

    /// Parses a wire spelling.
    pub fn parse(s: &str) -> Result<GeneratorKind, String> {
        match s {
            "synthetic" => Ok(GeneratorKind::Synthetic),
            "synthetic-short" => Ok(GeneratorKind::SyntheticShort),
            "bestbuy" => Ok(GeneratorKind::BestBuy),
            "private" => Ok(GeneratorKind::Private),
            "private-fashion" => Ok(GeneratorKind::PrivateFashion),
            "duplicate-heavy" => Ok(GeneratorKind::DuplicateHeavy),
            other => Err(format!(
                "unknown generator '{other}' (expected synthetic, synthetic-short, bestbuy, private, private-fashion, duplicate-heavy)"
            )),
        }
    }
}

/// Generates the dataset a named spec describes. Deterministic for a
/// pinned `(kind, queries, seed)` triple — the property the bench-gate
/// and the load generator both lean on.
pub fn generate_dataset(kind: GeneratorKind, queries: usize, seed: u64) -> Dataset {
    match kind {
        GeneratorKind::Synthetic => SyntheticConfig::with_queries(queries).seed(seed).generate(),
        GeneratorKind::SyntheticShort => SyntheticConfig::short(queries).seed(seed).generate(),
        GeneratorKind::BestBuy => {
            let mut cfg = BestBuyConfig::with_queries(queries);
            cfg.seed = seed.max(1);
            cfg.generate()
        }
        GeneratorKind::Private => {
            let mut cfg = PrivateConfig::with_queries(queries);
            cfg.seed = seed.max(1);
            cfg.generate()
        }
        GeneratorKind::PrivateFashion => {
            // the fashion share is queries/10 of the configured total
            let mut cfg = PrivateConfig::with_queries(queries * 10);
            cfg.seed = seed.max(1);
            cfg.generate_fashion()
        }
        GeneratorKind::DuplicateHeavy => generate_duplicate_heavy(queries, seed),
    }
}

/// Generates an `n`-item batch for one spec — the payload of one
/// `POST /solve-batch` request. Item `i` uses seed `seed + i/2`, so
/// consecutive pairs are exact duplicates: every batch of `n > 1` is
/// guaranteed intra-batch isomorphic work for the solve cache while
/// still rotating through `⌈n/2⌉` distinct instances. Deterministic,
/// like [`generate_dataset`].
pub fn generate_batch(kind: GeneratorKind, queries: usize, seed: u64, n: usize) -> Vec<Dataset> {
    (0..n.max(1))
        .map(|i| generate_dataset(kind, queries, seed.wrapping_add(i as u64 / 2)))
        .collect()
}

/// Fixed pool of connected component shapes (local property ids). Every
/// duplicate-heavy instance is a seed-shuffled concatenation of these on
/// disjoint property ranges, so any two instances — whatever their seeds
/// — share component fingerprints pairwise.
const DUPLICATE_SHAPES: &[&[&[u32]]] = &[
    &[&[0, 1], &[1, 2]],
    &[&[0, 1, 2], &[1, 2, 3]],
    &[&[0], &[0, 1], &[1, 2]],
    &[&[0, 1], &[0, 2], &[1, 2]],
    &[&[0, 1, 2], &[2, 3], &[3, 4]],
    &[&[0, 2], &[1, 2, 3], &[0, 3]],
    &[&[0, 1, 2, 3], &[2, 3, 4]],
    &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]],
];

/// The duplicate-heavy serving workload: `queries` queries assembled from
/// [`DUPLICATE_SHAPES`], uniform costs (cost is a property of the shape,
/// so isomorphism is exact). The seed only permutes which shapes recur
/// and how often — it never invents a new component structure.
fn generate_duplicate_heavy(queries: usize, seed: u64) -> Dataset {
    use mc3_core::rng::prelude::*;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xD0_9E));
    let mut qs: Vec<Vec<u32>> = Vec::with_capacity(queries);
    let mut base = 0u32;
    while qs.len() < queries {
        let shape = DUPLICATE_SHAPES[rng.gen_range(0..DUPLICATE_SHAPES.len())];
        let width = shape
            .iter()
            .flat_map(|q| q.iter().copied())
            .max()
            .unwrap_or(0)
            + 1;
        for q in shape {
            if qs.len() == queries {
                break;
            }
            qs.push(q.iter().map(|p| base + p).collect());
        }
        base += width;
    }
    let instance = mc3_core::Instance::new(qs, mc3_core::Weights::uniform(2u64))
        // audit:allow(no-unwrap-in-lib) generator invariant: shape-pool queries are non-empty with len <= 4
        .expect("generator produces valid queries");
    Dataset::new(format!("duplicate-heavy-{queries}-{seed}"), instance)
}

/// One weighted workload in a request mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixEntry {
    /// Generator kind.
    pub kind: GeneratorKind,
    /// Query count for the generated instance.
    pub queries: usize,
    /// Generator seed.
    pub seed: u64,
    /// Solver algorithm requested for this workload (wire name).
    pub algorithm: String,
    /// Relative weight in the rotation (≥ 1).
    pub weight: u32,
}

impl MixEntry {
    /// The `kind:queries:seed:algorithm[xW]` spelling of this entry.
    pub fn spec(&self) -> String {
        format!(
            "{}:{}:{}:{}x{}",
            self.kind.name(),
            self.queries,
            self.seed,
            self.algorithm,
            self.weight
        )
    }
}

/// A deterministic weighted rotation of workloads for the load generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestMix {
    entries: Vec<MixEntry>,
}

impl RequestMix {
    /// The default serving mix, anchored on the bench-gate pin: the first
    /// entry is **exactly** the checked-in `BENCH_baseline.json` workload
    /// (synthetic, 400 queries, seed 7, algorithm `general`), so a load
    /// run exercises the same solve CI gates on, plus two lighter
    /// variants for per-request diversity.
    pub fn pinned() -> RequestMix {
        RequestMix {
            entries: vec![
                MixEntry {
                    kind: GeneratorKind::Synthetic,
                    queries: 400,
                    seed: 7,
                    algorithm: "general".to_owned(),
                    weight: 1,
                },
                MixEntry {
                    kind: GeneratorKind::SyntheticShort,
                    queries: 200,
                    seed: 7,
                    algorithm: "auto".to_owned(),
                    weight: 2,
                },
                MixEntry {
                    kind: GeneratorKind::Synthetic,
                    queries: 100,
                    seed: 11,
                    algorithm: "auto".to_owned(),
                    weight: 1,
                },
            ],
        }
    }

    /// Parses a `--mix` spec: comma-separated
    /// `kind:queries:seed[:algorithm][xWEIGHT]` entries (algorithm
    /// defaults to `auto`, weight to 1).
    pub fn parse(spec: &str) -> Result<RequestMix, String> {
        let mut entries = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (body, weight) = match part.rsplit_once('x') {
                Some((b, w)) if w.chars().all(|c| c.is_ascii_digit()) && !w.is_empty() => {
                    let weight: u32 = w
                        .parse()
                        .map_err(|_| format!("mix entry '{part}': bad weight '{w}'"))?;
                    if weight == 0 {
                        return Err(format!("mix entry '{part}': weight must be >= 1"));
                    }
                    (b, weight)
                }
                _ => (part, 1),
            };
            let fields: Vec<&str> = body.split(':').collect();
            if fields.len() < 3 || fields.len() > 4 {
                return Err(format!(
                    "mix entry '{part}': expected kind:queries:seed[:algorithm][xWEIGHT]"
                ));
            }
            let kind = GeneratorKind::parse(fields[0])?;
            let queries: usize = fields[1]
                .parse()
                .map_err(|_| format!("mix entry '{part}': bad query count '{}'", fields[1]))?;
            let seed: u64 = fields[2]
                .parse()
                .map_err(|_| format!("mix entry '{part}': bad seed '{}'", fields[2]))?;
            let algorithm = fields.get(3).copied().unwrap_or("auto").to_owned();
            entries.push(MixEntry {
                kind,
                queries,
                seed,
                algorithm,
                weight,
            });
        }
        if entries.is_empty() {
            return Err("mix spec has no entries".to_owned());
        }
        Ok(RequestMix { entries })
    }

    /// The entries, in rotation order.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// Sum of entry weights (the rotation period).
    pub fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.weight)).sum()
    }

    /// The entry request number `i` maps to: a weighted round-robin over
    /// the rotation period. Pure arithmetic on `i`, so concurrent load
    /// workers can pick entries independently and the whole run is
    /// reproducible. `None` only for an empty mix (unreachable through
    /// [`parse`](RequestMix::parse) / [`pinned`](RequestMix::pinned)).
    pub fn entry_for(&self, i: u64) -> Option<&MixEntry> {
        let period = self.total_weight();
        if period == 0 {
            return None;
        }
        let mut slot = i % period;
        for entry in &self.entries {
            let w = u64::from(entry.weight);
            if slot < w {
                return Some(entry);
            }
            slot -= w;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_mix_leads_with_the_bench_gate_workload() {
        let mix = RequestMix::pinned();
        let first = &mix.entries()[0];
        // Must match BENCH_baseline.json's workload block exactly.
        assert_eq!(first.kind, GeneratorKind::Synthetic);
        assert_eq!(first.queries, 400);
        assert_eq!(first.seed, 7);
        assert_eq!(first.algorithm, "general");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            GeneratorKind::Synthetic,
            GeneratorKind::SyntheticShort,
            GeneratorKind::BestBuy,
            GeneratorKind::Private,
            GeneratorKind::PrivateFashion,
            GeneratorKind::DuplicateHeavy,
        ] {
            assert_eq!(GeneratorKind::parse(kind.name()), Ok(kind));
        }
        assert!(GeneratorKind::parse("nope").is_err());
    }

    #[test]
    fn duplicate_heavy_recycles_shapes_across_seeds() {
        let a = generate_dataset(GeneratorKind::DuplicateHeavy, 60, 1);
        let b = generate_dataset(GeneratorKind::DuplicateHeavy, 60, 2);
        assert_eq!(a.instance.num_queries(), 60);
        assert_eq!(b.instance.num_queries(), 60);
        // Deterministic per spec.
        let a2 = generate_dataset(GeneratorKind::DuplicateHeavy, 60, 1);
        assert_eq!(a.instance.queries(), a2.instance.queries());
        // Different seeds produce different query loads built from the
        // same shape pool: normalize each query to its local (rebased)
        // spelling and the vocabularies coincide.
        assert_ne!(a.instance.queries(), b.instance.queries());
        let local_shapes = |ds: &crate::Dataset| {
            ds.instance
                .queries()
                .iter()
                .map(|q| {
                    let ids = q.ids();
                    let lo = ids.first().copied().map_or(0, |p| p.0);
                    ids.iter().map(|p| p.0 - lo).collect::<Vec<u32>>()
                })
                .collect::<std::collections::BTreeSet<Vec<u32>>>()
        };
        let pool: std::collections::BTreeSet<Vec<u32>> = DUPLICATE_SHAPES
            .iter()
            .flat_map(|shape| {
                shape.iter().map(|q| {
                    let lo = q.iter().copied().min().unwrap_or(0);
                    q.iter().map(|p| p - lo).collect::<Vec<u32>>()
                })
            })
            .collect();
        assert!(local_shapes(&a).is_subset(&pool));
        assert!(local_shapes(&b).is_subset(&pool));
    }

    #[test]
    fn mix_spec_round_trips() {
        let mix = RequestMix::parse("synthetic:400:7:generalx2,synthetic-short:100:3").unwrap();
        assert_eq!(mix.entries().len(), 2);
        assert_eq!(mix.entries()[0].weight, 2);
        assert_eq!(mix.entries()[0].algorithm, "general");
        assert_eq!(mix.entries()[1].weight, 1);
        assert_eq!(mix.entries()[1].algorithm, "auto");
        let rejoined: Vec<String> = mix.entries().iter().map(MixEntry::spec).collect();
        let back = RequestMix::parse(&rejoined.join(",")).unwrap();
        assert_eq!(back, mix);
    }

    #[test]
    fn mix_parse_rejects_malformed_entries() {
        assert!(RequestMix::parse("").is_err());
        assert!(RequestMix::parse("synthetic:400").is_err());
        assert!(RequestMix::parse("synthetic:x:7").is_err());
        assert!(RequestMix::parse("synthetic:400:7x0").is_err());
        assert!(RequestMix::parse("wat:400:7").is_err());
    }

    #[test]
    fn entry_rotation_honors_weights_deterministically() {
        let mix = RequestMix::parse("synthetic:10:1x2,synthetic-short:20:2").unwrap();
        let picks: Vec<usize> = (0..6u64)
            .map(|i| {
                let e = mix.entry_for(i).expect("non-empty mix");
                usize::from(e.kind == GeneratorKind::SyntheticShort)
            })
            .collect();
        // Period 3: two heavy picks then one light, repeating.
        assert_eq!(picks, vec![0, 0, 1, 0, 0, 1]);
        // Same index, same entry — always.
        assert_eq!(mix.entry_for(4), mix.entry_for(1));
    }

    #[test]
    fn generated_datasets_are_deterministic_per_spec() {
        let a = generate_dataset(GeneratorKind::Synthetic, 50, 7);
        let b = generate_dataset(GeneratorKind::Synthetic, 50, 7);
        assert_eq!(a.instance.num_queries(), b.instance.num_queries());
        assert_eq!(a.instance.num_properties(), b.instance.num_properties());
        let c = generate_dataset(GeneratorKind::SyntheticShort, 50, 7);
        assert!(c.instance.max_query_len() <= 2);
    }
}
