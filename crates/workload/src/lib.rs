#![warn(missing_docs)]

//! Workload generators and dataset IO for MC³ experiments.
//!
//! The paper evaluates on three datasets (Table 1): **BestBuy** (public,
//! ~1000 electronics queries, uniform costs, 95 % of queries of length ≤ 2),
//! **Private** (10 000 e-commerce queries across Electronics / Fashion /
//! Home & Garden, costs 1–63, lengths 1–6; the Fashion slice has ~1000
//! queries, 96 % short) and **Synthetic** (100 000 queries; length `l` with
//! probability `1/2^(l−1)` capped at 10; costs uniform in `[1, 50]`;
//! properties drawn from a pool of `n/t` with `t ~ U[2, √n]`).
//!
//! The real BestBuy and Private data are not redistributable, so this crate
//! generates *dataset-alikes* matching their published marginals — query
//! counts, cost ranges/uniformity, length histograms and property-reuse
//! profiles — which are the only statistics the paper's relative comparisons
//! depend on (see DESIGN.md, "Substitutions"). The synthetic generator
//! follows the paper's §6.1 recipe exactly. Everything is seeded and
//! reproducible.

pub mod bestbuy;
pub mod io;
pub mod mix;
pub mod private_like;
pub mod subset;
pub mod synthetic;

pub use bestbuy::BestBuyConfig;
pub use io::{read_dataset_json, write_batch_json, write_dataset_json, DatasetFile, WeightSpec};
pub use mix::{generate_batch, generate_dataset, GeneratorKind, MixEntry, RequestMix};
pub use private_like::{PrivateCategory, PrivateConfig};
pub use subset::random_subset;
pub use synthetic::{PropertyPopularity, SyntheticConfig};

use mc3_core::Instance;

/// A named instance, as produced by the generators.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name (e.g. `"BB"`, `"P"`, `"S"`).
    pub name: String,
    /// The generated instance.
    pub instance: Instance,
}

impl Dataset {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, instance: Instance) -> Dataset {
        Dataset {
            name: name.into(),
            instance,
        }
    }
}
