//! JSON (de)serialization of datasets.
//!
//! The on-disk format stores queries as property-id lists and the weight
//! function symbolically (uniform / seeded) or as explicit entries, so a
//! 100 000-query synthetic dataset serializes in kilobytes rather than by
//! materializing ~2 million classifier weights.

use crate::Dataset;
use mc3_core::{FxHashMap, Instance, PropSet, Weight, Weights};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Serializable weight-function description.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WeightSpec {
    /// Every classifier costs `cost`.
    Uniform {
        /// The common cost.
        cost: u64,
    },
    /// Deterministic pseudo-random costs in `[lo, hi]`.
    Seeded {
        /// Hash seed.
        seed: u64,
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Explicit `(classifier, cost)` entries; `cost = null` means
    /// infeasible (infinite). Absent classifiers get `default`
    /// (`null` = infinite).
    Explicit {
        /// The entries.
        entries: Vec<(Vec<u32>, Option<u64>)>,
        /// Default for absent classifiers.
        default: Option<u64>,
    },
}

/// The serializable dataset file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetFile {
    /// Dataset name.
    pub name: String,
    /// Queries as sorted property-id lists.
    pub queries: Vec<Vec<u32>>,
    /// The weight function.
    pub weights: WeightSpec,
}

fn weight_to_opt(w: Weight) -> Option<u64> {
    w.finite()
}

fn opt_to_weight(o: Option<u64>) -> Weight {
    match o {
        Some(v) => Weight::new(v),
        None => Weight::INFINITE,
    }
}

impl DatasetFile {
    /// Captures a dataset into its serializable form.
    pub fn from_dataset(ds: &Dataset) -> DatasetFile {
        let queries = ds
            .instance
            .queries()
            .iter()
            .map(|q| q.iter().map(|p| p.0).collect())
            .collect();
        let weights = match ds.instance.weights() {
            Weights::Uniform(w) => WeightSpec::Uniform {
                cost: w.finite().expect("uniform weights are finite"),
            },
            Weights::Seeded { seed, lo, hi } => WeightSpec::Seeded {
                seed: *seed,
                lo: *lo,
                hi: *hi,
            },
            Weights::Custom(_) => panic!(
                "custom cost functions cannot be serialized; materialize them \
                 into an explicit map first"
            ),
            Weights::Map { map, default } => {
                let mut entries: Vec<(Vec<u32>, Option<u64>)> = map
                    .iter()
                    .map(|(c, &w)| (c.iter().map(|p| p.0).collect(), weight_to_opt(w)))
                    .collect();
                entries.sort();
                WeightSpec::Explicit {
                    entries,
                    default: weight_to_opt(*default),
                }
            }
        };
        DatasetFile {
            name: ds.name.clone(),
            queries,
            weights,
        }
    }

    /// Reconstructs the dataset.
    pub fn into_dataset(self) -> mc3_core::Result<Dataset> {
        let weights = match self.weights {
            WeightSpec::Uniform { cost } => Weights::uniform(cost),
            WeightSpec::Seeded { seed, lo, hi } => Weights::seeded(seed, lo, hi),
            WeightSpec::Explicit { entries, default } => {
                let mut map: FxHashMap<PropSet, Weight> = FxHashMap::default();
                for (ids, cost) in entries {
                    map.insert(PropSet::from_ids(ids), opt_to_weight(cost));
                }
                Weights::Map {
                    map,
                    default: opt_to_weight(default),
                }
            }
        };
        let instance = Instance::new(self.queries, weights)?;
        Ok(Dataset::new(self.name, instance))
    }
}

/// Writes a dataset as pretty JSON.
pub fn write_dataset_json(ds: &Dataset, mut w: impl Write) -> std::io::Result<()> {
    let file = DatasetFile::from_dataset(ds);
    let json = serde_json::to_string_pretty(&file).expect("dataset serializes");
    w.write_all(json.as_bytes())
}

/// Reads a dataset from JSON.
pub fn read_dataset_json(mut r: impl Read) -> std::io::Result<Dataset> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    let file: DatasetFile = serde_json::from_str(&buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    file.into_dataset()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestBuyConfig, SyntheticConfig};
    use mc3_core::WeightsBuilder;

    #[test]
    fn uniform_roundtrip() {
        let ds = BestBuyConfig::with_queries(50).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.instance.queries(), ds.instance.queries());
        let q = &ds.instance.queries()[0];
        assert_eq!(back.instance.weight(q), ds.instance.weight(q));
    }

    #[test]
    fn seeded_roundtrip_preserves_costs() {
        let ds = SyntheticConfig::with_queries(100).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        for q in ds.instance.queries().iter().take(20) {
            assert_eq!(back.instance.weight(q), ds.instance.weight(q));
        }
    }

    #[test]
    fn explicit_roundtrip_with_infinite() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 3u64)
            .infinite([1u32])
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ds = Dataset::new("tiny", instance);
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        let x = PropSet::from_ids([0u32]);
        let y = PropSet::from_ids([1u32]);
        assert_eq!(back.instance.weight(&x), Weight::new(3));
        assert!(back.instance.weight(&y).is_infinite());
        assert!(back
            .instance
            .weight(&PropSet::from_ids([0u32, 1]))
            .is_infinite());
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(read_dataset_json("not json".as_bytes()).is_err());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let json = r#"{"name":"bad","queries":[[]],"weights":{"kind":"uniform","cost":1}}"#;
        assert!(read_dataset_json(json.as_bytes()).is_err());
    }
}
