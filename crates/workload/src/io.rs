//! JSON (de)serialization of datasets.
//!
//! The on-disk format stores queries as property-id lists and the weight
//! function symbolically (uniform / seeded) or as explicit entries, so a
//! 100 000-query synthetic dataset serializes in kilobytes rather than by
//! materializing ~2 million classifier weights.

use crate::Dataset;
use mc3_core::json::{self, Json};
use mc3_core::{FxHashMap, Instance, PropSet, Weight, Weights};
use std::io::{Read, Write};

/// Serializable weight-function description.
///
/// On disk this is a tagged object: `{"kind": "uniform", "cost": 1}`,
/// `{"kind": "seeded", "seed": 7, "lo": 1, "hi": 50}`, or
/// `{"kind": "explicit", "entries": [[[0, 1], 3], ...], "default": null}`.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightSpec {
    /// Every classifier costs `cost`.
    Uniform {
        /// The common cost.
        cost: u64,
    },
    /// Deterministic pseudo-random costs in `[lo, hi]`.
    Seeded {
        /// Hash seed.
        seed: u64,
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Explicit `(classifier, cost)` entries; `cost = null` means
    /// infeasible (infinite). Absent classifiers get `default`
    /// (`null` = infinite).
    Explicit {
        /// The entries.
        entries: Vec<(Vec<u32>, Option<u64>)>,
        /// Default for absent classifiers.
        default: Option<u64>,
    },
}

/// The serializable dataset file.
#[derive(Debug, Clone)]
pub struct DatasetFile {
    /// Dataset name.
    pub name: String,
    /// Queries as sorted property-id lists.
    pub queries: Vec<Vec<u32>>,
    /// The weight function.
    pub weights: WeightSpec,
}

fn weight_to_opt(w: Weight) -> Option<u64> {
    w.finite()
}

impl WeightSpec {
    fn to_json(&self) -> Json {
        match self {
            WeightSpec::Uniform { cost } => Json::object([
                ("kind", Json::Str("uniform".into())),
                ("cost", Json::Int(*cost as i128)),
            ]),
            WeightSpec::Seeded { seed, lo, hi } => Json::object([
                ("kind", Json::Str("seeded".into())),
                ("seed", Json::Int(*seed as i128)),
                ("lo", Json::Int(*lo as i128)),
                ("hi", Json::Int(*hi as i128)),
            ]),
            WeightSpec::Explicit { entries, default } => Json::object([
                ("kind", Json::Str("explicit".into())),
                (
                    "entries",
                    Json::array(entries.iter().map(|(ids, cost)| {
                        Json::array([
                            Json::array(ids.iter().map(|&p| Json::Int(p as i128))),
                            Json::opt_u64(*cost),
                        ])
                    })),
                ),
                ("default", Json::opt_u64(*default)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<WeightSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("weights: missing string field 'kind'")?;
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("weights: missing u64 field '{name}'"))
        };
        let opt_u64_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None => Err(format!("weights: missing field '{name}'")),
                Some(Json::Null) => Ok(None),
                Some(x) => x
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("weights: field '{name}' must be u64 or null")),
            }
        };
        match kind {
            "uniform" => Ok(WeightSpec::Uniform {
                cost: u64_field("cost")?,
            }),
            "seeded" => Ok(WeightSpec::Seeded {
                seed: u64_field("seed")?,
                lo: u64_field("lo")?,
                hi: u64_field("hi")?,
            }),
            "explicit" => {
                let raw = v
                    .get("entries")
                    .and_then(Json::as_array)
                    .ok_or("weights: missing array field 'entries'")?;
                let mut entries = Vec::with_capacity(raw.len());
                for e in raw {
                    let pair = e
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or("weights: each entry must be a [classifier, cost] pair")?;
                    let ids = pair
                        .first()
                        .and_then(Json::as_array)
                        .ok_or("weights: entry classifier must be an id array")?
                        .iter()
                        .map(|p| p.as_u32().ok_or("weights: property ids must be u32"))
                        .collect::<Result<Vec<u32>, _>>()?;
                    let cost = match pair.get(1) {
                        Some(Json::Null) => None,
                        Some(x) => Some(
                            x.as_u64()
                                .ok_or("weights: entry cost must be u64 or null")?,
                        ),
                        None => None,
                    };
                    entries.push((ids, cost));
                }
                Ok(WeightSpec::Explicit {
                    entries,
                    default: opt_u64_field("default")?,
                })
            }
            other => Err(format!("weights: unknown kind '{other}'")),
        }
    }
}

fn opt_to_weight(o: Option<u64>) -> Weight {
    match o {
        Some(v) => Weight::new(v),
        None => Weight::INFINITE,
    }
}

impl DatasetFile {
    /// Captures a dataset into its serializable form.
    pub fn from_dataset(ds: &Dataset) -> DatasetFile {
        let queries = ds
            .instance
            .queries()
            .iter()
            .map(|q| q.iter().map(|p| p.0).collect())
            .collect();
        let weights = match ds.instance.weights() {
            Weights::Uniform(w) => WeightSpec::Uniform {
                // audit:allow(no-unwrap-in-lib) Weights::uniform rejects infinite costs at construction
                cost: w.finite().expect("uniform weights are finite"),
            },
            Weights::Seeded { seed, lo, hi } => WeightSpec::Seeded {
                seed: *seed,
                lo: *lo,
                hi: *hi,
            },
            // audit:allow(no-unwrap-in-lib) documented API contract: custom fns are not serializable
            Weights::Custom(_) => panic!(
                "custom cost functions cannot be serialized; materialize them \
                 into an explicit map first"
            ),
            Weights::Map { map, default } => {
                let mut entries: Vec<(Vec<u32>, Option<u64>)> = map
                    .iter()
                    .map(|(c, &w)| (c.iter().map(|p| p.0).collect(), weight_to_opt(w)))
                    .collect();
                entries.sort();
                WeightSpec::Explicit {
                    entries,
                    default: weight_to_opt(*default),
                }
            }
        };
        DatasetFile {
            name: ds.name.clone(),
            queries,
            weights,
        }
    }

    /// Renders the file as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::Str(self.name.clone())),
            (
                "queries",
                Json::array(
                    self.queries
                        .iter()
                        .map(|q| Json::array(q.iter().map(|&p| Json::Int(p as i128)))),
                ),
            ),
            ("weights", self.weights.to_json()),
        ])
    }

    /// Parses the file from a JSON document.
    pub fn from_json(v: &Json) -> Result<DatasetFile, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("dataset: missing string field 'name'")?
            .to_owned();
        let raw_queries = v
            .get("queries")
            .and_then(Json::as_array)
            .ok_or("dataset: missing array field 'queries'")?;
        let mut queries = Vec::with_capacity(raw_queries.len());
        for q in raw_queries {
            let ids = q
                .as_array()
                .ok_or("dataset: each query must be an id array")?
                .iter()
                .map(|p| p.as_u32().ok_or("dataset: property ids must be u32"))
                .collect::<Result<Vec<u32>, _>>()?;
            queries.push(ids);
        }
        let weights =
            WeightSpec::from_json(v.get("weights").ok_or("dataset: missing field 'weights'")?)?;
        Ok(DatasetFile {
            name,
            queries,
            weights,
        })
    }

    /// Reconstructs the dataset.
    pub fn into_dataset(self) -> mc3_core::Result<Dataset> {
        let weights = match self.weights {
            WeightSpec::Uniform { cost } => Weights::uniform(cost),
            WeightSpec::Seeded { seed, lo, hi } => Weights::seeded(seed, lo, hi),
            WeightSpec::Explicit { entries, default } => {
                let mut map: FxHashMap<PropSet, Weight> = FxHashMap::default();
                for (ids, cost) in entries {
                    map.insert(PropSet::from_ids(ids), opt_to_weight(cost));
                }
                Weights::Map {
                    map,
                    default: opt_to_weight(default),
                }
            }
        };
        let instance = Instance::new(self.queries, weights)?;
        Ok(Dataset::new(self.name, instance))
    }
}

/// Writes a dataset as pretty JSON.
pub fn write_dataset_json(ds: &Dataset, mut w: impl Write) -> std::io::Result<()> {
    let json = DatasetFile::from_dataset(ds).to_json().to_string_pretty();
    w.write_all(json.as_bytes())
}

/// Writes a batch of datasets as one pretty JSON array — the
/// `POST /solve-batch` wire format (each element is a full dataset
/// document, exactly what `write_dataset_json` produces for one).
pub fn write_batch_json(batch: &[Dataset], mut w: impl Write) -> std::io::Result<()> {
    let doc = Json::Array(
        batch
            .iter()
            .map(|ds| DatasetFile::from_dataset(ds).to_json())
            .collect(),
    );
    w.write_all(doc.to_string_pretty().as_bytes())
}

/// Reads a dataset from JSON.
pub fn read_dataset_json(mut r: impl Read) -> std::io::Result<Dataset> {
    let invalid = |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    let doc = json::parse(&buf).map_err(|e| invalid(e.to_string()))?;
    let file = DatasetFile::from_json(&doc).map_err(invalid)?;
    let ds = file.into_dataset().map_err(|e| invalid(e.to_string()))?;
    mc3_obs::debug(
        "workload",
        "dataset parsed",
        &[
            ("name", ds.name.as_str().into()),
            ("queries", ds.instance.num_queries().into()),
            ("properties", ds.instance.num_properties().into()),
        ],
    );
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BestBuyConfig, SyntheticConfig};
    use mc3_core::WeightsBuilder;

    #[test]
    fn uniform_roundtrip() {
        let ds = BestBuyConfig::with_queries(50).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        assert_eq!(back.name, ds.name);
        assert_eq!(back.instance.queries(), ds.instance.queries());
        let q = &ds.instance.queries()[0];
        assert_eq!(back.instance.weight(q), ds.instance.weight(q));
    }

    #[test]
    fn seeded_roundtrip_preserves_costs() {
        let ds = SyntheticConfig::with_queries(100).generate();
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        for q in ds.instance.queries().iter().take(20) {
            assert_eq!(back.instance.weight(q), ds.instance.weight(q));
        }
    }

    #[test]
    fn explicit_roundtrip_with_infinite() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 3u64)
            .infinite([1u32])
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let ds = Dataset::new("tiny", instance);
        let mut buf = Vec::new();
        write_dataset_json(&ds, &mut buf).unwrap();
        let back = read_dataset_json(buf.as_slice()).unwrap();
        let x = PropSet::from_ids([0u32]);
        let y = PropSet::from_ids([1u32]);
        assert_eq!(back.instance.weight(&x), Weight::new(3));
        assert!(back.instance.weight(&y).is_infinite());
        assert!(back
            .instance
            .weight(&PropSet::from_ids([0u32, 1]))
            .is_infinite());
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(read_dataset_json("not json".as_bytes()).is_err());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let json = r#"{"name":"bad","queries":[[]],"weights":{"kind":"uniform","cost":1}}"#;
        assert!(read_dataset_json(json.as_bytes()).is_err());
    }
}
