//! The paper's synthetic workload generator (§6.1).
//!
//! * `n` distinct queries (default 100 000);
//! * query length `l ≥ 2` with probability `1/2^(l−1)` — half the queries
//!   have length 2, a quarter length 3, and so on (the real-life inverse
//!   correlation between length and frequency), truncated at
//!   `max_len = 10` (longer queries "are rare in practice \[21\]");
//! * properties drawn uniformly from a pool of `n/t` properties, with `t`
//!   drawn uniformly from `[2, √n]` once per dataset;
//! * classifier costs uniform in `[1, 50]`, realized as deterministic
//!   seeded weights so that nothing needs materializing.

use crate::Dataset;
use mc3_core::rng::prelude::*;
use mc3_core::u32_of;
use mc3_core::{Instance, Weights};

/// How property popularity is distributed when sampling query properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PropertyPopularity {
    /// Every pool property is equally likely (the paper's recipe).
    Uniform,
    /// Zipf-distributed popularity with the given exponent (`s > 0`):
    /// property ranked `r` is drawn with probability ∝ `1/r^s`. Real query
    /// logs are heavy-tailed — a few properties ("brand=Apple") dominate
    /// while most appear rarely; this knob reproduces that skew.
    Zipf(f64),
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of distinct queries to produce.
    pub num_queries: usize,
    /// RNG seed (drives the query sample and the cost function).
    pub seed: u64,
    /// Maximum query length (paper: 10).
    pub max_len: usize,
    /// Minimum query length (paper: 2; set equal to `max_len` = 2 for the
    /// short-query experiments of Fig. 3c).
    pub min_len: usize,
    /// Cost range (paper: `[1, 50]`).
    pub cost_range: (u64, u64),
    /// Explicit property-pool size; `None` draws `t ~ U[2, √n]` and uses
    /// `n/t` per the paper.
    pub pool_size: Option<usize>,
    /// Property-popularity model (paper: uniform).
    pub popularity: PropertyPopularity,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_queries: 100_000,
            seed: 0xC0FFEE,
            max_len: 10,
            min_len: 2,
            cost_range: (1, 50),
            pool_size: None,
            popularity: PropertyPopularity::Uniform,
        }
    }
}

impl SyntheticConfig {
    /// Paper defaults with `n` queries.
    pub fn with_queries(num_queries: usize) -> SyntheticConfig {
        SyntheticConfig {
            num_queries,
            ..Default::default()
        }
    }

    /// The short-query variant: every query has length exactly 2
    /// (used by the `k = 2` scalability experiment, Fig. 3c).
    pub fn short(num_queries: usize) -> SyntheticConfig {
        SyntheticConfig {
            num_queries,
            min_len: 2,
            max_len: 2,
            ..Default::default()
        }
    }

    /// Reseeds (the paper regenerates the dataset per experiment).
    pub fn seed(mut self, seed: u64) -> SyntheticConfig {
        self.seed = seed;
        self
    }

    /// Switches to Zipf-distributed property popularity.
    pub fn zipf(mut self, exponent: f64) -> SyntheticConfig {
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        self.popularity = PropertyPopularity::Zipf(exponent);
        self
    }

    /// Samples a query length: `P(l) = 1/2^(l−1)`, truncated to
    /// `[min_len, max_len]` by resampling (paper: "queries generated with
    /// length exceeding 10 are omitted").
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        debug_assert!(self.min_len >= 1 && self.min_len <= self.max_len);
        if self.min_len == self.max_len {
            return self.min_len;
        }
        // geometric walk: start at min_len, extend with probability 1/2 —
        // P(l) = 1/2^(l−min_len+1); the cap at max_len realizes the paper's
        // "queries generated with length exceeding 10 are omitted"
        let mut l = self.min_len;
        while l < self.max_len && rng.gen_bool(0.5) {
            l += 1;
        }
        l
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_queries;
        let pool = self.pool_size.unwrap_or_else(|| {
            let sqrt_n = (n as f64).sqrt().max(2.0) as u64;
            let t = rng.gen_range(2..=sqrt_n.max(2));
            (n as u64 / t).max(self.max_len as u64) as usize
        });

        // Zipf sampling via inverse CDF over cumulative rank weights;
        // ranks are shuffled onto property ids so popularity is not
        // correlated with id order.
        let zipf_cdf: Option<(Vec<f64>, Vec<u32>)> = match self.popularity {
            PropertyPopularity::Uniform => None,
            PropertyPopularity::Zipf(s) => {
                let mut acc = 0.0;
                let cdf: Vec<f64> = (1..=pool)
                    .map(|r| {
                        acc += 1.0 / (r as f64).powf(s);
                        acc
                    })
                    .collect();
                let mut ids: Vec<u32> = (0..u32_of(pool)).collect();
                ids.shuffle(&mut rng);
                Some((cdf, ids))
            }
        };
        let sample_prop = |rng: &mut StdRng| -> u32 {
            match &zipf_cdf {
                None => rng.gen_range(0..u32_of(pool)),
                Some((cdf, ids)) => {
                    // audit:allow(no-unwrap-in-lib) zipf_cdf is Some only when pool > 0
                    let total = *cdf.last().expect("non-empty pool");
                    let x = rng.gen_range(0.0..total);
                    let rank = cdf.partition_point(|&c| c < x);
                    ids[rank.min(ids.len() - 1)]
                }
            }
        };

        let mut seen = mc3_core::FxHashSet::default();
        let mut queries: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut attempts = 0usize;
        let max_attempts = n.saturating_mul(50) + 1000;
        while queries.len() < n && attempts < max_attempts {
            attempts += 1;
            let len = self.sample_len(&mut rng);
            let mut props: Vec<u32> = Vec::with_capacity(len);
            let mut prop_attempts = 0;
            while props.len() < len && prop_attempts < 200 {
                prop_attempts += 1;
                let p = sample_prop(&mut rng);
                if !props.contains(&p) {
                    props.push(p);
                }
            }
            if props.len() < len {
                continue; // extremely skewed Zipf draw; resample the query
            }
            props.sort_unstable();
            if seen.insert(props.clone()) {
                queries.push(props);
            }
        }

        let weights = Weights::seeded(self.seed ^ 0x5EED, self.cost_range.0, self.cost_range.1);
        // audit:allow(no-unwrap-in-lib) generator invariant: queries are non-empty and <= 16 props
        let instance = Instance::new(queries, weights).expect("generator produces valid queries");
        Dataset::new("S", instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_count_and_bounds() {
        let ds = SyntheticConfig::with_queries(2000).generate();
        assert_eq!(ds.instance.num_queries(), 2000);
        assert!(ds.instance.max_query_len() <= 10);
        assert!(ds
            .instance
            .queries()
            .iter()
            .all(|q| (2..=10).contains(&q.len())));
    }

    #[test]
    fn length_distribution_is_geometric() {
        // a huge pool avoids dedup-induced skew so the raw sampling
        // distribution is observable
        let mut cfg = SyntheticConfig::with_queries(20_000);
        cfg.pool_size = Some(1_000_000);
        let ds = cfg.generate();
        let hist = ds.instance.length_histogram();
        let n = ds.instance.num_queries() as f64;
        // P(2) ≈ 1/2, P(3) ≈ 1/4 (tolerate sampling + dedup noise)
        assert!((hist[2] as f64 / n - 0.5).abs() < 0.05, "hist {hist:?}");
        assert!((hist[3] as f64 / n - 0.25).abs() < 0.04);
        assert!(hist[2] > hist[3] && hist[3] > hist[4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticConfig::with_queries(500).seed(7).generate();
        let b = SyntheticConfig::with_queries(500).seed(7).generate();
        assert_eq!(a.instance.queries(), b.instance.queries());
        let c = SyntheticConfig::with_queries(500).seed(8).generate();
        assert_ne!(a.instance.queries(), c.instance.queries());
    }

    #[test]
    fn costs_stay_in_range() {
        let ds = SyntheticConfig::with_queries(200).generate();
        for q in ds.instance.queries().iter().take(50) {
            let w = ds.instance.weight(q).finite().unwrap();
            assert!((1..=50).contains(&w));
        }
    }

    #[test]
    fn short_variant_is_all_pairs() {
        let ds = SyntheticConfig::short(1000).generate();
        assert!(ds.instance.is_short());
        assert!(ds.instance.queries().iter().all(|q| q.len() == 2));
        assert_eq!(ds.instance.num_queries(), 1000);
    }

    #[test]
    fn zipf_popularity_is_heavy_tailed() {
        let mut uni = SyntheticConfig::with_queries(4000);
        uni.pool_size = Some(2000);
        let zipf = {
            let mut c = SyntheticConfig::with_queries(4000).zipf(1.1);
            c.pool_size = Some(2000);
            c
        };
        let count_max_occurrence = |ds: &crate::Dataset| {
            let mut counts = mc3_core::FxHashMap::default();
            for q in ds.instance.queries() {
                for p in q.iter() {
                    *counts.entry(p.0).or_insert(0usize) += 1;
                }
            }
            *counts.values().max().unwrap()
        };
        let u = count_max_occurrence(&uni.generate());
        let z = count_max_occurrence(&zipf.generate());
        assert!(
            z > 3 * u,
            "Zipf max occurrence {z} should dwarf uniform {u}"
        );
    }

    #[test]
    fn zipf_generation_is_deterministic_and_valid() {
        let cfg = SyntheticConfig::with_queries(500).zipf(1.0).seed(3);
        let a = cfg.clone().generate();
        let b = cfg.generate();
        assert_eq!(a.instance.queries(), b.instance.queries());
        assert_eq!(a.instance.num_queries(), 500);
        assert!(a.instance.queries().iter().all(|q| q.len() >= 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zipf_rejects_nonpositive_exponent() {
        let _ = SyntheticConfig::with_queries(10).zipf(0.0);
    }

    #[test]
    fn explicit_pool_size_is_respected() {
        let mut cfg = SyntheticConfig::with_queries(300);
        cfg.pool_size = Some(40);
        let ds = cfg.generate();
        assert!(ds.instance.num_properties() <= 40);
    }
}
