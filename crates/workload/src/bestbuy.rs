//! BestBuy-alike dataset generator.
//!
//! The paper's BestBuy dataset (used by the predecessor work \[13\]) has
//! ~1000 electronics queries with **uniform** classifier costs, maximum
//! query length 4, and 95 % of queries of length ≤ 2 (Table 1, §6.1).
//! Figure 3a additionally implies that on this data the Query-Oriented
//! baseline beats Property-Oriented — i.e. distinct properties outnumber
//! distinct queries — so the property pool is sized for modest reuse.

use crate::Dataset;
use mc3_core::rng::prelude::*;
use mc3_core::u32_of;
use mc3_core::{Instance, Weights};

/// Configuration of the BestBuy-alike generator.
#[derive(Debug, Clone)]
pub struct BestBuyConfig {
    /// Number of distinct queries (paper: ~1000).
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// The uniform classifier cost (paper: 1).
    pub uniform_cost: u64,
    /// Property-pool size; defaults to `2 × num_queries` so that distinct
    /// properties outnumber queries (the Fig. 3a PO > QO ordering).
    pub pool_size: Option<usize>,
}

impl Default for BestBuyConfig {
    fn default() -> Self {
        BestBuyConfig {
            num_queries: 1000,
            seed: 0xBB,
            uniform_cost: 1,
            pool_size: None,
        }
    }
}

impl BestBuyConfig {
    /// Paper defaults with `n` queries.
    pub fn with_queries(num_queries: usize) -> BestBuyConfig {
        BestBuyConfig {
            num_queries,
            ..Default::default()
        }
    }

    /// Length distribution: 35 % singletons, 60 % pairs, 4 % triples, 1 %
    /// quadruples — 95 % of queries of length ≤ 2, max length 4.
    fn sample_len(rng: &mut StdRng) -> usize {
        match rng.gen_range(0..100u32) {
            0..=34 => 1,
            35..=94 => 2,
            95..=98 => 3,
            _ => 4,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = u32_of(self.pool_size.unwrap_or(self.num_queries * 2));
        let mut seen = mc3_core::FxHashSet::default();
        let mut queries: Vec<Vec<u32>> = Vec::with_capacity(self.num_queries);
        let max_attempts = self.num_queries.saturating_mul(50) + 1000;
        let mut attempts = 0;
        while queries.len() < self.num_queries && attempts < max_attempts {
            attempts += 1;
            let len = Self::sample_len(&mut rng);
            let mut props: Vec<u32> = Vec::with_capacity(len);
            while props.len() < len {
                let p = rng.gen_range(0..pool);
                if !props.contains(&p) {
                    props.push(p);
                }
            }
            props.sort_unstable();
            if seen.insert(props.clone()) {
                queries.push(props);
            }
        }
        let instance = Instance::new(queries, Weights::uniform(self.uniform_cost))
            // audit:allow(no-unwrap-in-lib) generator invariant: queries are non-empty and <= 16 props
            .expect("generator produces valid queries");
        Dataset::new("BB", instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_marginals() {
        let ds = BestBuyConfig::default().generate();
        assert_eq!(ds.instance.num_queries(), 1000);
        assert!(ds.instance.max_query_len() <= 4);
        let hist = ds.instance.length_histogram();
        let short = (hist[1] + hist[2]) as f64 / 1000.0;
        assert!(short >= 0.92, "short fraction {short}");
    }

    #[test]
    fn uniform_costs() {
        let ds = BestBuyConfig::default().generate();
        let q = &ds.instance.queries()[0];
        assert_eq!(ds.instance.weight(q).finite(), Some(1));
    }

    #[test]
    fn properties_outnumber_queries() {
        // the Fig. 3a precondition: PO costs more than QO
        let ds = BestBuyConfig::default().generate();
        assert!(
            ds.instance.num_properties() > ds.instance.num_queries(),
            "{} properties vs {} queries",
            ds.instance.num_properties(),
            ds.instance.num_queries()
        );
    }

    #[test]
    fn deterministic() {
        let a = BestBuyConfig::default().generate();
        let b = BestBuyConfig::default().generate();
        assert_eq!(a.instance.queries(), b.instance.queries());
    }
}
