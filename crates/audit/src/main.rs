//! The `mc3-audit` binary: `cargo run -p mc3-audit -- lint [ROOT]`.
//!
//! Exit codes: `0` clean, `1` lint failures, `2` usage or IO error.

use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("lint") => {}
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            return if args.is_empty() { 2 } else { 0 };
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            return 2;
        }
    }

    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut list_violations = false;
    while let Some(arg) = it.next() {
        match arg {
            "--allowlist" => match it.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist requires a path");
                    return 2;
                }
            },
            "--list" => list_violations = true,
            p if root.is_none() => root = Some(PathBuf::from(p)),
            other => {
                eprintln!("unexpected argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    // Default root: the workspace the binary was built from, so
    // `cargo run -p mc3-audit -- lint` works from any cwd inside it.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let allowlist = match allowlist_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match mc3_audit::allowlist::Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            },
            Err(e) => {
                eprintln!("cannot read {}: {e}", p.display());
                return 2;
            }
        },
        None => match mc3_audit::load_allowlist(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };

    match mc3_audit::lint(&root, &allowlist) {
        Ok(report) => {
            if list_violations {
                for v in &report.violations {
                    println!("{}[{}]: {}:{}", v.rule, v.message, v.file, v.line);
                }
            }
            print!("{}", report.render());
            if report.is_clean() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            2
        }
    }
}

const USAGE: &str = "\
mc3-audit — repo-specific static analysis for the MC3 workspace

USAGE:
  mc3-audit lint [ROOT] [--allowlist FILE] [--list]

Checks every crates/*/src/**/*.rs against the lint rules
(no-unwrap-in-lib, no-default-hasher, no-unchecked-index-in-hot-loops,
no-float-eq, no-bare-instant, no-raw-eprintln-in-lib). Sites reviewed
by a human carry `// audit:allow(rule)`
waivers; wholesale legacy debt is budgeted in lint.allow (see
docs/audit.md). Exit code 0 = clean, 1 = failures, 2 = usage/IO error.
";
