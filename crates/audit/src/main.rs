//! The `mc3-audit` binary: `lint` and `consistency` over the workspace.
//!
//! Exit codes: `0` clean, `1` failures, `2` usage or IO error.

use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let command = match it.next() {
        Some(cmd @ ("lint" | "consistency")) => cmd,
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            return if args.is_empty() { 2 } else { 0 };
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            return 2;
        }
    };

    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut list_violations = false;
    let mut tighten_budgets = false;
    while let Some(arg) = it.next() {
        match arg {
            "--allowlist" if command == "lint" => match it.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist requires a path");
                    return 2;
                }
            },
            "--list" if command == "lint" => list_violations = true,
            "--tighten-budgets" if command == "consistency" => tighten_budgets = true,
            p if root.is_none() && !p.starts_with('-') => root = Some(PathBuf::from(p)),
            other => {
                eprintln!("unexpected argument '{other}' for '{command}'\n{USAGE}");
                return 2;
            }
        }
    }
    // Default root: the workspace the binary was built from, so
    // `cargo run -p mc3-audit -- lint` works from any cwd inside it.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    if command == "consistency" {
        return match mc3_audit::consistency::check(&root, tighten_budgets) {
            Ok(report) => {
                print!("{}", report.render());
                i32::from(!report.is_clean())
            }
            Err(e) => {
                eprintln!("consistency check failed: {e}");
                2
            }
        };
    }

    let allowlist = match allowlist_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match mc3_audit::allowlist::Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            },
            Err(e) => {
                eprintln!("cannot read {}: {e}", p.display());
                return 2;
            }
        },
        None => match mc3_audit::load_allowlist(&root) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
    };

    match mc3_audit::lint(&root, &allowlist) {
        Ok(report) => {
            if list_violations {
                for v in &report.violations {
                    println!("{}[{}]: {}:{}", v.rule, v.message, v.file, v.line);
                }
            }
            print!("{}", report.render());
            i32::from(!report.is_clean())
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            2
        }
    }
}

const USAGE: &str = "\
mc3-audit — repo-specific static analysis for the MC3 workspace

USAGE:
  mc3-audit lint [ROOT] [--allowlist FILE] [--list]
  mc3-audit consistency [ROOT] [--tighten-budgets]

`lint` checks every crates/*/src/**/*.rs against the rule set
(no-unwrap-in-lib, no-default-hasher, no-unchecked-index-in-hot-loops,
no-float-eq, no-bare-instant, no-raw-eprintln-in-lib,
no-relaxed-atomics, no-alloc-in-hot-loops, no-silent-truncation,
no-swallowed-result). Sites reviewed by a human carry
`// audit:allow(rule)` waivers; wholesale legacy debt is budgeted in
lint.allow (see docs/audit.md).

`consistency` cross-checks source against artifacts: every telemetry
Counter/Hist variant is referenced, documented in docs/observability.md
and present in the prom exposition; every lint rule has a docs row and
a caught negative fixture; every lint.allow path exists and no ceiling
is looser than the measured count (`--tighten-budgets` rewrites loose
ceilings down and deletes fully burned-down lines).

Exit code 0 = clean, 1 = failures, 2 = usage/IO error.
";
