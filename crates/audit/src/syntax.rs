//! A lightweight syntactic model on top of the lexer.
//!
//! PR 1's rules walked a flat token stream with just enough ad-hoc context
//! (brace nesting, `#[cfg(test)]` regions, loop depth) bolted on. This
//! module recovers a real — if deliberately small — syntactic model from
//! the same tokens, still with zero dependencies:
//!
//! * an **item tree**: modules, functions, `impl`/`trait` blocks and
//!   `struct`/`enum` declarations, each with a name, the token span of its
//!   body and parent/child links (spans are properly nested by
//!   construction — the property tests re-derive this from raw braces);
//! * **per-token context**: enclosing `#[cfg(test)]` gate, loop depth
//!   (`for`/`while`/`loop` nests, a loop header counting as depth ≥ 1),
//!   and the innermost enclosing item;
//! * **closures**: `|args| body` / `move |args| body` sites with their
//!   captured-by-`move` flag and parameter names;
//! * **expression shapes** the rules care about: `expr as T` casts with a
//!   classification of the operand (integer literal, bool-shaped
//!   parenthesized comparison, other) and `let _ = …` discards with the
//!   infallible `write!`-to-`String` idiom recognized.
//!
//! The model is best-effort by design: it over-approximates inside
//! `macro_rules!` bodies and never fails on malformed input — lint rules
//! are a net, not a compiler front-end.

use crate::lexer::{lex, Token, TokenKind, Waiver};
use mc3_core::u32_of;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` (or `mod name;`).
    Module,
    /// `fn name(…) { … }` (or a body-less trait method).
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
    /// `struct Name …`.
    Struct,
    /// `enum Name { … }`.
    Enum,
}

/// One recovered item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Declared name (`impl` blocks render their header, e.g.
    /// `Display for Foo`). Possibly empty on malformed input.
    pub name: String,
    /// Token index of the introducing keyword.
    pub keyword_token: usize,
    /// Token indices of the body's `{` and `}`, when the item has a body
    /// (`mod m;`, `struct S;` and trait-method declarations do not).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Index of the enclosing item in [`SyntaxFile::items`], if any.
    pub parent: Option<usize>,
    /// Indices of directly enclosed items.
    pub children: Vec<usize>,
}

/// One recovered closure.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Token index of the opening `|` (or of `move`).
    pub start_token: usize,
    /// 1-based line of the opening `|`.
    pub line: u32,
    /// Whether the closure captures by `move`.
    pub is_move: bool,
    /// Parameter names (identifiers between the pipes; patterns are
    /// flattened to their identifiers).
    pub params: Vec<String>,
}

/// How a cast operand reads, without type information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastOperand {
    /// A literal (`0 as u32`): the value is visible, nothing to lose.
    Literal,
    /// A parenthesized group containing a top-level comparison or boolean
    /// operator (`(a == b) as u32`): bool → int is exact.
    BoolShaped,
    /// `true` / `false`.
    BoolLiteral,
    /// Anything else — a variable, call chain, or arithmetic expression.
    Other,
}

/// One `expr as Type` cast.
#[derive(Debug, Clone)]
pub struct Cast {
    /// Token index of the `as` keyword.
    pub as_token: usize,
    /// 1-based line of the `as` keyword.
    pub line: u32,
    /// The target type's leading identifier (`u32`, `usize`, `f64`, …).
    pub target: String,
    /// Operand classification.
    pub operand: CastOperand,
}

/// One `let _ = …` discard (exactly `_`, not a named `_x` binding).
#[derive(Debug, Clone)]
pub struct Discard {
    /// Token index of the `let`.
    pub let_token: usize,
    /// 1-based line.
    pub line: u32,
    /// Whether the discarded expression is a `write!`/`writeln!`
    /// invocation (the infallible `fmt::Write`-to-`String` idiom).
    pub is_write_macro: bool,
}

/// The parsed model of one source file.
#[derive(Debug, Default)]
pub struct SyntaxFile {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// All `audit:allow` waivers found.
    pub waivers: Vec<Waiver>,
    /// Flat item list; the tree lives in `parent`/`children` links.
    /// Parents always precede children (indices are creation-ordered).
    pub items: Vec<Item>,
    /// Recovered closures.
    pub closures: Vec<Closure>,
    /// Recovered `as` casts.
    pub casts: Vec<Cast>,
    /// Recovered `let _ =` discards.
    pub discards: Vec<Discard>,
    in_test: Vec<bool>,
    loop_depth: Vec<u32>,
    item_of: Vec<Option<u32>>,
}

impl SyntaxFile {
    /// Whether token `i` sits inside a `#[cfg(test)]`-gated item.
    pub fn in_test(&self, i: usize) -> bool {
        self.in_test[i]
    }

    /// Number of `for`/`while`/`loop` bodies enclosing token `i` (a
    /// pending loop header already counts: its tokens re-evaluate every
    /// iteration).
    pub fn loop_depth(&self, i: usize) -> u32 {
        self.loop_depth[i]
    }

    /// Index into [`SyntaxFile::items`] of the innermost item whose body
    /// encloses token `i`, if any.
    pub fn item_of(&self, i: usize) -> Option<usize> {
        self.item_of[i].map(|x| x as usize)
    }

    /// The innermost enclosing `fn` item of token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Item> {
        let mut cur = self.item_of(i);
        while let Some(idx) = cur {
            if self.items[idx].kind == ItemKind::Fn {
                return Some(&self.items[idx]);
            }
            cur = self.items[idx].parent;
        }
        None
    }

    /// Parses `source` into a model. Never fails.
    pub fn parse(source: &str) -> SyntaxFile {
        let lexed = lex(source);
        let mut sf = SyntaxFile {
            waivers: lexed.waivers,
            ..SyntaxFile::default()
        };
        let tokens = lexed.tokens;

        #[derive(Clone, Copy)]
        struct Brace {
            is_test_root: bool,
            is_loop: bool,
            item: Option<u32>,
        }
        let mut stack: Vec<Brace> = Vec::new();
        let mut test_level = 0u32;
        let mut loops = 0u32;
        let mut current_item: Option<u32> = None;
        // Set once a `#[cfg(test)]` attribute is seen; the next `{` opens
        // the gated item's body. A `;` first means the attribute gated a
        // braceless item — the flag is dropped.
        let mut pending_test = false;
        let mut pending_loop = false;
        // An item header whose body brace has not opened yet.
        let mut pending_item: Option<u32> = None;
        // Round-bracket depth, so `impl` in `-> impl Trait` positions and
        // `fn` pointer types inside signatures are not misread as items.
        let mut paren_depth = 0u32;
        // Inside `use … ;` — `as` there is a rename, not a cast.
        let mut in_use = false;

        let mut i = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            sf.in_test.push(test_level > 0);
            sf.loop_depth.push(loops + u32::from(pending_loop));
            sf.item_of.push(pending_item.or(current_item));

            // Attributes: scan `#[ … ]` for `cfg` + `test`; the attribute's
            // own tokens inherit the current context.
            if t.is_punct('#') && tokens.get(i + 1).map(|n| n.is_punct('[')) == Some(true) {
                let mut depth = 0i32;
                let mut saw_cfg = false;
                let mut saw_test = false;
                let mut j = i + 1;
                while j < tokens.len() {
                    let a = &tokens[j];
                    if a.is_punct('[') {
                        depth += 1;
                    } else if a.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.is_ident("cfg") {
                        saw_cfg = true;
                    } else if a.is_ident("test") {
                        saw_test = true;
                    }
                    j += 1;
                }
                if saw_cfg && saw_test {
                    pending_test = true;
                }
                for _ in i + 1..=j.min(tokens.len().saturating_sub(1)) {
                    sf.in_test.push(test_level > 0);
                    sf.loop_depth.push(loops + u32::from(pending_loop));
                    sf.item_of.push(pending_item.or(current_item));
                }
                i = j + 1;
                continue;
            }

            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "use" => in_use = true,
                    "loop" | "while" => pending_loop = true,
                    "for" if for_is_a_loop(&tokens, i) => pending_loop = true,
                    kw @ ("mod" | "fn" | "impl" | "trait" | "struct" | "enum")
                        if paren_depth == 0 && pending_item.is_none() && !in_use =>
                    {
                        if let Some(item) = recognize_item(kw, &tokens, i, current_item) {
                            let idx = u32_of(sf.items.len());
                            if let Some(p) = item.parent {
                                sf.items[p].children.push(idx as usize);
                            }
                            sf.items.push(item);
                            pending_item = Some(idx);
                            // The keyword token itself belongs to the item.
                            // audit:allow(no-unwrap-in-lib) item_of got a slot for this very token two lines up
                            *sf.item_of.last_mut().expect("just pushed") = Some(idx);
                        }
                    }
                    "as" if !in_use => {
                        if let Some(cast) = recognize_cast(&tokens, i) {
                            sf.casts.push(cast);
                        }
                    }
                    "let" => {
                        if let Some(d) = recognize_discard(&tokens, i) {
                            sf.discards.push(d);
                        }
                    }
                    "move" => {
                        if tokens.get(i + 1).map(|n| n.is_punct('|')) == Some(true) {
                            if let Some(c) = recognize_closure(&tokens, i + 1, true) {
                                sf.closures.push(c);
                            }
                        }
                    }
                    _ => {}
                }
            } else if t.is_punct('|') && closure_position(&tokens, i) {
                if let Some(c) = recognize_closure(&tokens, i, false) {
                    sf.closures.push(c);
                }
            } else if t.is_punct('(') {
                paren_depth += 1;
            } else if t.is_punct(')') {
                paren_depth = paren_depth.saturating_sub(1);
            } else if t.is_punct(';') {
                // A braceless gated/declared item ends pending scopes.
                pending_test = false;
                if in_use {
                    in_use = false;
                }
                if paren_depth == 0 {
                    pending_item = None;
                }
            } else if t.is_punct('{') {
                let b = Brace {
                    is_test_root: pending_test,
                    is_loop: pending_loop,
                    item: pending_item,
                };
                pending_test = false;
                pending_loop = false;
                if let Some(idx) = pending_item.take() {
                    sf.items[idx as usize].body = Some((i, usize::MAX));
                    current_item = Some(idx);
                }
                if b.is_test_root {
                    test_level += 1;
                }
                if b.is_loop {
                    loops += 1;
                }
                stack.push(b);
            } else if t.is_punct('}') {
                if let Some(b) = stack.pop() {
                    if b.is_test_root {
                        test_level = test_level.saturating_sub(1);
                    }
                    if b.is_loop {
                        loops = loops.saturating_sub(1);
                    }
                    if let Some(idx) = b.item {
                        let item = &mut sf.items[idx as usize];
                        if let Some((open, _)) = item.body {
                            item.body = Some((open, i));
                        }
                        current_item = item.parent.map(|p| u32_of(p));
                        // `item_of` for the closing brace is the item itself.
                        // audit:allow(no-unwrap-in-lib) item_of got a slot for this very token at loop entry
                        *sf.item_of.last_mut().expect("pushed above") = Some(idx);
                    }
                }
            }
            i += 1;
        }
        // Unterminated bodies (EOF inside an item) close at the last token.
        let last = tokens.len().saturating_sub(1);
        for item in &mut sf.items {
            if let Some((open, close)) = item.body {
                if close == usize::MAX {
                    item.body = Some((open, last));
                }
            }
        }
        sf.tokens = tokens;
        sf
    }
}

/// Whether the `for` at `i` heads a `for … in … {` loop (as opposed to
/// `impl Trait for Type` or `for<'a>` binders): an `in` keyword appears
/// before the next `{` or `;`.
fn for_is_a_loop(tokens: &[Token], i: usize) -> bool {
    for t in tokens.iter().skip(i + 1).take(64) {
        if t.is_ident("in") {
            return true;
        }
        if t.is_punct('{') || t.is_punct(';') {
            return false;
        }
    }
    false
}

/// Builds an [`Item`] for the keyword at `i`, or `None` when the keyword
/// does not introduce an item (`fn`-pointer types, stray macro tokens).
fn recognize_item(kw: &str, tokens: &[Token], i: usize, parent: Option<u32>) -> Option<Item> {
    let kind = match kw {
        "mod" => ItemKind::Module,
        "fn" => ItemKind::Fn,
        "impl" => ItemKind::Impl,
        "trait" => ItemKind::Trait,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        _ => return None,
    };
    let name = if kind == ItemKind::Impl {
        // Render the header up to the body / where clause, e.g.
        // `Display for Foo` or `BitCover`.
        let mut parts = Vec::new();
        for t in tokens.iter().skip(i + 1).take(24) {
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            parts.push(t.text.clone());
        }
        parts.join(" ")
    } else {
        // The declared identifier; `fn (` is an fn-pointer type, not an
        // item. Generics on the keyword (`impl<T>`) cannot occur here.
        match tokens.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => return None,
        }
    };
    Some(Item {
        kind,
        name,
        keyword_token: i,
        body: None,
        line: tokens[i].line,
        parent: parent.map(|p| p as usize),
        children: Vec::new(),
    })
}

/// Integer-literal check for cast operands.
fn is_int_literal(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Int | TokenKind::Float)
}

/// Builds a [`Cast`] for the `as` at `i`, when it reads like a cast.
fn recognize_cast(tokens: &[Token], i: usize) -> Option<Cast> {
    // The target type's first token must be an identifier (`u32`,
    // `usize`, `f64`, a path head…). `as dyn`, `as &`, `as *const` keep
    // their leading token as the target text, which no rule matches.
    let target = tokens.get(i + 1)?;
    if target.kind != TokenKind::Ident {
        return None;
    }
    // A cast follows a value. `use x as y` is filtered by the caller;
    // anything not preceded by a value-ending token is not a cast.
    let prev = if i == 0 { return None } else { &tokens[i - 1] };
    let value_end = prev.kind == TokenKind::Ident
        || is_int_literal(prev)
        || prev.kind == TokenKind::StrLit
        || prev.is_punct(')')
        || prev.is_punct(']');
    if !value_end {
        return None;
    }
    let operand = if is_int_literal(prev) {
        CastOperand::Literal
    } else if prev.is_ident("true") || prev.is_ident("false") {
        CastOperand::BoolLiteral
    } else if prev.is_punct(')') {
        classify_paren_group(tokens, i - 1)
    } else {
        CastOperand::Other
    };
    Some(Cast {
        as_token: i,
        line: tokens[i].line,
        target: target.text.clone(),
        operand,
    })
}

/// Classifies the parenthesized group ending at `close` (index of `)`):
/// [`CastOperand::BoolShaped`] when a comparison or boolean operator sits
/// at the group's top nesting level, [`CastOperand::Other`] otherwise.
fn classify_paren_group(tokens: &[Token], close: usize) -> CastOperand {
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    let mut open = None;
    for j in (0..=close).rev() {
        if tokens[j].is_punct(')') || tokens[j].is_punct(']') || tokens[j].is_punct('}') {
            depth += 1;
        } else if tokens[j].is_punct('(') || tokens[j].is_punct('[') || tokens[j].is_punct('{') {
            depth -= 1;
            if depth == 0 {
                open = Some(j);
                break;
            }
        }
    }
    let Some(open) = open else {
        return CastOperand::Other;
    };
    if !tokens[open].is_punct('(') {
        return CastOperand::Other;
    }
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.kind == TokenKind::Punct {
            let next = tokens.get(j + 1);
            let next_eq = next.map(|n| n.is_punct('=')) == Some(true);
            let bool_op = match t.text.as_str() {
                // `==`, `!=`, `<=`, `>=` — and bare `<` / `>` which in a
                // parenthesized *expression* read as comparisons.
                "=" | "!" if next_eq => true,
                "<" | ">" => true,
                "&" if next.map(|n| n.is_punct('&')) == Some(true) => true,
                "|" if next.map(|n| n.is_punct('|')) == Some(true) => true,
                _ => false,
            };
            if bool_op {
                return CastOperand::BoolShaped;
            }
        }
        j += 1;
    }
    CastOperand::Other
}

/// Builds a [`Discard`] for the `let` at `i` when it is a `let _ = …`.
fn recognize_discard(tokens: &[Token], i: usize) -> Option<Discard> {
    if tokens.get(i + 1).map(|t| t.is_ident("_")) != Some(true)
        || tokens.get(i + 2).map(|t| t.is_punct('=')) != Some(true)
        // `let _ == …` cannot parse; `let _ =` only (not `let _ : T =`).
        || tokens.get(i + 3).map(|t| t.is_punct('=')) == Some(true)
    {
        return None;
    }
    let rhs = tokens.get(i + 3);
    let is_write_macro = matches!(rhs, Some(t) if t.is_ident("write") || t.is_ident("writeln"))
        && tokens.get(i + 4).map(|t| t.is_punct('!')) == Some(true);
    Some(Discard {
        let_token: i,
        line: tokens[i].line,
        is_write_macro,
    })
}

/// Whether the `|` at `i` starts a closure rather than a bitwise-or: it
/// must follow a token that cannot end an expression.
fn closure_position(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|j| &tokens[j]) else {
        return true; // file starts with a closure — fine
    };
    if prev.kind == TokenKind::Punct {
        // After `)`, `]`, `}` a `|` is bitwise-or; after `(`, `,`, `=`,
        // `{`, `;`, `:`, `&` (borrowed closure) and friends it opens a
        // closure.
        !(prev.is_punct(')') || prev.is_punct(']') || prev.is_punct('}'))
    } else {
        // After an identifier or literal, `|` is bitwise-or — except
        // after expression-introducing keywords.
        matches!(
            prev.text.as_str(),
            "return" | "else" | "in" | "match" | "if" | "while" | "break"
        )
    }
}

/// Builds a [`Closure`] for the opening `|` at `pipe`.
fn recognize_closure(tokens: &[Token], pipe: usize, is_move: bool) -> Option<Closure> {
    if !tokens.get(pipe)?.is_punct('|') {
        return None;
    }
    let mut params = Vec::new();
    // `||` — empty parameter list.
    if tokens.get(pipe + 1).map(|t| t.is_punct('|')) == Some(true) {
        return Some(Closure {
            start_token: if is_move { pipe - 1 } else { pipe },
            line: tokens[pipe].line,
            is_move,
            params,
        });
    }
    let mut depth = 0i32;
    let mut j = pipe + 1;
    // Parameters end at the matching un-nested `|`; bail out after a
    // window — a real parameter list is short, an operator `|` is not
    // followed by one.
    let limit = (pipe + 96).min(tokens.len());
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
            if depth < 0 {
                return None; // ran out of the expression: was bitwise-or
            }
        } else if t.is_punct('|') && depth == 0 {
            return Some(Closure {
                start_token: if is_move { pipe - 1 } else { pipe },
                line: tokens[pipe].line,
                is_move,
                params,
            });
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && tokens.get(j.wrapping_sub(1)).map(|p| p.is_punct(':')) != Some(true)
            && !matches!(t.text.as_str(), "mut" | "ref")
        {
            // An identifier not in type position (not preceded by `:`).
            if tokens
                .get(j + 1)
                .map(|n| n.is_punct(':') || n.is_punct(',') || n.is_punct('|'))
                != Some(false)
            {
                params.push(t.text.clone());
            }
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SyntaxFile {
        SyntaxFile::parse(src)
    }

    #[test]
    fn items_form_a_tree() {
        let sf = parse(
            "mod outer {\n  struct S;\n  impl Display for S { fn fmt(&self) {} }\n  fn free() {}\n}\n",
        );
        let kinds: Vec<ItemKind> = sf.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Module,
                ItemKind::Struct,
                ItemKind::Impl,
                ItemKind::Fn,
                ItemKind::Fn
            ]
        );
        let outer = &sf.items[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children, vec![1, 2, 4]);
        let imp = &sf.items[2];
        assert_eq!(imp.name, "Display for S");
        assert_eq!(imp.children, vec![3]);
        assert_eq!(sf.items[3].parent, Some(2));
        // Body spans nest: fmt's body inside impl's body.
        let (io, ic) = imp.body.expect("impl has a body");
        let (fo, fc) = sf.items[3].body.expect("fn has a body");
        assert!(io < fo && fc < ic);
    }

    #[test]
    fn unit_structs_and_decls_have_no_body() {
        let sf = parse("struct S;\ntrait T { fn f(&self); fn g(&self) {} }\nmod m;\n");
        assert_eq!(sf.items[0].body, None, "unit struct");
        let f = sf.items.iter().find(|i| i.name == "f").expect("decl f");
        assert_eq!(f.body, None, "trait method declaration");
        let g = sf.items.iter().find(|i| i.name == "g").expect("fn g");
        assert!(g.body.is_some(), "defaulted trait method");
        let m = sf.items.iter().find(|i| i.name == "m").expect("mod m");
        assert_eq!(m.body, None, "outline module");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let sf = parse("type F = fn(u32) -> u32;\nfn real(cb: fn() -> bool) {}\n");
        let fns: Vec<&Item> = sf.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 1, "{:?}", sf.items);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_item() {
        let sf = parse("fn make() -> impl Iterator<Item = u32> { (0..3) }\n");
        assert_eq!(sf.items.len(), 1);
        assert_eq!(sf.items[0].kind, ItemKind::Fn);
        assert!(sf.items[0].body.is_some());
    }

    #[test]
    fn enclosing_fn_resolves_through_impls() {
        let src = "impl S { fn method(&self) { let x = 1; } }";
        let sf = parse(src);
        let x = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("x"))
            .expect("token x");
        assert_eq!(sf.enclosing_fn(x).expect("inside method").name, "method");
    }

    #[test]
    fn loop_depth_counts_nests_and_headers() {
        let src = "fn f() { for i in 0..3 { while go() { s.push(i); } } }";
        let sf = parse(src);
        let push = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("push"))
            .expect("push token");
        assert_eq!(sf.loop_depth(push), 2);
        let go = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("go"))
            .expect("go token");
        assert_eq!(sf.loop_depth(go), 2, "loop header counts as in-loop");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let sf = parse("impl Foo for Bar { fn f(&self) {} }");
        assert!((0..sf.tokens.len()).all(|i| sf.loop_depth(i) == 0));
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let sf = parse(src);
        let unwrap = sf
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap");
        assert!(sf.in_test(unwrap));
        assert!(!sf.in_test(0));
    }

    #[test]
    fn casts_are_classified() {
        let src = "fn f(n: u64, b: &[u64]) -> u32 { let a = 0 as u32; \
                   let c = (n == 1) as u32; let d = n as u32; let e = true as u32; d }";
        let sf = parse(src);
        let ops: Vec<(String, CastOperand)> = sf
            .casts
            .iter()
            .map(|c| (c.target.clone(), c.operand))
            .collect();
        assert_eq!(
            ops,
            vec![
                ("u32".to_owned(), CastOperand::Literal),
                ("u32".to_owned(), CastOperand::BoolShaped),
                ("u32".to_owned(), CastOperand::Other),
                ("u32".to_owned(), CastOperand::BoolLiteral),
            ]
        );
    }

    #[test]
    fn use_renames_are_not_casts() {
        let sf = parse("use std::io::Result as IoResult;\nfn f(n: u64) -> u32 { n as u32 }");
        assert_eq!(sf.casts.len(), 1);
        assert_eq!(sf.casts[0].target, "u32");
    }

    #[test]
    fn bitmask_group_is_not_bool_shaped() {
        let sf = parse("fn f(w: u64) -> u32 { (w & 0xff) as u32 }");
        assert_eq!(sf.casts[0].operand, CastOperand::Other);
        let sf = parse("fn f(w: u64) -> u32 { (w & 1 == 0) as u32 }");
        assert_eq!(sf.casts[0].operand, CastOperand::BoolShaped);
    }

    #[test]
    fn discards_and_the_write_idiom() {
        let src = "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); \
                   let _ = fallible(); let _x = fallible(); }";
        let sf = parse(src);
        assert_eq!(sf.discards.len(), 2, "{:?}", sf.discards);
        assert!(sf.discards[0].is_write_macro);
        assert!(!sf.discards[1].is_write_macro);
    }

    #[test]
    fn closures_are_recovered_with_move_and_params() {
        let src = "fn f(v: &[u32]) { let a: u32 = v.iter().map(|x| x + 1).sum(); \
                   let t = move |acc, n| acc + n; }";
        let sf = parse(src);
        assert_eq!(sf.closures.len(), 2, "{:?}", sf.closures);
        assert!(!sf.closures[0].is_move);
        assert_eq!(sf.closures[0].params, vec!["x"]);
        assert!(sf.closures[1].is_move);
        assert_eq!(sf.closures[1].params, vec!["acc", "n"]);
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let sf = parse("fn f(a: u64, b: u64) -> u64 { a | b }");
        assert!(sf.closures.is_empty(), "{:?}", sf.closures);
    }

    #[test]
    fn item_spans_nest_on_malformed_input() {
        // Unterminated body: close at EOF, never panic.
        let sf = parse("fn broken() { let x = 1;");
        assert_eq!(sf.items.len(), 1);
        let (open, close) = sf.items[0].body.expect("body opened");
        assert!(open < close);
        assert_eq!(close, sf.tokens.len() - 1);
    }
}
