//! A small hand-rolled Rust lexer.
//!
//! The workspace builds offline, so the lint driver cannot use `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly. It
//! understands exactly as much of the language as the lint rules need:
//!
//! * identifiers and keywords (one token kind; rules match on text);
//! * integer and float literals (distinguished, so `no-float-eq` can fire);
//! * string / raw-string / byte-string / char literals (skipped as opaque
//!   tokens so their contents can never fake a violation);
//! * line and block comments (dropped, except `// audit:allow(...)` waivers
//!   which are reported to the driver with their line number);
//! * lifetimes (so `'a` is not misread as an unterminated char literal);
//! * all remaining punctuation as single-character tokens.
//!
//! Every token carries its 1-based line number for reporting.

use mc3_core::u32_of;

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal.
    Int,
    /// Float literal.
    Float,
    /// String, raw-string, byte-string or char literal.
    StrLit,
    /// Lifetime (`'a`).
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Punct`] a single character; literals
    /// keep their full text).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A lint waiver comment: `// audit:allow(rule-a, rule-b) optional reason`.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule names listed in the waiver.
    pub rules: Vec<String>,
    /// 1-based line the comment sits on (waives that line and the next).
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All `audit:allow` waiver comments found.
    pub waivers: Vec<Waiver>,
}

/// Tokenizes `source`. Never fails: unrecognized bytes become punctuation,
/// and an unterminated literal simply ends at EOF — lint rules are a
/// best-effort net, not a compiler front-end.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            line += u32_of(b[$range].iter().filter(|&&c| c == b'\n').count())
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                parse_waiver(&source[start..i], line, &mut out.waivers);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i);
            }
            b'\'' => {
                // Lifetime or char literal. `'ident` with no closing quote
                // within a couple of chars is a lifetime.
                let start = i;
                let start_line = line;
                if is_lifetime(b, i) {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_owned(),
                        line: start_line,
                    });
                } else {
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                        // Skip escape payload up to the closing quote.
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        // One scalar (may be multi-byte UTF-8).
                        i += 1;
                        while i < b.len() && (b[i] & 0xC0) == 0x80 {
                            i += 1;
                        }
                    }
                    if i < b.len() && b[i] == b'\'' {
                        i += 1;
                    }
                    bump_lines!(start..i);
                    out.tokens.push(Token {
                        kind: TokenKind::StrLit,
                        text: source[start..i].to_owned(),
                        line: start_line,
                    });
                }
            }
            b'"' => {
                let start = i;
                let start_line = line;
                i = skip_string(b, i);
                bump_lines!(start..i);
                out.tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text: source[start..i].to_owned(),
                    line: start_line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start = i;
                let start_line = line;
                i = skip_raw_or_byte_string(b, i);
                bump_lines!(start..i);
                out.tokens.push(Token {
                    kind: TokenKind::StrLit,
                    text: source[start..i].to_owned(),
                    line: start_line,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut kind = TokenKind::Int;
                if c == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b')) {
                    i += 2;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                } else {
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                        i += 1;
                    }
                    // A dot makes it a float unless it starts `..` or a
                    // method/field access (`1.max(2)`, tuple fields).
                    if i < b.len()
                        && b[i] == b'.'
                        && b.get(i + 1) != Some(&b'.')
                        && !matches!(b.get(i + 1), Some(n) if n.is_ascii_alphabetic() || *n == b'_')
                    {
                        kind = TokenKind::Float;
                        i += 1;
                        while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                            i += 1;
                        }
                    }
                    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                        let mut j = i + 1;
                        if matches!(b.get(j), Some(b'+' | b'-')) {
                            j += 1;
                        }
                        if matches!(b.get(j), Some(d) if d.is_ascii_digit()) {
                            kind = TokenKind::Float;
                            i = j;
                            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_digit()) {
                                i += 1;
                            }
                        }
                    }
                    // Type suffix (`1u32`, `1.5f64`).
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        if b[i] == b'f'
                            && matches!(&source[i..], s if s.starts_with("f32") || s.starts_with("f64"))
                        {
                            kind = TokenKind::Float;
                        }
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                // One punctuation character (multi-byte UTF-8 kept whole).
                let start = i;
                i += 1;
                while i < b.len() && (b[i] & 0xC0) == 0x80 {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
        }
    }
    out
}

/// Whether the `'` at `i` begins a lifetime rather than a char literal.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {
            // `'a'` is a char literal; `'a` (no closing quote) a lifetime.
            // Scan the identifier; a lifetime is followed by a non-quote.
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            b.get(j) != Some(&b'\'')
        }
        _ => false,
    }
}

/// Skips a `"..."` literal starting at `i`; returns the index past it.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Whether `r"`, `r#"`, `br"`, `b"`, `br#"` starts at `i`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_b = if rest.starts_with(b"b") { 1 } else { 0 };
    let rest = &rest[after_b..];
    if rest.starts_with(b"\"") {
        return after_b == 1;
    }
    if let Some(stripped) = rest.strip_prefix(b"r") {
        let hashes = stripped.iter().take_while(|&&c| c == b'#').count();
        return stripped.get(hashes) == Some(&b'"');
    }
    false
}

/// Skips a raw/byte string starting at `i`; returns the index past it.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        return skip_string(b, i);
    }
    // r#*"
    i += 1; // past 'r'
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        while i < b.len() {
            if b[i] == b'"' {
                let mut j = i + 1;
                let mut h = 0usize;
                while j < b.len() && b[j] == b'#' && h < hashes {
                    h += 1;
                    j += 1;
                }
                if h == hashes {
                    return j;
                }
            }
            i += 1;
        }
    }
    i
}

/// Records an `audit:allow` waiver if `comment` is one.
fn parse_waiver(comment: &str, line: u32, waivers: &mut Vec<Waiver>) {
    let Some(pos) = comment.find("audit:allow(") else {
        return;
    };
    let rest = &comment[pos + "audit:allow(".len()..];
    let Some(end) = rest.find(')') else { return };
    let rules: Vec<String> = rest[..end]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if !rules.is_empty() {
        waivers.push(Waiver { rules, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            texts("let x = a.unwrap();"),
            vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = lex("for i in 0..10 {}").tokens;
        assert!(toks.iter().all(|t| t.kind != TokenKind::Float));
    }

    #[test]
    fn float_forms() {
        for src in ["1.5", "1.", "2e3", "2.5e-1", "1f64", "3.0f32"] {
            let toks = lex(src).tokens;
            assert_eq!(toks[0].kind, TokenKind::Float, "{src} → {toks:?}");
        }
        for src in ["1", "0x1f", "1u32", "1_000", "1.max(2)"] {
            let toks = lex(src).tokens;
            assert_eq!(toks[0].kind, TokenKind::Int, "{src} → {toks:?}");
        }
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = "let s = \"x.unwrap() == 1.0\"; let c = '['; let r = r##\"raw \"str\" ]\"##;";
        let toks = lex(src).tokens;
        let strs = toks.iter().filter(|t| t.kind == TokenKind::StrLit).count();
        assert_eq!(strs, 3, "{toks:?}");
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_punct('[')));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn comments_are_dropped_but_waivers_survive() {
        let lexed = lex("// audit:allow(no-float-eq) reviewed\nlet x = 1; /* audit:allow(not-parsed because block */\n// audit:allow(a, b)\n");
        assert_eq!(lexed.waivers.len(), 2);
        assert_eq!(lexed.waivers[0].rules, vec!["no-float-eq"]);
        assert_eq!(lexed.waivers[0].line, 1);
        assert_eq!(lexed.waivers[1].rules, vec!["a", "b"]);
        assert_eq!(lexed.waivers[1].line, 3);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let lexed = lex("let a = \"two\nlines\";\nlet b = 1;");
        let b_tok = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("let")));
        assert_eq!(lexed.tokens.len(), 5);
    }
}
