//! The cross-artifact consistency pass: `mc3-audit consistency`.
//!
//! The lint rules check *sites*; this pass checks *inventories* — the
//! declared-vs-enforced drift that no single file can reveal. It is the
//! source-level analogue of the runtime certificates: a budget or a
//! counter registry is a claim, and claims get re-derived, not trusted.
//!
//! Checks, in report order:
//!
//! 1. **Telemetry registry ↔ source.** Every `Counter`/`Hist` variant
//!    (taken from the real `mc3-telemetry` registry, not a re-parse) is
//!    referenced somewhere outside its declaration file — a variant
//!    nobody increments is dead weight that silently reads `0` forever.
//! 2. **Telemetry registry ↔ docs.** Every wire name has a row in
//!    `docs/observability.md` (glob rows like `verify_*_checks` count).
//! 3. **Telemetry registry ↔ prom exposition.** Rendering a zeroed
//!    report through the real `mc3_obs::prometheus_text` must expose
//!    every counter as `mc3_<name>_total` and every histogram family —
//!    zeros included, so a scrape can tell "never fired" from "missing".
//! 4. **Lint rules ↔ docs ↔ fixtures.** Every rule in `ALL_RULES` has a
//!    row in `docs/audit.md` and a negative fixture that the rule
//!    actually catches (run in-process through `check_file`).
//! 5. **Budgets ↔ reality.** Every `lint.allow` path exists, and no
//!    ceiling is looser than the measured violation count — debt may
//!    only shrink, so a stale ceiling is an error. `--tighten-budgets`
//!    rewrites ceilings down to measured reality (deleting lines whose
//!    count reached zero) instead of failing.
//! 6. **No-alloc waivers ↔ runtime.** Every file carrying a
//!    `no-alloc-in-hot-loops` waiver claims its hot-loop allocations are
//!    amortized away; this check closes the loop by solving a pinned
//!    deterministic workload under a telemetry session and requiring
//!    each waiver file's designated steady-state span to record at
//!    least one allocation-free instance (`min_instance_allocs == 0` in
//!    the memprof attribution). Skipped when the tree under audit has
//!    no such waivers.

use crate::rules::{check_file, RULE_INFOS};
use crate::{collect_files, load_allowlist};
use mc3_telemetry::{Counter, Hist, TelemetryReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One consistency failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Which check found it (e.g. `counter-incremented`, `budget-loose`).
    pub check: &'static str,
    /// What it is about (a counter name, rule name, or budget line).
    pub subject: String,
    /// Human-readable description with the expected fix.
    pub detail: String,
}

/// Outcome of a consistency run.
#[derive(Debug, Default)]
pub struct ConsistencyReport {
    /// Individual checks evaluated (for the summary line).
    pub checks_run: usize,
    /// Everything that failed.
    pub problems: Vec<Problem>,
    /// Budget rewrites applied by `--tighten-budgets`, human-readable.
    pub tightened: Vec<String>,
}

impl ConsistencyReport {
    /// Whether the run passes.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }

    /// Human-readable report text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.problems {
            let _ = writeln!(out, "error[{}]: {}: {}", p.check, p.subject, p.detail);
        }
        for t in &self.tightened {
            let _ = writeln!(out, "tightened: {t}");
        }
        let _ = writeln!(
            out,
            "{} consistency checks, {} problems",
            self.checks_run,
            self.problems.len()
        );
        out
    }
}

/// All backtick-quoted code spans in a markdown document.
fn code_spans(doc: &str) -> Vec<&str> {
    let mut spans = Vec::new();
    let mut rest = doc;
    while let Some(start) = rest.find('`') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('`') else { break };
        spans.push(&rest[..end]);
        rest = &rest[end + 1..];
    }
    spans
}

/// Whether `name` matches `pattern`, where `*` in the pattern matches any
/// (possibly empty) substring — `verify_*_checks` covers every verify
/// counter with one docs row.
fn glob_match(pattern: &str, name: &str) -> bool {
    if !pattern.contains('*') {
        return pattern == name;
    }
    let parts: Vec<&str> = pattern.split('*').collect();
    let (first, last) = (parts[0], parts[parts.len() - 1]);
    if !name.starts_with(first) || !name.ends_with(last) {
        return false;
    }
    // The middle segments must appear, in order, strictly between the
    // anchored prefix and suffix (no overlap).
    let body = &name[first.len()..];
    let Some(body_end) = body.len().checked_sub(last.len()) else {
        return false;
    };
    let mut hay = &body[..body_end];
    for seg in &parts[1..parts.len() - 1] {
        if seg.is_empty() {
            continue;
        }
        match hay.find(seg) {
            Some(off) => hay = &hay[off + seg.len()..],
            None => return false,
        }
    }
    true
}

/// Whether any code span in `doc` names `name` (literally or via glob).
fn documented(doc_spans: &[&str], name: &str) -> bool {
    doc_spans
        .iter()
        .any(|s| *s == name || (s.contains('*') && glob_match(s, name)))
}

/// Runs the consistency pass over the workspace at `root`.
///
/// With `tighten_budgets`, loose ceilings are rewritten in `lint.allow`
/// (and zero-count lines deleted) instead of reported as problems.
pub fn check(root: &Path, tighten_budgets: bool) -> std::io::Result<ConsistencyReport> {
    let mut report = ConsistencyReport::default();

    // Lex the whole lint scope once; every registry check scans it.
    let files = collect_files(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(path)?));
    }

    check_registry(root, &sources, &mut report);
    check_rules(root, &mut report);
    check_budgets(root, &sources, tighten_budgets, &mut report)?;
    check_waivers(&sources, &mut report);

    Ok(report)
}

/// Checks 1–3: registry variants are incremented, documented, exported.
fn check_registry(root: &Path, sources: &[(String, String)], report: &mut ConsistencyReport) {
    // Variant identifiers (`DinicPhases`) for the usage scan, wire names
    // (`dinic_phases`) for docs and prom. Both straight from the enum.
    let mut variants: Vec<(String, String, &'static str)> = Vec::new(); // (enum, variant, wire)
    for c in Counter::ALL {
        variants.push(("Counter".to_owned(), format!("{c:?}"), c.name()));
    }
    for h in Hist::ALL {
        variants.push(("Hist".to_owned(), format!("{h:?}"), h.name()));
    }

    let obs_doc = std::fs::read_to_string(root.join("docs/observability.md")).unwrap_or_default();
    let obs_spans = code_spans(&obs_doc);

    let prom = mc3_obs::prometheus_text(&TelemetryReport {
        spans: Vec::new(),
        counters: mc3_telemetry::COUNTER_NAMES
            .iter()
            .map(|n| ((*n).to_owned(), 0))
            .collect(),
        histograms: mc3_telemetry::HIST_NAMES
            .iter()
            .map(|n| mc3_telemetry::HistogramData {
                name: (*n).to_owned(),
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            })
            .collect(),
        ..TelemetryReport::default()
    });

    for (enum_name, variant, wire) in &variants {
        // 1. Referenced somewhere outside the declaring registry file.
        report.checks_run += 1;
        let token = format!("{enum_name}::{variant}");
        let used = sources.iter().any(|(rel, src)| {
            rel != "crates/telemetry/src/counters.rs"
                && src.contains(&token[enum_name.len()..]) // fast reject on `::Variant`
                && source_references_variant(src, enum_name, variant)
        });
        if !used {
            report.problems.push(Problem {
                check: "counter-incremented",
                subject: token.clone(),
                detail: format!(
                    "registry variant `{wire}` is never referenced outside the registry; \
                     wire it into the code path it claims to measure or remove it"
                ),
            });
        }

        // 2. Documented in docs/observability.md.
        report.checks_run += 1;
        if !documented(&obs_spans, wire) {
            report.problems.push(Problem {
                check: "counter-documented",
                subject: (*wire).to_owned(),
                detail: "no row in docs/observability.md names this wire name \
                         (glob rows like `verify_*_checks` count)"
                    .to_owned(),
            });
        }

        // 3. Present in the prom exposition of a zeroed report.
        report.checks_run += 1;
        let expected = if enum_name == "Counter" {
            format!("mc3_{wire}_total ")
        } else {
            format!("# TYPE mc3_{wire} histogram")
        };
        if !prom.contains(&expected) {
            report.problems.push(Problem {
                check: "counter-exported",
                subject: (*wire).to_owned(),
                detail: format!(
                    "`{expected}` missing from the Prometheus exposition of a zeroed \
                     report; the exporter must render every registered family"
                ),
            });
        }
    }
}

/// Token-accurate check that `src` contains `Enum::Variant` (the fast
/// substring pre-filter cannot tell `Counter::X` from a comment).
fn source_references_variant(src: &str, enum_name: &str, variant: &str) -> bool {
    let toks = crate::lexer::lex(src).tokens;
    toks.windows(4).any(|w| {
        w[0].is_ident(enum_name)
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident(variant)
    })
}

/// Check 4: every lint rule is documented and has a caught fixture.
fn check_rules(root: &Path, report: &mut ConsistencyReport) {
    let audit_doc = std::fs::read_to_string(root.join("docs/audit.md")).unwrap_or_default();
    let audit_spans = code_spans(&audit_doc);
    let fixture_dir = root.join("crates/audit/tests/fixtures");

    for info in RULE_INFOS {
        report.checks_run += 1;
        if !documented(&audit_spans, info.name) {
            report.problems.push(Problem {
                check: "rule-documented",
                subject: info.name.to_owned(),
                detail: "no row in docs/audit.md names this rule; add it to the rules table"
                    .to_owned(),
            });
        }

        report.checks_run += 1;
        let path = fixture_dir.join(info.fixture);
        match std::fs::read_to_string(&path) {
            Err(_) => report.problems.push(Problem {
                check: "rule-fixture",
                subject: info.name.to_owned(),
                detail: format!(
                    "negative fixture crates/audit/tests/fixtures/{} is missing",
                    info.fixture
                ),
            }),
            Ok(source) => {
                let caught = check_file(info.lint_as, &source)
                    .iter()
                    .any(|v| v.rule == info.name);
                if !caught {
                    report.problems.push(Problem {
                        check: "rule-fixture",
                        subject: info.name.to_owned(),
                        detail: format!(
                            "fixture {} (linted as {}) produces no `{}` violation — \
                             the rule no longer catches its own counterexample",
                            info.fixture, info.lint_as, info.name
                        ),
                    });
                }
            }
        }
    }
}

/// Check 5: budget paths exist and ceilings match measured reality.
fn check_budgets(
    root: &Path,
    sources: &[(String, String)],
    tighten: bool,
    report: &mut ConsistencyReport,
) -> std::io::Result<()> {
    let allowlist = match load_allowlist(root) {
        Ok(a) => a,
        Err(e) => {
            report.checks_run += 1;
            report.problems.push(Problem {
                check: "budget-parse",
                subject: "lint.allow".to_owned(),
                detail: e,
            });
            return Ok(());
        }
    };
    if allowlist.entries.is_empty() {
        return Ok(());
    }

    // Measure actual violation counts per entry, longest-prefix matched
    // exactly as the lint does.
    let mut violations = Vec::new();
    for (rel, src) in sources {
        violations.extend(check_file(rel, src));
    }
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &violations {
        let matched = allowlist
            .entries
            .iter()
            .filter(|e| e.rule == v.rule && v.file.starts_with(e.path.as_str()))
            .max_by_key(|e| e.path.len());
        if let Some(e) = matched {
            *counts.entry((e.rule.clone(), e.path.clone())).or_insert(0) += 1;
        }
    }

    let mut rewrites: BTreeMap<(String, String), Option<usize>> = BTreeMap::new();
    for entry in &allowlist.entries {
        report.checks_run += 1;
        if !root.join(&entry.path).exists() {
            report.problems.push(Problem {
                check: "budget-path",
                subject: format!("{} {}", entry.rule, entry.path),
                detail: "budget path no longer exists; delete the stale line".to_owned(),
            });
            continue;
        }

        report.checks_run += 1;
        let actual = counts
            .get(&(entry.rule.clone(), entry.path.clone()))
            .copied()
            .unwrap_or(0);
        if entry.budget > actual {
            if tighten {
                let new = (actual > 0).then_some(actual);
                rewrites.insert((entry.rule.clone(), entry.path.clone()), new);
                report.tightened.push(match new {
                    Some(n) => format!(
                        "{} {}: budget {} -> {n}",
                        entry.rule, entry.path, entry.budget
                    ),
                    None => format!(
                        "{} {}: budget {} -> line deleted (count is 0)",
                        entry.rule, entry.path, entry.budget
                    ),
                });
            } else {
                report.problems.push(Problem {
                    check: "budget-loose",
                    subject: format!("{} {}", entry.rule, entry.path),
                    detail: format!(
                        "ceiling is {} but only {actual} violations remain; budgets may \
                         only shrink — lower it (or run `consistency --tighten-budgets`)",
                        entry.budget
                    ),
                });
            }
        }
    }

    if !rewrites.is_empty() {
        rewrite_allowlist(&root.join("lint.allow"), &rewrites)?;
    }
    Ok(())
}

/// Rewrites `lint.allow` in place: entries in `rewrites` get their budget
/// replaced (`Some(n)`) or their line dropped (`None`); comments, blank
/// lines and untouched entries pass through byte-for-byte.
fn rewrite_allowlist(
    path: &Path,
    rewrites: &BTreeMap<(String, String), Option<usize>>,
) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    let mut out = String::with_capacity(text.len());
    for raw in text.lines() {
        let line = raw.trim();
        let parsed = if line.is_empty() || line.starts_with('#') {
            None
        } else {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(r), Some(p)) => Some((r.to_owned(), p.to_owned())),
                _ => None,
            }
        };
        match parsed.and_then(|key| rewrites.get(&key).map(|r| (key, r))) {
            None => {
                out.push_str(raw);
                out.push('\n');
            }
            Some((_, None)) => {} // line deleted: debt fully burned down
            Some(((rule, p), Some(n))) => {
                // Preserve the column layout by replacing the last field.
                let prefix_len = raw
                    .rfind(|c: char| !c.is_whitespace())
                    .map(|e| raw[..e].rfind(char::is_whitespace).map_or(0, |s| s + 1))
                    .unwrap_or(0);
                let _ = writeln!(out, "{}{n}", &raw[..prefix_len]);
                debug_assert!(raw.contains(&rule) && raw.contains(&p));
            }
        }
    }
    std::fs::write(path, out)
}

/// The lint rule whose inline waivers check 6 closes the loop on.
const NO_ALLOC_RULE: &str = "no-alloc-in-hot-loops";

/// File name → the designated steady-state span for its no-alloc waivers.
/// A waiver says "this allocation is amortized away"; the span is where
/// the runtime half of that claim is measured — it must record at least
/// one allocation-free instance on the pinned workload. A waiver in a file
/// absent from this table is itself a problem: the claim would be
/// unverifiable.
const NO_ALLOC_SPANS: &[(&str, &str)] = &[
    ("dinic.rs", "dinic.max_flow"),
    ("greedy.rs", "setcover.greedy.select"),
    ("prune.rs", "setcover.prune"),
    ("local_search.rs", "setcover.local_search.pass"),
    ("bitcover.rs", "setcover.local_search.pass"),
    ("reduction.rs", "solver.reduce"),
];

/// Check 6: every no-alloc waiver file's designated span is steady-state
/// allocation-free on the pinned workload.
fn check_waivers(sources: &[(String, String)], report: &mut ConsistencyReport) {
    // Waivers come from the real lexer (comment-form only), so prose
    // mentions of the rule name — including this file's — don't count.
    let waiver_files: Vec<&str> = sources
        .iter()
        .filter(|(_, src)| {
            crate::lexer::lex(src)
                .waivers
                .iter()
                .any(|w| w.rules.iter().any(|r| r == NO_ALLOC_RULE))
        })
        .map(|(rel, _)| rel.as_str())
        .collect();
    // A tree with no waivers (unit-test workspaces, stripped checkouts)
    // has nothing to verify and no workload to run.
    if waiver_files.is_empty() {
        return;
    }

    // span → waiver files whose claim it carries
    let mut required: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for rel in &waiver_files {
        report.checks_run += 1;
        let file = rel.rsplit('/').next().unwrap_or(rel);
        match NO_ALLOC_SPANS.iter().find(|(f, _)| *f == file) {
            Some((_, span)) => required.entry(span).or_default().push(rel),
            None => report.problems.push(Problem {
                check: "waiver-span",
                subject: (*rel).to_owned(),
                detail: format!(
                    "file carries a `{NO_ALLOC_RULE}` waiver but has no \
                     designated steady-state span; instrument one and add it \
                     to the NO_ALLOC_SPANS table in \
                     crates/audit/src/consistency.rs"
                ),
            }),
        }
    }

    let tel = match run_pinned_workload() {
        Ok(tel) => tel,
        Err(e) => {
            report.checks_run += 1;
            report.problems.push(Problem {
                check: "waiver-alloc-free",
                subject: "pinned workload".to_owned(),
                detail: e,
            });
            return;
        }
    };
    // name → (merged instances, min allocations over any single instance)
    let mut observed: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    fn visit<'a>(nodes: &'a [mc3_telemetry::SpanData], out: &mut BTreeMap<&'a str, (u64, u64)>) {
        for n in nodes {
            let e = out.entry(n.name.as_str()).or_insert((0, u64::MAX));
            e.0 += n.count;
            e.1 = e.1.min(n.mem.min_instance_allocs);
            visit(&n.children, out);
        }
    }
    visit(&tel.spans, &mut observed);

    for (span, files) in required {
        report.checks_run += 1;
        match observed.get(span) {
            None => report.problems.push(Problem {
                check: "waiver-alloc-free",
                subject: span.to_owned(),
                detail: format!(
                    "designated span never ran on the pinned workload, so the \
                     zero-allocation claim behind the waivers in {} is \
                     unverified; extend run_pinned_workload to exercise it",
                    files.join(", ")
                ),
            }),
            Some(&(instances, min_allocs)) if min_allocs != 0 => report.problems.push(Problem {
                check: "waiver-alloc-free",
                subject: span.to_owned(),
                detail: format!(
                    "all {instances} instances on the pinned workload \
                         allocated (best case {min_allocs} allocs); the \
                         `{NO_ALLOC_RULE}` waivers in {} claim an \
                         amortized-to-zero steady state",
                    files.join(", ")
                ),
            }),
            Some(_) => {}
        }
    }
}

/// Solves two deterministic instances under one telemetry session and
/// returns the merged report:
///
/// * a handcrafted instance with pinned structure — a k ≤ 2 property
///   triangle (real WVC/max-flow work for `dinic.max_flow`) plus two
///   property-disjoint long-query components, largest first, solved
///   sequentially so the reduction's recycled scratch gets warm
///   (allocation-free) rounds;
/// * a small mixed synthetic dataset from `mc3-workload`, for breadth
///   across the greedy/prune/local-search kernels.
fn run_pinned_workload() -> Result<TelemetryReport, String> {
    use mc3_solver::{Algorithm, Mc3Solver};
    let queries: Vec<Vec<u32>> = vec![
        // short phase: a WVC triangle sharing properties pairwise
        vec![0, 1],
        vec![1, 2],
        vec![0, 2],
        // general components (disjoint property ranges), largest first so
        // every later reduction fits the recycled scratch capacities
        vec![10, 11, 12, 13],
        vec![11, 12, 13, 14],
        vec![10, 12, 14],
        vec![20, 21, 22],
        vec![21, 22, 23],
    ];
    let handcrafted = mc3_core::Instance::new(queries, mc3_core::Weights::seeded(7, 1, 50))
        .map_err(|e| format!("handcrafted pinned instance rejected: {e}"))?;
    let synthetic = mc3_workload::SyntheticConfig::with_queries(160)
        .seed(0x3C0)
        .generate();

    let session = mc3_telemetry::Session::begin();
    let solver = Mc3Solver::new()
        .algorithm(Algorithm::ShortFirst)
        .parallel(false);
    let solved = solver
        .solve_report(&handcrafted)
        .and_then(|_| solver.solve_report(&synthetic.instance));
    let tel = session.finish();
    match solved {
        Ok(_) => Ok(tel),
        Err(e) => Err(format!("pinned workload failed to solve: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globs_match_like_the_docs_rows() {
        assert!(glob_match("verify_*_checks", "verify_flow_checks"));
        assert!(glob_match("verify_*_checks", "verify_greedy_dual_checks"));
        assert!(!glob_match("verify_*_checks", "verify_flow"));
        assert!(!glob_match("verify_*_checks", "dinic_phases"));
        assert!(glob_match("lp_*", "lp_pivots"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"));
        assert!(glob_match("*", "anything"));
    }

    #[test]
    fn code_spans_are_extracted() {
        let spans = code_spans("a `one` b `two_three`, and `x*y`.");
        assert_eq!(spans, vec!["one", "two_three", "x*y"]);
    }

    #[test]
    fn variant_references_are_token_accurate() {
        assert!(source_references_variant(
            "fn f() { count(Counter::DinicPhases, 1); }",
            "Counter",
            "DinicPhases"
        ));
        // A comment or string must not count.
        assert!(!source_references_variant(
            "fn f() { let s = \"Counter::DinicPhases\"; }",
            "Counter",
            "DinicPhases"
        ));
        assert!(!source_references_variant(
            "// Counter::DinicPhases\nfn f() {}",
            "Counter",
            "DinicPhases"
        ));
    }

    #[test]
    fn the_prom_check_sees_every_family() {
        // Replicates check 3 inline: a zeroed report exposes everything.
        let prom = mc3_obs::prometheus_text(&TelemetryReport {
            spans: Vec::new(),
            counters: mc3_telemetry::COUNTER_NAMES
                .iter()
                .map(|n| ((*n).to_owned(), 0))
                .collect(),
            histograms: mc3_telemetry::HIST_NAMES
                .iter()
                .map(|n| mc3_telemetry::HistogramData {
                    name: (*n).to_owned(),
                    count: 0,
                    sum: 0,
                    buckets: Vec::new(),
                })
                .collect(),
            ..TelemetryReport::default()
        });
        for name in mc3_telemetry::COUNTER_NAMES {
            assert!(prom.contains(&format!("mc3_{name}_total ")), "{name}");
        }
        for name in mc3_telemetry::HIST_NAMES {
            assert!(
                prom.contains(&format!("# TYPE mc3_{name} histogram")),
                "{name}"
            );
        }
    }

    #[test]
    fn no_alloc_waivers_are_steady_state_allocation_free() {
        // End-to-end on the real workspace: every waiver file maps to a
        // designated span and that span records an allocation-free
        // instance on the pinned workload.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = crate::collect_files(root).expect("collect lint scope");
        let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
        for path in &files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, std::fs::read_to_string(path).expect("read source")));
        }
        let mut report = ConsistencyReport::default();
        check_waivers(&sources, &mut report);
        assert!(
            report.checks_run > 0,
            "the real tree has waivers; the check must not skip"
        );
        assert!(report.problems.is_empty(), "{}", report.render());
    }

    #[test]
    fn waiver_check_skips_trees_without_waivers() {
        let sources = vec![("crates/x/src/a.rs".to_owned(), "pub fn f() {}\n".to_owned())];
        let mut report = ConsistencyReport::default();
        check_waivers(&sources, &mut report);
        assert_eq!(report.checks_run, 0);
        assert!(report.problems.is_empty());
    }

    #[test]
    fn unmapped_waiver_files_are_flagged() {
        let sources = vec![(
            "crates/x/src/mystery.rs".to_owned(),
            format!("fn f() {{}} // audit:allow({NO_ALLOC_RULE}) reviewed: test\n"),
        )];
        let mut report = ConsistencyReport::default();
        check_waivers(&sources, &mut report);
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.check == "waiver-span" && p.subject.ends_with("mystery.rs")),
            "{:?}",
            report.problems
        );
    }

    #[test]
    fn loose_budgets_are_flagged_and_tightened() {
        let root = std::env::temp_dir().join("mc3-audit-consistency-tighten-ws");
        let src_dir = root.join("crates/x/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(
            src_dir.join("a.rs"),
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )
        .expect("write src");
        std::fs::write(
            root.join("lint.allow"),
            "# budgets\nno-unwrap-in-lib crates/x/src/a.rs 5\nno-float-eq crates/x/src/a.rs 2\n",
        )
        .expect("write allowlist");

        // Without tightening: two loose ceilings (1 actual vs 5, 0 vs 2).
        let rep = check(&root, false).expect("consistency run");
        let loose: Vec<&Problem> = rep
            .problems
            .iter()
            .filter(|p| p.check == "budget-loose")
            .collect();
        assert_eq!(loose.len(), 2, "{:?}", rep.problems);

        // With tightening: rewritten to 1, zero-count line deleted.
        let rep = check(&root, true).expect("tighten run");
        assert!(rep.problems.iter().all(|p| p.check != "budget-loose"));
        assert_eq!(rep.tightened.len(), 2, "{:?}", rep.tightened);
        let new = std::fs::read_to_string(root.join("lint.allow")).expect("reread");
        assert!(new.contains("# budgets"), "comments survive: {new}");
        assert!(
            new.contains("no-unwrap-in-lib crates/x/src/a.rs 1"),
            "{new}"
        );
        assert!(
            !new.contains("no-float-eq"),
            "zero-count line deleted: {new}"
        );

        // A second run is now clean on the budget checks.
        let rep = check(&root, false).expect("second run");
        assert!(
            rep.problems.iter().all(|p| !p.check.starts_with("budget")),
            "{:?}",
            rep.problems
        );
    }

    #[test]
    fn stale_budget_paths_are_flagged() {
        let root = std::env::temp_dir().join("mc3-audit-consistency-stale-ws");
        std::fs::create_dir_all(root.join("crates")).expect("mkdir");
        std::fs::write(
            root.join("lint.allow"),
            "no-unwrap-in-lib crates/gone/src/a.rs 3\n",
        )
        .expect("write allowlist");
        let rep = check(&root, false).expect("consistency run");
        assert!(
            rep.problems.iter().any(|p| p.check == "budget-path"),
            "{:?}",
            rep.problems
        );
    }
}
