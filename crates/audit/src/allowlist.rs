//! The lint allowlist: per-(rule, path) violation budgets.
//!
//! Inline `// audit:allow(rule)` waivers handle individually reviewed
//! sites. For legacy debt that is tracked wholesale — e.g. the remaining
//! `unwrap()` sites a burn-down hasn't reached yet — the allowlist file
//! (`lint.allow` at the repo root) grants a *budget* per rule and file:
//!
//! ```text
//! # rule                      path (repo-relative)              budget
//! no-unwrap-in-lib            crates/solver/src/preprocess.rs   12
//! no-default-hasher           crates/core/src/fxhash.rs         2
//! ```
//!
//! Budgets are ceilings: the driver fails if a file *exceeds* its budget,
//! so the debt count can shrink but never grow. Violations in files with
//! no matching entry fail outright. When several entries match a file the
//! longest (most specific) path wins.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// One parsed budget line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name the budget applies to.
    pub rule: String,
    /// Repo-relative path prefix (a full file path in practice).
    pub path: String,
    /// Maximum tolerated violations.
    pub budget: usize,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// All entries in file order.
    pub entries: Vec<Entry>,
}

/// A budget overrun or unbudgeted violation, for reporting.
#[derive(Debug)]
pub enum Finding {
    /// Violations in a file with no allowlist entry for the rule.
    Unbudgeted(Violation),
    /// More violations than the entry allows.
    OverBudget {
        /// The exceeded entry.
        entry: Entry,
        /// Observed count.
        count: usize,
        /// The offending sites.
        sites: Vec<Violation>,
    },
}

impl Allowlist {
    /// Parses the allowlist text. Returns an error message on malformed
    /// lines (never panics — the allowlist is user input).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, path, budget) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(b)) => (r, p, b),
                _ => {
                    return Err(format!(
                        "lint.allow:{}: expected `<rule> <path> <budget>`, got `{line}`",
                        ln + 1
                    ))
                }
            };
            if parts.next().is_some() {
                return Err(format!(
                    "lint.allow:{}: trailing fields after budget in `{line}`",
                    ln + 1
                ));
            }
            let budget: usize = budget
                .parse()
                .map_err(|_| format!("lint.allow:{}: budget `{budget}` is not a number", ln + 1))?;
            entries.push(Entry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                budget,
            });
        }
        Ok(Allowlist { entries })
    }

    /// The most specific entry covering `(rule, file)`, if any.
    fn lookup(&self, rule: &str, file: &str) -> Option<&Entry> {
        self.entries
            .iter()
            .filter(|e| e.rule == rule && file.starts_with(e.path.as_str()))
            .max_by_key(|e| e.path.len())
    }

    /// Applies budgets to raw violations; whatever comes back fails the
    /// lint run.
    pub fn apply(&self, violations: Vec<Violation>) -> Vec<Finding> {
        // Group by (rule, matched entry or file).
        let mut unbudgeted = Vec::new();
        let mut grouped: BTreeMap<(String, String), (Entry, Vec<Violation>)> = BTreeMap::new();
        for v in violations {
            match self.lookup(v.rule, &v.file) {
                None => unbudgeted.push(v),
                Some(e) => {
                    grouped
                        .entry((e.rule.clone(), e.path.clone()))
                        .or_insert_with(|| (e.clone(), Vec::new()))
                        .1
                        .push(v);
                }
            }
        }
        let mut findings: Vec<Finding> = unbudgeted.into_iter().map(Finding::Unbudgeted).collect();
        for (_, (entry, sites)) in grouped {
            if sites.len() > entry.budget {
                findings.push(Finding::OverBudget {
                    count: sites.len(),
                    entry,
                    sites,
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_owned(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parses_comments_and_entries() {
        let a = Allowlist::parse("# header\n\nno-unwrap-in-lib crates/x/src/a.rs 3\n").unwrap();
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].budget, 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("just-two fields").is_err());
        assert!(Allowlist::parse("r p notanumber").is_err());
        assert!(Allowlist::parse("r p 1 extra").is_err());
    }

    #[test]
    fn within_budget_passes_over_budget_fails() {
        let a = Allowlist::parse("no-unwrap-in-lib crates/x/src/a.rs 2").unwrap();
        let ok = a.apply(vec![
            viol("no-unwrap-in-lib", "crates/x/src/a.rs", 1),
            viol("no-unwrap-in-lib", "crates/x/src/a.rs", 2),
        ]);
        assert!(ok.is_empty());
        let bad = a.apply(vec![
            viol("no-unwrap-in-lib", "crates/x/src/a.rs", 1),
            viol("no-unwrap-in-lib", "crates/x/src/a.rs", 2),
            viol("no-unwrap-in-lib", "crates/x/src/a.rs", 3),
        ]);
        assert_eq!(bad.len(), 1);
        assert!(matches!(&bad[0], Finding::OverBudget { count: 3, .. }));
    }

    #[test]
    fn unbudgeted_violations_fail() {
        let a = Allowlist::parse("no-float-eq crates/x/src/a.rs 1").unwrap();
        let out = a.apply(vec![viol("no-unwrap-in-lib", "crates/x/src/a.rs", 1)]);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Finding::Unbudgeted(_)));
    }

    #[test]
    fn longest_path_wins() {
        let a =
            Allowlist::parse("no-unwrap-in-lib crates/x 0\nno-unwrap-in-lib crates/x/src/a.rs 1\n")
                .unwrap();
        // One violation in a.rs: covered by the specific entry (budget 1).
        assert!(a
            .apply(vec![viol("no-unwrap-in-lib", "crates/x/src/a.rs", 1)])
            .is_empty());
        // One violation elsewhere under crates/x: the directory budget 0.
        let out = a.apply(vec![viol("no-unwrap-in-lib", "crates/x/src/b.rs", 1)]);
        assert_eq!(out.len(), 1);
    }
}
