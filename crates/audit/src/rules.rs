//! The lint rules.
//!
//! Each rule walks the syntactic model from [`crate::syntax`] — the token
//! stream annotated with the item tree, test regions, loop depth, cast
//! and discard shapes — and emits [`Violation`]s. Rules are deliberately
//! syntactic: with no type information available offline, they
//! over-approximate and rely on the explicit waiver syntax
//! (`// audit:allow(rule)`) plus the allowlist budgets for the sites a
//! human has reviewed.

use crate::lexer::TokenKind;
use crate::syntax::{CastOperand, SyntaxFile};

/// Names of all rules, in reporting order.
pub const ALL_RULES: [&str; 10] = [
    "no-unwrap-in-lib",
    "no-default-hasher",
    "no-unchecked-index-in-hot-loops",
    "no-float-eq",
    "no-bare-instant",
    "no-raw-eprintln-in-lib",
    "no-relaxed-atomics",
    "no-alloc-in-hot-loops",
    "no-silent-truncation",
    "no-swallowed-result",
];

/// Static metadata about one rule, consumed by the fixture tests and the
/// `consistency` pass: where its negative fixture lives and which
/// repo-relative path the fixture must be linted under (file-scoped rules
/// key on path prefixes or file-name stems).
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name (one of [`ALL_RULES`]).
    pub name: &'static str,
    /// Fixture file name under `crates/audit/tests/fixtures/`.
    pub fixture: &'static str,
    /// Path the fixture is linted under so the rule's scoping applies.
    pub lint_as: &'static str,
}

/// Metadata for every rule, in [`ALL_RULES`] order.
pub const RULE_INFOS: [RuleInfo; 10] = [
    RuleInfo {
        name: "no-unwrap-in-lib",
        fixture: "unwrap_in_lib.rs",
        lint_as: "unwrap_in_lib.rs",
    },
    RuleInfo {
        name: "no-default-hasher",
        fixture: "default_hasher.rs",
        lint_as: "default_hasher.rs",
    },
    RuleInfo {
        name: "no-unchecked-index-in-hot-loops",
        fixture: "dinic.rs",
        lint_as: "dinic.rs",
    },
    RuleInfo {
        name: "no-float-eq",
        fixture: "float_eq.rs",
        lint_as: "float_eq.rs",
    },
    RuleInfo {
        name: "no-bare-instant",
        fixture: "bare_instant.rs",
        lint_as: "bare_instant.rs",
    },
    RuleInfo {
        name: "no-raw-eprintln-in-lib",
        fixture: "raw_eprintln.rs",
        lint_as: "raw_eprintln.rs",
    },
    RuleInfo {
        name: "no-relaxed-atomics",
        fixture: "relaxed_atomic.rs",
        lint_as: "relaxed_atomic.rs",
    },
    // The alloc rule is scoped to kernel file stems, so its fixture is
    // linted under (and, in the binary-level test, copied to) a hot name.
    RuleInfo {
        name: "no-alloc-in-hot-loops",
        fixture: "hot_alloc.rs",
        lint_as: "crates/setcover/src/bitcover.rs",
    },
    RuleInfo {
        name: "no-silent-truncation",
        fixture: "truncating_cast.rs",
        lint_as: "truncating_cast.rs",
    },
    RuleInfo {
        name: "no-swallowed-result",
        fixture: "swallowed_result.rs",
        lint_as: "swallowed_result.rs",
    },
];

/// File-name stems whose inner loops are hot paths for the indexing rule
/// (`dinic.rs`, `push_relabel.rs`, `greedy.rs` per the MC³ hot-path set).
pub const HOT_LOOP_FILES: [&str; 3] = ["dinic.rs", "push_relabel.rs", "greedy.rs"];

/// File-name stems covered by `no-alloc-in-hot-loops`: the flow and
/// set-cover kernels plus the `ReductionScratch` call sites, where a
/// per-iteration allocation turns an O(1) inner step into a malloc storm.
pub const ALLOC_HOT_FILES: [&str; 7] = [
    "dinic.rs",
    "push_relabel.rs",
    "greedy.rs",
    "bitcover.rs",
    "prune.rs",
    "local_search.rs",
    "reduction.rs",
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the site.
    pub message: String,
}

/// Runs every rule over one file's source text.
///
/// `file` is the repo-relative path used both for reporting and for
/// file-scoped rules (the hot-loop rules, the crate-scoped exemptions).
/// Waivers are applied here: a violation on line `L` is dropped if an
/// `audit:allow` comment naming its rule sits on line `L` or `L − 1`.
pub fn check_file(file: &str, source: &str) -> Vec<Violation> {
    let sf = SyntaxFile::parse(source);
    let mut violations = Vec::new();

    rule_no_unwrap(file, &sf, &mut violations);
    rule_no_default_hasher(file, &sf, &mut violations);
    rule_no_unchecked_index(file, &sf, &mut violations);
    rule_no_float_eq(file, &sf, &mut violations);
    rule_no_bare_instant(file, &sf, &mut violations);
    rule_no_raw_eprintln(file, &sf, &mut violations);
    rule_no_relaxed_atomics(file, &sf, &mut violations);
    rule_no_alloc_in_hot_loops(file, &sf, &mut violations);
    rule_no_silent_truncation(file, &sf, &mut violations);
    rule_no_swallowed_result(file, &sf, &mut violations);

    violations.retain(|v| {
        !sf.waivers.iter().any(|w| {
            (w.line == v.line || w.line + 1 == v.line) && w.rules.iter().any(|r| r == v.rule)
        })
    });
    violations.sort_by_key(|v| (v.line, v.rule));
    violations
}

fn rule_no_unwrap(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).map(|n| n.is_punct(c)) == Some(true);
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        let site = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => format!(".{}()", t.text),
            "panic" | "todo" | "unimplemented" if next_is('!') => format!("{}!", t.text),
            _ => continue,
        };
        out.push(Violation {
            rule: "no-unwrap-in-lib",
            file: file.to_owned(),
            line: t.line,
            message: format!("{site} in library code; return mc3_core::error types instead"),
        });
    }
}

fn rule_no_default_hasher(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    for (i, t) in sf.tokens.iter().enumerate() {
        if sf.in_test(i) {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Violation {
                rule: "no-default-hasher",
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "std {} uses SipHash; hot paths must use mc3_core::fxhash::Fx{}",
                    t.text, t.text
                ),
            });
        }
    }
}

fn rule_no_unchecked_index(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    let name = file.rsplit('/').next().unwrap_or(file);
    if !HOT_LOOP_FILES.contains(&name) {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || sf.loop_depth(i) == 0 || !t.is_punct('[') {
            continue;
        }
        // Indexing follows a value: identifier, `]`, or `)`. Array
        // literals, types and attributes follow operators or `#`.
        let indexes_a_value = i > 0
            && (toks[i - 1].kind == TokenKind::Ident
                || toks[i - 1].is_punct(']')
                || toks[i - 1].is_punct(')'));
        if indexes_a_value {
            out.push(Violation {
                rule: "no-unchecked-index-in-hot-loops",
                file: file.to_owned(),
                line: t.line,
                message: "unchecked `[]` indexing in a hot inner loop; bounds-panic here \
                          aborts the solve — use get()/iterators or waive after review"
                    .to_owned(),
            });
        }
    }
}

fn rule_no_float_eq(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if sf.in_test(i) {
            continue;
        }
        let op = (toks[i].is_punct('=') || toks[i].is_punct('!')) && toks[i + 1].is_punct('=');
        if !op {
            continue;
        }
        // `a == b`: lhs ends at i-1, rhs starts at i+2. `<=`/`>=`/`+=` etc.
        // have a non-`=`/`!` operator char at i, so they never match here;
        // `===` cannot occur in valid Rust.
        let lhs_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        let rhs_float = toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Float);
        if lhs_float || rhs_float {
            out.push(Violation {
                rule: "no-float-eq",
                file: file.to_owned(),
                line: toks[i].line,
                message: "exact float comparison; compare via an epsilon helper instead".to_owned(),
            });
        }
    }
}

/// `Instant::now()` outside the telemetry crate: ad-hoc timing pairs drift
/// from the span tree (the exact bug the `SolveTimings` derivation fixed),
/// so wall-time must flow through `mc3_telemetry::timed_span`/`span`. The
/// telemetry crate itself is the one place allowed to read the clock, and
/// the bench harness carries reviewed waivers.
fn rule_no_bare_instant(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    if file.starts_with("crates/telemetry/") {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || !t.is_ident("Instant") {
            continue;
        }
        let call = toks.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct(':')) == Some(true)
            && toks.get(i + 3).map(|n| n.is_ident("now")) == Some(true)
            && toks.get(i + 4).map(|n| n.is_punct('(')) == Some(true);
        if call {
            out.push(Violation {
                rule: "no-bare-instant",
                file: file.to_owned(),
                line: t.line,
                message: "direct Instant::now() in library code; route timing through \
                          mc3_telemetry spans (timed_span) so wall-times land in the trace"
                    .to_owned(),
            });
        }
    }
}

/// Crates whose job is writing to stdout/stderr (binaries and the lint
/// driver itself); the raw-print rule does not apply there.
const PRINT_EXEMPT_PREFIXES: [&str; 3] = ["crates/cli/", "crates/bench/", "crates/audit/"];

/// `print!`/`println!`/`eprint!`/`eprintln!` in library crates: ad-hoc
/// writes bypass the leveled, rate-limited `mc3-obs` event log (no
/// sequence numbers, no span context, no way to silence them in a serving
/// process). Binaries keep stdout for their actual output, so `cli`,
/// `bench` and `audit` — plus `src/bin/` targets and `main.rs` anywhere —
/// are exempt.
fn rule_no_raw_eprintln(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    if PRINT_EXEMPT_PREFIXES.iter().any(|p| file.starts_with(p))
        || file.contains("/bin/")
        || file.ends_with("main.rs")
    {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let is_print = matches!(t.text.as_str(), "print" | "println" | "eprint" | "eprintln");
        if is_print && toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true) {
            out.push(Violation {
                rule: "no-raw-eprintln-in-lib",
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "{}! in library code; emit a leveled mc3_obs event (debug/info/warn/error) \
                     so diagnostics carry span context and respect rate limits",
                    t.text
                ),
            });
        }
    }
}

/// `Ordering::Relaxed` / `Ordering::SeqCst` outside `crates/telemetry/`:
/// the weakest and strongest orderings are the two that most often hide a
/// reasoning mistake — `Relaxed` because it provides no synchronization
/// at all (fine for the telemetry counters, dangerous in the solver's
/// worker pool), `SeqCst` because it usually papers over an unstated
/// acquire/release protocol. Every such site must carry a waiver stating
/// the ordering argument; `Acquire`/`Release`/`AcqRel` name their
/// protocol explicitly and pass.
fn rule_no_relaxed_atomics(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    if file.starts_with("crates/telemetry/") {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || !t.is_ident("Ordering") {
            continue;
        }
        let path = toks.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct(':')) == Some(true);
        if !path {
            continue;
        }
        let Some(which) = toks.get(i + 3) else {
            continue;
        };
        if which.is_ident("Relaxed") || which.is_ident("SeqCst") {
            out.push(Violation {
                rule: "no-relaxed-atomics",
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "Ordering::{} outside crates/telemetry; add a reviewed waiver stating \
                     why this ordering is sufficient (or switch to Acquire/Release)",
                    which.text
                ),
            });
        }
    }
}

/// Allocation inside a loop of a flow/set-cover kernel file: `Vec::new`,
/// `vec![…]`, `.push(…)`, `.collect(…)`, `.clone(…)`, `.to_vec(…)`,
/// `.to_owned(…)`. The kernels are called per query and per phase; an
/// allocation per iteration is exactly the pattern `ReductionScratch` and
/// the reusable reduction buffers exist to avoid. Reviewed
/// one-time/amortized allocations carry waivers.
fn rule_no_alloc_in_hot_loops(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    let name = file.rsplit('/').next().unwrap_or(file);
    if !ALLOC_HOT_FILES.contains(&name) {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || sf.loop_depth(i) == 0 || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).map(|n| n.is_punct(c)) == Some(true);
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        let site = match t.text.as_str() {
            "push" | "collect" | "clone" | "to_vec" | "to_owned"
                if prev_is_dot && (next_is('(') || next_is(':')) =>
            {
                format!(".{}()", t.text)
            }
            "new" | "with_capacity"
                if i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("Vec") =>
            {
                format!("Vec::{}()", t.text)
            }
            "vec" if next_is('!') => "vec![…]".to_owned(),
            _ => continue,
        };
        out.push(Violation {
            rule: "no-alloc-in-hot-loops",
            file: file.to_owned(),
            line: t.line,
            message: format!(
                "{site} inside a kernel loop allocates per iteration; hoist the buffer out \
                 of the loop (see ReductionScratch) or waive after review"
            ),
        });
    }
}

/// Cast targets the truncation rule considers narrowing. The workspace
/// pins 64-bit targets (`mc3_core::cast` carries the compile-time
/// assertion), so `usize`/`u64`/`u128`/`i128` casts cannot lose value
/// bits from the `u32`-sized ids the kernels use; everything narrower —
/// plus the sign-flipping `i64`/`isize` — can.
const NARROWING_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize"];

/// Narrowing `as` casts in non-test code: `expr as u32` silently drops
/// high bits on out-of-range input — the exact failure mode that corrupts
/// id/cost arithmetic at production scale. Literal operands (`0 as u32`)
/// and bool-shaped operands (`(a == b) as u32`, branchless kernels) are
/// exempt; everything else must go through `mc3_core::cast`
/// (`try_from`-backed) or carry a reviewed waiver.
fn rule_no_silent_truncation(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    for cast in &sf.casts {
        if sf.in_test(cast.as_token) || !NARROWING_TARGETS.contains(&cast.target.as_str()) {
            continue;
        }
        if matches!(
            cast.operand,
            CastOperand::Literal | CastOperand::BoolShaped | CastOperand::BoolLiteral
        ) {
            continue;
        }
        out.push(Violation {
            rule: "no-silent-truncation",
            file: file.to_owned(),
            line: cast.line,
            message: format!(
                "narrowing `as {}` may silently truncate; use mc3_core::cast \
                 (try_from-backed) or waive with the range argument",
                cast.target
            ),
        });
    }
}

/// `let _ = expr;` in library crates: when `expr` is a `Result`, the `_`
/// pattern swallows the error without a trace — unlike an unused named
/// binding it does not even earn a warning. The `let _ = write!(buf, …)`
/// idiom on a `String` is exempt (`fmt::Write` to a `String` cannot
/// fail); binaries (`cli`, `src/bin/`, `main.rs`) own their exit paths
/// and are exempt too. Everything else either handles the value, binds
/// it to a named `_x` to document intent, or carries a reviewed waiver.
fn rule_no_swallowed_result(file: &str, sf: &SyntaxFile, out: &mut Vec<Violation>) {
    if file.starts_with("crates/cli/") || file.contains("/bin/") || file.ends_with("main.rs") {
        return;
    }
    for d in &sf.discards {
        if sf.in_test(d.let_token) || d.is_write_macro {
            continue;
        }
        out.push(Violation {
            rule: "no-swallowed-result",
            file: file.to_owned(),
            line: d.line,
            message: "`let _ =` swallows the value (and any Err) without a trace; handle \
                      or propagate the Result, bind a named `_x`, or waive after review"
                .to_owned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        check_file(file, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn rule_metadata_covers_every_rule() {
        assert_eq!(ALL_RULES.len(), RULE_INFOS.len());
        for (rule, info) in ALL_RULES.iter().zip(RULE_INFOS.iter()) {
            assert_eq!(*rule, info.name, "RULE_INFOS must stay in ALL_RULES order");
        }
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }";
        let v = check_file("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn expect_panic_todo_flagged() {
        assert_eq!(
            rules_hit("a.rs", "fn f() { a.expect(\"m\"); panic!(\"x\"); todo!() }"),
            vec!["no-unwrap-in-lib"; 3]
        );
        // `unimplemented!` counts too; bare `expect` without a dot does not.
        assert_eq!(
            rules_hit("a.rs", "fn f() { unimplemented!() } fn expect() {}"),
            vec!["no-unwrap-in-lib"]
        );
    }

    #[test]
    fn default_hasher_flagged() {
        assert_eq!(
            rules_hit("a.rs", "use std::collections::HashMap;"),
            vec!["no-default-hasher"]
        );
        assert!(rules_hit("a.rs", "use mc3_core::FxHashMap;").is_empty());
    }

    #[test]
    fn hot_loop_indexing_only_in_hot_files_and_loops() {
        let src = "fn f(v: &[u32]) { let a = v[0]; for i in 0..9 { let b = v[i]; } }";
        // Only the in-loop site in a hot file fires.
        let v = check_file("crates/flow/src/dinic.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unchecked-index-in-hot-loops");
        // Same code in a cold file: nothing.
        assert!(check_file("crates/flow/src/graph.rs", src).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Foo for Bar { fn f(&self, v: &[u32]) -> u32 { v[0] } }";
        assert!(check_file("crates/flow/src/dinic.rs", src).is_empty());
        let looped = "fn f(v: &[u32]) { while v[0] > 0 { g(v[1]); } }";
        assert_eq!(check_file("crates/flow/src/dinic.rs", looped).len(), 2);
    }

    #[test]
    fn float_eq_flagged() {
        assert_eq!(
            rules_hit("a.rs", "fn f(x: f64) -> bool { x == 0.5 }"),
            vec!["no-float-eq"]
        );
        assert_eq!(
            rules_hit("a.rs", "fn f(x: f64) -> bool { 1.0 != x }"),
            vec!["no-float-eq"]
        );
        assert!(rules_hit("a.rs", "fn f(x: f64) -> bool { x <= 0.5 }").is_empty());
        assert!(rules_hit("a.rs", "fn f(x: u64) -> bool { x == 5 }").is_empty());
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "// audit:allow(no-unwrap-in-lib) reviewed: init-time\nfn f() { x.unwrap(); }";
        assert!(check_file("a.rs", src).is_empty());
        let src = "fn f() { x.unwrap(); } // audit:allow(no-unwrap-in-lib)";
        assert!(check_file("a.rs", src).is_empty());
        // A waiver for a different rule does not help.
        let src = "// audit:allow(no-float-eq)\nfn f() { x.unwrap(); }";
        assert_eq!(check_file("a.rs", src).len(), 1);
    }

    #[test]
    fn bare_instant_flagged_outside_telemetry_and_tests() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_hit("crates/solver/src/solver.rs", src),
            vec!["no-bare-instant"]
        );
        // Fully qualified paths hit too (the match anchors on `Instant`).
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_hit("crates/flow/src/dinic.rs", src),
            vec!["no-bare-instant"]
        );
        // The telemetry crate is the one place allowed to read the clock.
        assert!(rules_hit("crates/telemetry/src/spans.rs", src).is_empty());
        // Tests and plain mentions of the type are fine.
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }";
        assert!(rules_hit("crates/solver/src/solver.rs", src).is_empty());
        let src = "use std::time::Instant;\nfn f(t: Instant) {}";
        assert!(rules_hit("crates/solver/src/solver.rs", src).is_empty());
        // Waivers work as for every other rule.
        let src =
            "// audit:allow(no-bare-instant) harness clock\nfn f() { let t = Instant::now(); }";
        assert!(rules_hit("crates/bench/src/timing.rs", src).is_empty());
    }

    #[test]
    fn raw_prints_flagged_in_lib_code_only() {
        let src = "fn f() { eprintln!(\"bad\"); println!(\"also bad\"); }";
        assert_eq!(
            rules_hit("crates/solver/src/solver.rs", src),
            vec!["no-raw-eprintln-in-lib"; 2]
        );
        // Binary crates, bin targets and main.rs keep their stdout.
        assert!(rules_hit("crates/cli/src/commands.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/bin/experiments.rs", src).is_empty());
        assert!(rules_hit("crates/audit/src/main.rs", src).is_empty());
        assert!(rules_hit("crates/solver/src/main.rs", src).is_empty());
        // Tests may print freely.
        let test_src = "#[cfg(test)]\nmod tests { fn f() { eprintln!(\"dbg\"); } }";
        assert!(rules_hit("crates/solver/src/solver.rs", test_src).is_empty());
        // A function merely named print is not a macro invocation.
        assert!(rules_hit("crates/solver/src/x.rs", "fn f() { print(); }").is_empty());
        // Waivers work as for every other rule.
        let waived = "// audit:allow(no-raw-eprintln-in-lib) reviewed: sink fallback\n\
                      fn f() { eprintln!(\"x\"); }";
        assert!(rules_hit("crates/obs/src/events.rs", waived).is_empty());
    }

    #[test]
    fn strings_cannot_fake_violations() {
        let src = "fn f() { let s = \"x.unwrap() panic!\"; }";
        assert!(check_file("a.rs", src).is_empty());
    }

    #[test]
    fn cfg_any_test_gates_too() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn f() { x.unwrap(); } }";
        assert!(check_file("a.rs", src).is_empty());
    }

    #[test]
    fn relaxed_and_seqcst_flagged_outside_telemetry() {
        let src = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(
            rules_hit("crates/solver/src/solver.rs", src),
            vec!["no-relaxed-atomics"]
        );
        let src = "fn f(a: &AtomicU64) { a.store(1, std::sync::atomic::Ordering::SeqCst); }";
        assert_eq!(
            rules_hit("crates/obs/src/events.rs", src),
            vec!["no-relaxed-atomics"]
        );
        // Acquire/Release name their protocol and pass.
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }";
        assert!(rules_hit("crates/obs/src/events.rs", src).is_empty());
        // The telemetry counters are the sanctioned Relaxed user.
        let src = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_hit("crates/telemetry/src/counters.rs", src).is_empty());
        // Waivers state the ordering argument.
        let src = "// audit:allow(no-relaxed-atomics) work-stealing index, result via Mutex\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        assert!(rules_hit("crates/solver/src/solver.rs", src).is_empty());
    }

    #[test]
    fn alloc_in_hot_loops_flagged_in_kernel_files_only() {
        let src = "fn f(v: &[u32]) -> Vec<u32> { let mut out = Vec::new(); \
                   for x in v { out.push(*x); } out }";
        // Vec::new is outside the loop: only the push fires.
        let v = check_file("crates/setcover/src/greedy.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-alloc-in-hot-loops");
        // Same code in a cold file: nothing.
        assert!(rules_hit("crates/setcover/src/instance.rs", src).is_empty());
        // collect / clone / vec! inside a loop all fire.
        let src = "fn f(v: &[Vec<u32>]) { for x in v { let a = x.clone(); \
                   let b: Vec<u32> = x.iter().copied().collect(); let c = vec![0u32; 4]; } }";
        assert_eq!(
            rules_hit("crates/flow/src/push_relabel.rs", src),
            vec!["no-alloc-in-hot-loops"; 3]
        );
        // Tests in kernel files may allocate freely.
        let src = "#[cfg(test)]\nmod tests { fn f(v: &[u32]) { \
                   for x in v { let mut o = Vec::new(); o.push(*x); } } }";
        assert!(rules_hit("crates/flow/src/dinic.rs", src).is_empty());
    }

    #[test]
    fn narrowing_casts_flagged_with_shape_exemptions() {
        let src = "fn f(n: u64) -> u32 { n as u32 }";
        assert_eq!(
            rules_hit("crates/flow/src/graph.rs", src),
            vec!["no-silent-truncation"]
        );
        // Literal, bool-shaped and widening casts pass.
        assert!(rules_hit("a.rs", "fn f() -> u32 { 7 as u32 }").is_empty());
        assert!(rules_hit("a.rs", "fn f(a: u64, b: u64) -> u32 { (a == b) as u32 }").is_empty());
        assert!(rules_hit("a.rs", "fn f(n: u32) -> u64 { n as u64 }").is_empty());
        assert!(rules_hit("a.rs", "fn f(n: u32) -> usize { n as usize }").is_empty());
        assert!(rules_hit("a.rs", "fn f(b: bool) -> u32 { true as u32 }").is_empty());
        // i64 can drop the top bit of a u64: flagged.
        let src = "fn f(n: u64) -> i64 { n as i64 }";
        assert_eq!(rules_hit("a.rs", src), vec!["no-silent-truncation"]);
        // Tests and waived sites pass.
        let src = "#[cfg(test)]\nmod t { fn f(n: u64) -> u32 { n as u32 } }";
        assert!(rules_hit("a.rs", src).is_empty());
        let src = "// audit:allow(no-silent-truncation) hash mixing: truncation intended\n\
                   fn f(n: u64) -> u32 { n as u32 }";
        assert!(rules_hit("a.rs", src).is_empty());
    }

    #[test]
    fn swallowed_results_flagged_outside_binaries() {
        let src = "fn f() { let _ = fallible(); }";
        assert_eq!(
            rules_hit("crates/obs/src/events.rs", src),
            vec!["no-swallowed-result"]
        );
        // The write!-to-String idiom is infallible and passes.
        let src = "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); }";
        assert!(rules_hit("crates/obs/src/prom.rs", src).is_empty());
        // Named discards document intent and pass.
        assert!(rules_hit(
            "crates/obs/src/events.rs",
            "fn f() { let _res = fallible(); }"
        )
        .is_empty());
        // Binaries own their exit paths.
        let src = "fn f() { let _ = fallible(); }";
        assert!(rules_hit("crates/cli/src/commands.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/bin/experiments.rs", src).is_empty());
        // Tests pass; waivers work.
        let src = "#[cfg(test)]\nmod t { fn f() { let _ = fallible(); } }";
        assert!(rules_hit("crates/obs/src/events.rs", src).is_empty());
        let src = "// audit:allow(no-swallowed-result) best-effort flush on drop\n\
                   fn f() { let _ = w.flush(); }";
        assert!(rules_hit("crates/obs/src/events.rs", src).is_empty());
    }
}
