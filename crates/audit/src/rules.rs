//! The lint rules.
//!
//! Each rule walks the token stream from [`crate::lexer::lex`] annotated
//! with structural context (test regions, loop depth) and emits
//! [`Violation`]s. Rules are deliberately syntactic: with no type
//! information available offline, they over-approximate and rely on the
//! explicit waiver syntax (`// audit:allow(rule)`) plus the allowlist
//! budgets for the sites a human has reviewed.

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// Names of all rules, in reporting order.
pub const ALL_RULES: [&str; 6] = [
    "no-unwrap-in-lib",
    "no-default-hasher",
    "no-unchecked-index-in-hot-loops",
    "no-float-eq",
    "no-bare-instant",
    "no-raw-eprintln-in-lib",
];

/// File-name stems whose inner loops are hot paths for the indexing rule
/// (`dinic.rs`, `push_relabel.rs`, `greedy.rs` per the MC³ hot-path set).
pub const HOT_LOOP_FILES: [&str; 3] = ["dinic.rs", "push_relabel.rs", "greedy.rs"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the site.
    pub message: String,
}

/// Per-token structural context derived in one pass over the stream.
struct Context {
    /// Whether the token sits inside a `#[cfg(test)]`-gated item.
    in_test: Vec<bool>,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    loop_depth: Vec<u32>,
}

/// Builds [`Context`] by tracking brace nesting, pending `#[cfg(test)]`
/// attributes and pending loop headers.
fn analyze(tokens: &[Token]) -> Context {
    #[derive(Clone, Copy)]
    struct Brace {
        is_test_root: bool,
        is_loop: bool,
    }
    let mut stack: Vec<Brace> = Vec::new();
    let mut in_test = Vec::with_capacity(tokens.len());
    let mut loop_depth = Vec::with_capacity(tokens.len());
    let mut test_level = 0u32;
    let mut loops = 0u32;
    // Set once a `#[cfg(test)]` attribute is seen; the next `{` opens the
    // gated item's body. A `;` first means the attribute gated a
    // braceless item (e.g. `#[cfg(test)] use x;`) — the flag is dropped.
    let mut pending_test = false;
    let mut pending_loop = false;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        in_test.push(test_level > 0);
        // A pending loop header (`while cond`, `for x in iter`) counts as
        // in-loop already: its tokens re-evaluate every iteration.
        loop_depth.push(loops + u32::from(pending_loop));

        if t.is_punct('#') && tokens.get(i + 1).map(|n| n.is_punct('[')) == Some(true) {
            // Scan the attribute for `cfg` ... `test` within its brackets.
            let mut depth = 0i32;
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut j = i + 1;
            while j < tokens.len() {
                let a = &tokens[j];
                if a.is_punct('[') {
                    depth += 1;
                } else if a.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("cfg") {
                    saw_cfg = true;
                } else if a.is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                pending_test = true;
            }
            // The attribute's own tokens inherit the current context.
            for _ in i + 1..=j.min(tokens.len() - 1) {
                in_test.push(test_level > 0);
                loop_depth.push(loops + u32::from(pending_loop));
            }
            i = j + 1;
            continue;
        }

        if t.is_ident("loop") || t.is_ident("while") {
            pending_loop = true;
        } else if t.is_ident("for") && for_is_a_loop(tokens, i) {
            pending_loop = true;
        } else if t.is_punct(';') {
            // A braceless gated item (`#[cfg(test)] use x;`, outline
            // `mod tests;`) ends the pending attribute's scope.
            pending_test = false;
        } else if t.is_punct('{') {
            let b = Brace {
                is_test_root: pending_test,
                is_loop: pending_loop,
            };
            pending_test = false;
            pending_loop = false;
            if b.is_test_root {
                test_level += 1;
            }
            if b.is_loop {
                loops += 1;
            }
            stack.push(b);
        } else if t.is_punct('}') {
            if let Some(b) = stack.pop() {
                if b.is_test_root {
                    test_level = test_level.saturating_sub(1);
                }
                if b.is_loop {
                    loops = loops.saturating_sub(1);
                }
            }
        }
        i += 1;
    }
    Context {
        in_test,
        loop_depth,
    }
}

/// Whether the `for` at `i` heads a `for … in … {` loop (as opposed to
/// `impl Trait for Type` or `for<'a>` binders): an `in` keyword appears
/// before the next `{` or `;`.
fn for_is_a_loop(tokens: &[Token], i: usize) -> bool {
    for t in tokens.iter().skip(i + 1).take(64) {
        if t.is_ident("in") {
            return true;
        }
        if t.is_punct('{') || t.is_punct(';') {
            return false;
        }
    }
    false
}

/// Runs every rule over one file's source text.
///
/// `file` is the repo-relative path used both for reporting and for
/// file-scoped rules (the hot-loop indexing rule). Waivers are applied
/// here: a violation on line `L` is dropped if an `audit:allow` comment
/// naming its rule sits on line `L` or `L − 1`.
pub fn check_file(file: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let ctx = analyze(&lexed.tokens);
    let mut violations = Vec::new();

    rule_no_unwrap(file, &lexed, &ctx, &mut violations);
    rule_no_default_hasher(file, &lexed, &ctx, &mut violations);
    rule_no_unchecked_index(file, &lexed, &ctx, &mut violations);
    rule_no_float_eq(file, &lexed, &ctx, &mut violations);
    rule_no_bare_instant(file, &lexed, &ctx, &mut violations);
    rule_no_raw_eprintln(file, &lexed, &ctx, &mut violations);

    violations.retain(|v| {
        !lexed.waivers.iter().any(|w| {
            (w.line == v.line || w.line + 1 == v.line) && w.rules.iter().any(|r| r == v.rule)
        })
    });
    violations.sort_by_key(|v| (v.line, v.rule));
    violations
}

fn rule_no_unwrap(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).map(|n| n.is_punct(c)) == Some(true);
        let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
        let site = match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => format!(".{}()", t.text),
            "panic" | "todo" | "unimplemented" if next_is('!') => format!("{}!", t.text),
            _ => continue,
        };
        out.push(Violation {
            rule: "no-unwrap-in-lib",
            file: file.to_owned(),
            line: t.line,
            message: format!("{site} in library code; return mc3_core::error types instead"),
        });
    }
}

fn rule_no_default_hasher(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Violation {
                rule: "no-default-hasher",
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "std {} uses SipHash; hot paths must use mc3_core::fxhash::Fx{}",
                    t.text, t.text
                ),
            });
        }
    }
}

fn rule_no_unchecked_index(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    let name = file.rsplit('/').next().unwrap_or(file);
    if !HOT_LOOP_FILES.contains(&name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || ctx.loop_depth[i] == 0 || !t.is_punct('[') {
            continue;
        }
        // Indexing follows a value: identifier, `]`, or `)`. Array
        // literals, types and attributes follow operators or `#`.
        let indexes_a_value = i > 0
            && (toks[i - 1].kind == TokenKind::Ident
                || toks[i - 1].is_punct(']')
                || toks[i - 1].is_punct(')'));
        if indexes_a_value {
            out.push(Violation {
                rule: "no-unchecked-index-in-hot-loops",
                file: file.to_owned(),
                line: t.line,
                message: "unchecked `[]` indexing in a hot inner loop; bounds-panic here \
                          aborts the solve — use get()/iterators or waive after review"
                    .to_owned(),
            });
        }
    }
}

fn rule_no_float_eq(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if ctx.in_test[i] {
            continue;
        }
        let op = (toks[i].is_punct('=') || toks[i].is_punct('!')) && toks[i + 1].is_punct('=');
        if !op {
            continue;
        }
        // `a == b`: lhs ends at i-1, rhs starts at i+2. `<=`/`>=`/`+=` etc.
        // have a non-`=`/`!` operator char at i, so they never match here;
        // `===` cannot occur in valid Rust.
        let lhs_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        let rhs_float = toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Float);
        if lhs_float || rhs_float {
            out.push(Violation {
                rule: "no-float-eq",
                file: file.to_owned(),
                line: toks[i].line,
                message: "exact float comparison; compare via an epsilon helper instead".to_owned(),
            });
        }
    }
}

/// `Instant::now()` outside the telemetry crate: ad-hoc timing pairs drift
/// from the span tree (the exact bug the `SolveTimings` derivation fixed),
/// so wall-time must flow through `mc3_telemetry::timed_span`/`span`. The
/// telemetry crate itself is the one place allowed to read the clock, and
/// the bench harness carries reviewed waivers.
fn rule_no_bare_instant(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    if file.starts_with("crates/telemetry/") {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || !t.is_ident("Instant") {
            continue;
        }
        let call = toks.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
            && toks.get(i + 2).map(|n| n.is_punct(':')) == Some(true)
            && toks.get(i + 3).map(|n| n.is_ident("now")) == Some(true)
            && toks.get(i + 4).map(|n| n.is_punct('(')) == Some(true);
        if call {
            out.push(Violation {
                rule: "no-bare-instant",
                file: file.to_owned(),
                line: t.line,
                message: "direct Instant::now() in library code; route timing through \
                          mc3_telemetry spans (timed_span) so wall-times land in the trace"
                    .to_owned(),
            });
        }
    }
}

/// Crates whose job is writing to stdout/stderr (binaries and the lint
/// driver itself); the raw-print rule does not apply there.
const PRINT_EXEMPT_PREFIXES: [&str; 3] = ["crates/cli/", "crates/bench/", "crates/audit/"];

/// `print!`/`println!`/`eprint!`/`eprintln!` in library crates: ad-hoc
/// writes bypass the leveled, rate-limited `mc3-obs` event log (no
/// sequence numbers, no span context, no way to silence them in a serving
/// process). Binaries keep stdout for their actual output, so `cli`,
/// `bench` and `audit` — plus `src/bin/` targets and `main.rs` anywhere —
/// are exempt.
fn rule_no_raw_eprintln(file: &str, lexed: &Lexed, ctx: &Context, out: &mut Vec<Violation>) {
    if PRINT_EXEMPT_PREFIXES.iter().any(|p| file.starts_with(p))
        || file.contains("/bin/")
        || file.ends_with("main.rs")
    {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let is_print = matches!(t.text.as_str(), "print" | "println" | "eprint" | "eprintln");
        if is_print && toks.get(i + 1).map(|n| n.is_punct('!')) == Some(true) {
            out.push(Violation {
                rule: "no-raw-eprintln-in-lib",
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "{}! in library code; emit a leveled mc3_obs event (debug/info/warn/error) \
                     so diagnostics carry span context and respect rate limits",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(file: &str, src: &str) -> Vec<&'static str> {
        check_file(file, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }";
        let v = check_file("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn expect_panic_todo_flagged() {
        assert_eq!(
            rules_hit("a.rs", "fn f() { a.expect(\"m\"); panic!(\"x\"); todo!() }"),
            vec!["no-unwrap-in-lib"; 3]
        );
        // `unimplemented!` counts too; bare `expect` without a dot does not.
        assert_eq!(
            rules_hit("a.rs", "fn f() { unimplemented!() } fn expect() {}"),
            vec!["no-unwrap-in-lib"]
        );
    }

    #[test]
    fn default_hasher_flagged() {
        assert_eq!(
            rules_hit("a.rs", "use std::collections::HashMap;"),
            vec!["no-default-hasher"]
        );
        assert!(rules_hit("a.rs", "use mc3_core::FxHashMap;").is_empty());
    }

    #[test]
    fn hot_loop_indexing_only_in_hot_files_and_loops() {
        let src = "fn f(v: &[u32]) { let a = v[0]; for i in 0..9 { let b = v[i]; } }";
        // Only the in-loop site in a hot file fires.
        let v = check_file("crates/flow/src/dinic.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unchecked-index-in-hot-loops");
        // Same code in a cold file: nothing.
        assert!(check_file("crates/flow/src/graph.rs", src).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "impl Foo for Bar { fn f(&self, v: &[u32]) -> u32 { v[0] } }";
        assert!(check_file("crates/flow/src/dinic.rs", src).is_empty());
        let looped = "fn f(v: &[u32]) { while v[0] > 0 { g(v[1]); } }";
        assert_eq!(check_file("crates/flow/src/dinic.rs", looped).len(), 2);
    }

    #[test]
    fn float_eq_flagged() {
        assert_eq!(
            rules_hit("a.rs", "fn f(x: f64) -> bool { x == 0.5 }"),
            vec!["no-float-eq"]
        );
        assert_eq!(
            rules_hit("a.rs", "fn f(x: f64) -> bool { 1.0 != x }"),
            vec!["no-float-eq"]
        );
        assert!(rules_hit("a.rs", "fn f(x: f64) -> bool { x <= 0.5 }").is_empty());
        assert!(rules_hit("a.rs", "fn f(x: u64) -> bool { x == 5 }").is_empty());
    }

    #[test]
    fn waiver_suppresses_same_and_next_line() {
        let src = "// audit:allow(no-unwrap-in-lib) reviewed: init-time\nfn f() { x.unwrap(); }";
        assert!(check_file("a.rs", src).is_empty());
        let src = "fn f() { x.unwrap(); } // audit:allow(no-unwrap-in-lib)";
        assert!(check_file("a.rs", src).is_empty());
        // A waiver for a different rule does not help.
        let src = "// audit:allow(no-float-eq)\nfn f() { x.unwrap(); }";
        assert_eq!(check_file("a.rs", src).len(), 1);
    }

    #[test]
    fn bare_instant_flagged_outside_telemetry_and_tests() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            rules_hit("crates/solver/src/solver.rs", src),
            vec!["no-bare-instant"]
        );
        // Fully qualified paths hit too (the match anchors on `Instant`).
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(
            rules_hit("crates/flow/src/dinic.rs", src),
            vec!["no-bare-instant"]
        );
        // The telemetry crate is the one place allowed to read the clock.
        assert!(rules_hit("crates/telemetry/src/spans.rs", src).is_empty());
        // Tests and plain mentions of the type are fine.
        let src = "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }";
        assert!(rules_hit("crates/solver/src/solver.rs", src).is_empty());
        let src = "use std::time::Instant;\nfn f(t: Instant) {}";
        assert!(rules_hit("crates/solver/src/solver.rs", src).is_empty());
        // Waivers work as for every other rule.
        let src =
            "// audit:allow(no-bare-instant) harness clock\nfn f() { let t = Instant::now(); }";
        assert!(rules_hit("crates/bench/src/timing.rs", src).is_empty());
    }

    #[test]
    fn raw_prints_flagged_in_lib_code_only() {
        let src = "fn f() { eprintln!(\"bad\"); println!(\"also bad\"); }";
        assert_eq!(
            rules_hit("crates/solver/src/solver.rs", src),
            vec!["no-raw-eprintln-in-lib"; 2]
        );
        // Binary crates, bin targets and main.rs keep their stdout.
        assert!(rules_hit("crates/cli/src/commands.rs", src).is_empty());
        assert!(rules_hit("crates/bench/src/bin/experiments.rs", src).is_empty());
        assert!(rules_hit("crates/audit/src/main.rs", src).is_empty());
        assert!(rules_hit("crates/solver/src/main.rs", src).is_empty());
        // Tests may print freely.
        let test_src = "#[cfg(test)]\nmod tests { fn f() { eprintln!(\"dbg\"); } }";
        assert!(rules_hit("crates/solver/src/solver.rs", test_src).is_empty());
        // A function merely named print is not a macro invocation.
        assert!(rules_hit("crates/solver/src/x.rs", "fn f() { print(); }").is_empty());
        // Waivers work as for every other rule.
        let waived = "// audit:allow(no-raw-eprintln-in-lib) reviewed: sink fallback\n\
                      fn f() { eprintln!(\"x\"); }";
        assert!(rules_hit("crates/obs/src/events.rs", waived).is_empty());
    }

    #[test]
    fn strings_cannot_fake_violations() {
        let src = "fn f() { let s = \"x.unwrap() panic!\"; }";
        assert!(check_file("a.rs", src).is_empty());
    }

    #[test]
    fn cfg_any_test_gates_too() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn f() { x.unwrap(); } }";
        assert!(check_file("a.rs", src).is_empty());
    }
}
