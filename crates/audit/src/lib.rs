#![warn(missing_docs)]

//! `mc3-audit` — repo-specific static analysis for the MC³ workspace.
//!
//! The MC³ pipeline's correctness story rests on paper-level invariants
//! (cover feasibility, WVC/max-flow duality, the Theorem 5.3 greedy
//! guarantee). This crate supplies the *source-level* half of the
//! enforcement: a dependency-free lint driver built on a hand-rolled Rust
//! lexer ([`lexer`]), a rule set tuned to this repo ([`rules`]), and a
//! waiver/budget system ([`allowlist`]) so legacy debt is pinned in place
//! and can only shrink. On top of the lexer sits a lightweight syntactic
//! model ([`syntax`]: item tree, loop nests, closures, cast/discard
//! shapes) that the rules consume, and a cross-artifact [`consistency`]
//! pass that checks the telemetry registry, docs tables, fixtures and
//! budgets against each other. The runtime half (certificates, flow
//! conservation, ratio bounds) lives in `mc3-core::certificate` and the
//! solver crates' `verify` features.
//!
//! Run it as a workspace check:
//!
//! ```text
//! cargo run -p mc3-audit -- lint
//! cargo run -p mc3-audit -- consistency
//! ```

pub mod allowlist;
pub mod consistency;
pub mod lexer;
pub mod rules;
pub mod syntax;

use allowlist::{Allowlist, Finding};
use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Files inspected.
    pub files_checked: usize,
    /// Raw violations before budget application (post-waiver).
    pub violations: Vec<Violation>,
    /// Findings that fail the run after budgets.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Whether the run passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.findings {
            match f {
                Finding::Unbudgeted(v) => {
                    let _ = writeln!(
                        out,
                        "error[{}]: {}:{}: {}",
                        v.rule, v.file, v.line, v.message
                    );
                }
                Finding::OverBudget {
                    entry,
                    count,
                    sites,
                } => {
                    let _ = writeln!(
                        out,
                        "error[{}]: {} has {count} violations, budget is {} — \
                         the debt count must not grow",
                        entry.rule, entry.path, entry.budget
                    );
                    for v in sites {
                        let _ = writeln!(out, "  {}:{}: {}", v.file, v.line, v.message);
                    }
                }
            }
        }
        let _ = writeln!(
            out,
            "{} files checked, {} violations ({} budgeted/waived), {} failures",
            self.files_checked,
            self.violations.len(),
            self.violations.len()
                - self
                    .findings
                    .iter()
                    .map(|f| match f {
                        Finding::Unbudgeted(_) => 1,
                        Finding::OverBudget { count, .. } => *count,
                    })
                    .sum::<usize>(),
            self.findings.len()
        );
        out
    }
}

/// Collects the `.rs` files the lint covers: everything under each crate's
/// `src/`, skipping `tests/`, `benches/`, fixtures and build output.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | "tests" | "benches" | "fixtures" | ".git"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && path_within_src(&path) {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Whether `path` has a `src` component (lint scope is library/bin source).
fn path_within_src(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str().to_string_lossy() == "src")
}

/// Lints the workspace at `root` against `allowlist`.
pub fn lint(root: &Path, allowlist: &Allowlist) -> std::io::Result<LintReport> {
    let files = collect_files(root)?;
    let mut violations = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(rules::check_file(&rel, &source));
    }
    let findings = allowlist.apply(violations.clone());
    Ok(LintReport {
        files_checked: files.len(),
        violations,
        findings,
    })
}

/// Loads `lint.allow` from `root` (missing file ⇒ empty allowlist).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("lint.allow");
    match std::fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}
