//! Seeded violation: `no-unchecked-index-in-hot-loops`. The file is named
//! `dinic.rs` so the file-scoped hot-loop rule applies; the `v[i]` inside
//! the loop must be flagged, the `v[0]` outside must not.

pub fn sum(v: &[u64]) -> u64 {
    let head = v[0]; // outside a loop: not a violation
    let mut total = head;
    for i in 1..v.len() {
        total += v[i];
    }
    total
}
