//! Seeded violation: `no-alloc-in-hot-loops` (a `Vec::new` and two pushes
//! inside kernel loops — the fixture is linted under a hot-file path; the
//! loop-free builder, the waived push and test code must not be flagged).

pub fn flatten(rows: &[Vec<u32>]) -> Vec<u32> {
    let mut out = Vec::new();
    for row in rows {
        let mut scratch = Vec::new();
        for &x in row {
            scratch.push(x);
        }
        out.extend_from_slice(&scratch);
    }
    out
}

pub fn doubled(row: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(row.len());
    for &x in row {
        out.push(x);
    }
    out
}

pub fn doubled_reviewed(row: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(row.len());
    for &x in row {
        // audit:allow(no-alloc-in-hot-loops) reviewed: within-capacity push, reserved above
        out.push(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loops_in_tests_may_allocate() {
        let mut v = Vec::new();
        for i in 0..4u32 {
            v.push(i);
        }
        assert_eq!(flatten(&[v.clone()]), v);
    }
}
