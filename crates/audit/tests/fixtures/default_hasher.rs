//! Seeded violation: `no-default-hasher` (std `HashMap` and `HashSet`
//! in library code — two sites, plus the two in the `use`).

use std::collections::{HashMap, HashSet};

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn dedup(v: &[u32]) -> usize {
    v.iter().copied().collect::<HashSet<u32>>().len()
}
