//! Seeded violation: `no-unwrap-in-lib` (one `.unwrap()`, one `.expect()`,
//! one `panic!` — three sites).

pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    x.expect("seeded violation")
}

pub fn third() -> u32 {
    panic!("seeded violation")
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely: this one must NOT be flagged.
    #[test]
    fn fine_here() {
        Some(1u32).unwrap();
    }
}
