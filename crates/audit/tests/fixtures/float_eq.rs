//! Seeded violation: `no-float-eq` (`==` and `!=` against float literals;
//! the `<=` comparison must not be flagged).

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn is_not_half(x: f64) -> bool {
    0.5 != x
}

pub fn small(x: f64) -> bool {
    x <= 1e-9 // inequality: fine
}
