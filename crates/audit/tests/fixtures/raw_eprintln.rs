//! Seeded violation: `no-raw-eprintln-in-lib` (a stderr diagnostic and a
//! stdout print in library code; the waived fallback and the test-gated
//! print must not be flagged).

pub fn noisy_solve(cost: u64) -> u64 {
    eprintln!("solve finished with cost {cost}");
    if cost == 0 {
        println!("degenerate instance");
    }
    // audit:allow(no-raw-eprintln-in-lib) reviewed: fixture's sanctioned fallback
    eprintln!("waived fallback");
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_print() {
        println!("debugging output is fine here");
        assert_eq!(noisy_solve(3), 3);
    }
}
