//! Seeded violation: `no-relaxed-atomics` (an unwaived `Relaxed` load and
//! an unwaived `SeqCst` store; the waived store, the `Release` store and
//! the test-gated use must not be flagged).

use std::sync::atomic::{AtomicU64, Ordering};

pub static FLAG: AtomicU64 = AtomicU64::new(0);

pub fn peek() -> u64 {
    FLAG.load(Ordering::Relaxed)
}

pub fn publish(v: u64) {
    FLAG.store(v, Ordering::SeqCst);
}

pub fn publish_reviewed(v: u64) {
    // audit:allow(no-relaxed-atomics) reviewed: lone flag, no data published through it
    FLAG.store(v, Ordering::SeqCst);
}

pub fn publish_protocol(v: u64) {
    FLAG.store(v, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_is_fine_in_tests() {
        FLAG.store(1, Ordering::Relaxed);
        assert_eq!(peek(), 1);
    }
}
