//! Seeded violation: `no-silent-truncation` (narrowing `as u32`/`as u8`
//! casts of runtime values; widening casts, literal operands, bool-shaped
//! operands, the waived cast and test code must not be flagged).

pub fn ids(xs: &[u64]) -> Vec<u32> {
    xs.iter().map(|&x| x as u32).collect()
}

pub fn level(x: usize) -> u8 {
    x as u8
}

pub fn fine(x: u32) -> u64 {
    let widened = x as u64;
    let lit = 7u64 as u32;
    let shaped = (x > 3) as u32;
    let flag = true as u32;
    widened + u64::from(lit + shaped + flag)
}

pub fn reviewed(x: u64) -> u32 {
    // audit:allow(no-silent-truncation) x is a property index < 32 by construction
    x as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_in_tests_are_fine() {
        let x = 300usize as u8;
        assert_eq!(x, 44);
        assert_eq!(level(2), 2);
    }
}
