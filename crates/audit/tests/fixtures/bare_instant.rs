//! Seeded violation: `no-bare-instant` (two direct `Instant::now()` calls
//! in library code; the `use` alone and the test-gated call must not be
//! flagged).

use std::time::Instant;

pub fn timed_work() -> u64 {
    let start = Instant::now();
    let mid = std::time::Instant::now();
    (mid - start).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_here_is_fine() {
        let t = Instant::now();
        assert!(timed_work() < t.elapsed().as_nanos() as u64 + 1_000_000_000);
    }
}
