//! Seeded violation: `no-swallowed-result` (a `let _ =` discarding a
//! fallible call in library code; the `write!` idiom, the typed binding,
//! the waived discard and test code must not be flagged).

use std::fmt::Write as _;

pub fn lossy(s: &mut String) {
    let _ = render(s);
}

pub fn idiomatic(out: &mut String) {
    let _ = write!(out, "ok");
}

pub fn typed(x: u64) -> u64 {
    let _kept: u64 = x;
    _kept
}

pub fn reviewed(s: &mut String) {
    // audit:allow(no-swallowed-result) reviewed: best-effort render, caller sees the partial buffer
    let _ = render(s);
}

fn render(s: &mut String) -> Result<(), std::fmt::Error> {
    write!(s, "x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discards_in_tests_are_fine() {
        let mut s = String::new();
        let _ = render(&mut s);
        assert_eq!(s, "x");
    }
}
