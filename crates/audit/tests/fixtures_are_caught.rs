//! Negative-fixture tests: every seeded violation under `tests/fixtures/`
//! must be caught, and a lint run over a workspace containing them must
//! exit non-zero. The fixtures live in a `fixtures/` directory precisely
//! so the real workspace lint skips them (see `collect_files`).

use mc3_audit::rules::{check_file, RULE_INFOS};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {name}: {e}"));
    (name.to_owned(), source)
}

fn rules_hit(name: &str) -> Vec<&'static str> {
    let (file, source) = fixture(name);
    let mut rules: Vec<&'static str> = check_file(&file, &source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn unwrap_fixture_is_caught() {
    let (file, source) = fixture("unwrap_in_lib.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        3,
        "unwrap, expect and panic!: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == "no-unwrap-in-lib"));
    // the unwrap inside #[cfg(test)] must not be among them
    assert!(violations.iter().all(|v| v.line < 16), "{violations:?}");
}

#[test]
fn default_hasher_fixture_is_caught() {
    assert_eq!(rules_hit("default_hasher.rs"), vec!["no-default-hasher"]);
}

#[test]
fn hot_loop_index_fixture_is_caught() {
    let (file, source) = fixture("dinic.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        1,
        "only the in-loop index is a violation: {violations:?}"
    );
    assert_eq!(violations[0].rule, "no-unchecked-index-in-hot-loops");
}

#[test]
fn hot_loop_rule_is_file_scoped() {
    // The same source under a non-hot file name is clean.
    let (_, source) = fixture("dinic.rs");
    assert!(check_file("cold.rs", &source).is_empty());
}

#[test]
fn float_eq_fixture_is_caught() {
    let (file, source) = fixture("float_eq.rs");
    let violations = check_file(&file, &source);
    assert_eq!(violations.len(), 2, "== and != only: {violations:?}");
    assert!(violations.iter().all(|v| v.rule == "no-float-eq"));
}

#[test]
fn bare_instant_fixture_is_caught() {
    let (file, source) = fixture("bare_instant.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        2,
        "both library Instant::now() calls, nothing in tests: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == "no-bare-instant"));
}

#[test]
fn raw_eprintln_fixture_is_caught() {
    let (file, source) = fixture("raw_eprintln.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        2,
        "eprintln! and println! outside tests, minus the waiver: {violations:?}"
    );
    assert!(violations
        .iter()
        .all(|v| v.rule == "no-raw-eprintln-in-lib"));
}

#[test]
fn raw_eprintln_rule_exempts_binary_crates() {
    // The same source under a binary-crate path is clean.
    let (_, source) = fixture("raw_eprintln.rs");
    assert!(check_file("crates/cli/src/commands.rs", &source).is_empty());
    assert!(check_file("crates/bench/src/bin/experiments.rs", &source).is_empty());
}

#[test]
fn a_waiver_suppresses_a_fixture_violation() {
    let src = "// audit:allow(no-float-eq) reviewed: sentinel compare\n\
               pub fn f(x: f64) -> bool { x == 0.0 }\n";
    assert!(check_file("w.rs", src).is_empty());
}

#[test]
fn relaxed_atomic_fixture_is_caught() {
    let (file, source) = fixture("relaxed_atomic.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        2,
        "the Relaxed load and the SeqCst store; not the waived store, \
         the Release store or the test: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == "no-relaxed-atomics"));
}

#[test]
fn relaxed_atomic_rule_exempts_telemetry() {
    // The counters crate is the one place Relaxed is the documented default.
    let (_, source) = fixture("relaxed_atomic.rs");
    assert!(check_file("crates/telemetry/src/counters.rs", &source).is_empty());
}

#[test]
fn hot_alloc_fixture_is_caught_under_a_kernel_path() {
    let (_, source) = fixture("hot_alloc.rs");
    let violations = check_file("crates/setcover/src/bitcover.rs", &source);
    assert_eq!(
        violations.len(),
        3,
        "the in-loop Vec::new and the two unwaived pushes: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == "no-alloc-in-hot-loops"));
}

#[test]
fn hot_alloc_rule_is_file_scoped() {
    // The same source outside the kernel file list is clean.
    let (_, source) = fixture("hot_alloc.rs");
    assert!(check_file("hot_alloc.rs", &source).is_empty());
    assert!(check_file("crates/core/src/json.rs", &source).is_empty());
}

#[test]
fn truncating_cast_fixture_is_caught() {
    let (file, source) = fixture("truncating_cast.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        2,
        "the two narrowing runtime casts; not the widening, literal, \
         bool-shaped, waived or test casts: {violations:?}"
    );
    assert!(violations.iter().all(|v| v.rule == "no-silent-truncation"));
}

#[test]
fn swallowed_result_fixture_is_caught() {
    let (file, source) = fixture("swallowed_result.rs");
    let violations = check_file(&file, &source);
    assert_eq!(
        violations.len(),
        1,
        "only the bare discard; not the write! idiom, the named binding, \
         the waiver or the test: {violations:?}"
    );
    assert_eq!(violations[0].rule, "no-swallowed-result");
}

#[test]
fn swallowed_result_rule_exempts_binaries() {
    let (_, source) = fixture("swallowed_result.rs");
    assert!(check_file("crates/cli/src/main.rs", &source).is_empty());
    assert!(check_file("crates/bench/src/bin/experiments.rs", &source).is_empty());
}

/// Every rule's declared fixture trips exactly that rule when linted
/// under its declared path — the same pairing the consistency pass
/// enforces (`rule-fixture`).
#[test]
fn every_rule_fixture_is_caught_by_its_rule() {
    for info in &RULE_INFOS {
        let (_, source) = fixture(info.fixture);
        let rules: Vec<&'static str> = check_file(info.lint_as, &source)
            .into_iter()
            .map(|v| v.rule)
            .collect();
        assert!(
            rules.contains(&info.name),
            "{} fixture {} (linted as {}) did not trip its rule: {rules:?}",
            info.name,
            info.fixture,
            info.lint_as
        );
    }
}

/// Builds a throwaway workspace whose only crate contains every fixture,
/// runs the real `mc3-audit` binary on it, and checks the exit code and
/// report text.
#[test]
fn lint_run_over_fixtures_exits_nonzero() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixture-workspace");
    let src_dir = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture workspace");
    for info in &RULE_INFOS {
        let (_, source) = fixture(info.fixture);
        // Write each fixture under the path its rule watches (`lint_as`),
        // e.g. hot_alloc.rs lands as a setcover kernel file.
        let dest = root.join("crates/seeded/src").join(
            Path::new(info.lint_as)
                .file_name()
                .expect("lint_as has a file name"),
        );
        std::fs::write(dest, source).expect("copy fixture");
    }

    let output = Command::new(env!("CARGO_BIN_EXE_mc3-audit"))
        .args(["lint", root.to_str().expect("utf-8 tmpdir")])
        .output()
        .expect("run mc3-audit");
    let stdout = String::from_utf8_lossy(&output.stdout);

    assert_eq!(
        output.status.code(),
        Some(1),
        "seeded violations must fail the run; stdout:\n{stdout}"
    );
    for rule in mc3_audit::rules::ALL_RULES {
        assert!(
            stdout.contains(&format!("error[{rule}]")),
            "rule {rule} missing from the report:\n{stdout}"
        );
    }
}

/// The same run with a generous allowlist passes — budgets gate the exit
/// code exactly as documented.
#[test]
fn budgets_turn_the_same_run_clean() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("budgeted-workspace");
    let src_dir = root.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).expect("create fixture workspace");
    for name in ["unwrap_in_lib.rs", "float_eq.rs"] {
        let (_, source) = fixture(name);
        std::fs::write(src_dir.join(name), source).expect("copy fixture");
    }
    std::fs::write(
        root.join("lint.allow"),
        "no-unwrap-in-lib crates/seeded/src/unwrap_in_lib.rs 3\n\
         no-float-eq     crates/seeded/src/float_eq.rs      2\n",
    )
    .expect("write allowlist");

    let output = Command::new(env!("CARGO_BIN_EXE_mc3-audit"))
        .args(["lint", root.to_str().expect("utf-8 tmpdir")])
        .output()
        .expect("run mc3-audit");
    assert_eq!(
        output.status.code(),
        Some(0),
        "budgeted debt must pass; stdout:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
