//! Parser round-trip properties over the real workspace: every `.rs` file
//! the lint covers must parse into a [`SyntaxFile`] whose item tree nests
//! properly and whose loop depths agree with an independent re-derivation
//! from the raw lexer stream. The corpus is the codebase itself, so every
//! new source construct added to the workspace exercises the parser.

use mc3_audit::lexer::{lex, Token};
use mc3_audit::syntax::SyntaxFile;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit sits two levels below the root")
        .to_path_buf()
}

/// Independent loop-depth derivation straight from the lexer stream:
/// bracket-skip attributes the way the parser does, track a stack of
/// "was this brace a loop body" flags, and count a pending loop header as
/// already inside the loop. Deliberately re-implemented (not shared with
/// `syntax.rs`) so the two can disagree.
fn derive_loop_depths(tokens: &[Token]) -> Vec<u32> {
    let mut depths = Vec::with_capacity(tokens.len());
    let mut stack: Vec<bool> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let depth = stack.iter().filter(|&&l| l).count() + usize::from(pending);
        depths.push(u32::try_from(depth).unwrap_or(u32::MAX));

        let t = &tokens[i];
        // `#[ … ]` groups are opaque to brace tracking.
        if t.is_punct('#') && tokens.get(i + 1).map(|n| n.is_punct('[')) == Some(true) {
            let mut bracket = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    bracket += 1;
                } else if tokens[j].is_punct(']') {
                    bracket -= 1;
                    if bracket == 0 {
                        break;
                    }
                }
                j += 1;
            }
            for _ in i + 1..=j.min(tokens.len().saturating_sub(1)) {
                depths.push(u32::try_from(depth).unwrap_or(u32::MAX));
            }
            i = j + 1;
            continue;
        }

        if t.is_ident("loop") || t.is_ident("while") {
            pending = true;
        } else if t.is_ident("for") {
            // a loop iff `in` shows up before the body opens (excludes
            // `impl Trait for Type` and `for<'a>` binders)
            for n in tokens.iter().skip(i + 1).take(64) {
                if n.is_ident("in") {
                    pending = true;
                    break;
                }
                if n.is_punct('{') || n.is_punct(';') {
                    break;
                }
            }
        } else if t.is_punct('{') {
            stack.push(pending);
            pending = false;
        } else if t.is_punct('}') {
            stack.pop();
        }
        i += 1;
    }
    depths
}

fn corpus() -> Vec<PathBuf> {
    let files = mc3_audit::collect_files(&workspace_root()).expect("walk workspace");
    assert!(
        files.len() > 50,
        "corpus suspiciously small ({} files) — wrong root?",
        files.len()
    );
    files
}

#[test]
fn loop_depth_matches_independent_lexer_tracking() {
    for path in corpus() {
        let source = std::fs::read_to_string(&path).expect("read source");
        let sf = SyntaxFile::parse(&source);
        let lexed = lex(&source);
        assert_eq!(
            sf.tokens.len(),
            lexed.tokens.len(),
            "{}: parser must not drop tokens",
            path.display()
        );
        let expected = derive_loop_depths(&lexed.tokens);
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(
                sf.loop_depth(i),
                want,
                "{}: loop depth diverges at token {i} ({:?}, line {})",
                path.display(),
                sf.tokens[i].text,
                sf.tokens[i].line
            );
        }
    }
}

#[test]
fn item_spans_nest_and_brace_tokens_match() {
    for path in corpus() {
        let source = std::fs::read_to_string(&path).expect("read source");
        let sf = SyntaxFile::parse(&source);
        for (idx, item) in sf.items.iter().enumerate() {
            if let Some((open, close)) = item.body {
                assert!(
                    sf.tokens[open].is_punct('{'),
                    "{}: item {} body open is not a brace",
                    path.display(),
                    item.name
                );
                assert!(
                    close > open && close < sf.tokens.len(),
                    "{}: item {} body span is inverted or dangling",
                    path.display(),
                    item.name
                );
                assert!(
                    sf.tokens[close].is_punct('}'),
                    "{}: item {} body close is not a brace",
                    path.display(),
                    item.name
                );
            }
            if let Some(p) = item.parent {
                let parent = &sf.items[p];
                assert!(
                    parent.children.contains(&idx),
                    "{}: parent {} does not list child {}",
                    path.display(),
                    parent.name,
                    item.name
                );
                let (popen, pclose) = parent.body.unwrap_or_else(|| {
                    panic!("{}: parent {} has no body", path.display(), parent.name)
                });
                assert!(
                    popen < item.keyword_token,
                    "{}: child {} starts before parent {} opens",
                    path.display(),
                    item.name,
                    parent.name
                );
                if let Some((copen, cclose)) = item.body {
                    assert!(
                        popen < copen && cclose < pclose,
                        "{}: child {} body is not enclosed by parent {}",
                        path.display(),
                        item.name,
                        parent.name
                    );
                }
            }
            for &c in &item.children {
                assert_eq!(
                    sf.items[c].parent,
                    Some(idx),
                    "{}: child link of {} is not symmetric",
                    path.display(),
                    item.name
                );
            }
        }
    }
}

#[test]
fn every_token_maps_into_the_item_that_spans_it() {
    for path in corpus() {
        let source = std::fs::read_to_string(&path).expect("read source");
        let sf = SyntaxFile::parse(&source);
        for (idx, item) in sf.items.iter().enumerate() {
            let Some((open, close)) = item.body else {
                continue;
            };
            // Tokens strictly inside the body map to this item or a nested one.
            for i in open + 1..close {
                let Some(owner) = sf.item_of(i) else {
                    panic!(
                        "{}: token {i} inside {} has no item",
                        path.display(),
                        item.name
                    );
                };
                let mut cur = Some(owner);
                let found = loop {
                    match cur {
                        Some(x) if x == idx => break true,
                        Some(x) => cur = sf.items[x].parent,
                        None => break false,
                    }
                };
                assert!(
                    found,
                    "{}: token {i} ({:?}) maps to {} which is not nested in {}",
                    path.display(),
                    sf.tokens[i].text,
                    sf.items[owner].name,
                    item.name
                );
            }
        }
    }
}
