//! `mc3-memprof` — the span-attributed allocation profiler.
//!
//! A `#[global_allocator]` wrapper over [`std::alloc::System`] that, while
//! a [`Session`](crate::Session) is recording, attributes every heap
//! allocation and free to the innermost open span. PR 4 earned its
//! speedups by deleting allocations from the WSC refinement kernels; this
//! module is the runtime instrument that keeps them deleted — the
//! bench-gate pins *exact* per-span allocation counts (deterministic for
//! pinned seeds, unlike wall time), and `mc3-audit consistency` replays
//! the pinned workload to prove every `no-alloc-in-hot-loops` waiver
//! site's enclosing span still records zero steady-state allocations.
//!
//! Design rules, in order of importance:
//!
//! 1. **The disabled path is one relaxed load.** The hook checks
//!    [`is_enabled`](crate::is_enabled) and delegates straight to the
//!    system allocator when off — same gate, same cost, as every other
//!    telemetry primitive.
//! 2. **The hook never allocates and never touches the span stack.** It
//!    updates a const-initialized `Cell`-only thread-local (no drop glue,
//!    no lazy init) and a pair of global atomics. Span attribution is
//!    done *by the span machinery* instead: opening a span snapshots the
//!    thread's monotonic totals ([`span_open`]), closing it takes the
//!    delta ([`span_close`]). Deltas are inclusive of children, exactly
//!    like `wall_ns`.
//! 3. **Per-span peaks nest.** Each open span tracks the high-water mark
//!    of the thread's net live bytes since it opened; closing restores
//!    the parent's running peak with `max`, so a child's transient spike
//!    surfaces in every enclosing span.
//!
//! Global counters ([`Counter::MemAllocs`] &c.) and the log2 allocation
//! size histogram ([`Hist::AllocSize`]) are fed from the same hook, so
//! the Prometheus exposition and the report's counter table get the
//! memory axis without any extra plumbing.

use crate::counters::{self, Counter, Hist};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// The tracking wrapper installed as the process-wide global allocator.
///
/// Linking `mc3-telemetry` installs it in every workspace binary; with no
/// session recording it is the system allocator plus one relaxed load.
struct TrackingAlloc;

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

/// Net live bytes allocated since the session began (signed: frees of
/// blocks allocated before the gate opened drive it negative).
static G_LIVE: AtomicI64 = AtomicI64::new(0);
/// Session-wide high-water mark of `max(0, G_LIVE)`.
static G_PEAK: AtomicU64 = AtomicU64::new(0);

/// Per-thread monotonic allocation totals plus the net-live tracking the
/// span machinery snapshots. `Cell`-only and const-initialized so the
/// allocator hook can touch it with no drop glue and no lazy allocation.
struct MemCell {
    allocs: Cell<u64>,
    alloc_bytes: Cell<u64>,
    frees: Cell<u64>,
    free_bytes: Cell<u64>,
    /// Net live bytes on this thread since tracking began (signed).
    net: Cell<i64>,
    /// High-water mark of `net` since the innermost open span began.
    net_peak: Cell<i64>,
}

thread_local! {
    static MEM: MemCell = const {
        MemCell {
            allocs: Cell::new(0),
            alloc_bytes: Cell::new(0),
            frees: Cell::new(0),
            free_bytes: Cell::new(0),
            net: Cell::new(0),
            net_peak: Cell::new(i64::MIN),
        }
    };
}

/// Records one allocation of `size` bytes (gate already checked).
fn note_alloc(size: usize) {
    let bytes = size as u64;
    let signed = mc3_core::i64_of(bytes);
    counters::raw_add(Counter::MemAllocs, 1);
    counters::raw_add(Counter::MemAllocBytes, bytes);
    counters::raw_record(Hist::AllocSize, bytes);
    let live = G_LIVE
        .fetch_add(signed, Ordering::Relaxed)
        .wrapping_add(signed);
    if live > 0 {
        G_PEAK.fetch_max(live as u64, Ordering::Relaxed);
    }
    MEM.with(|m| {
        m.allocs.set(m.allocs.get().wrapping_add(1));
        m.alloc_bytes.set(m.alloc_bytes.get().wrapping_add(bytes));
        let net = m.net.get().wrapping_add(signed);
        m.net.set(net);
        if net > m.net_peak.get() {
            m.net_peak.set(net);
        }
    });
}

/// Records one free of `size` bytes (gate already checked).
fn note_free(size: usize) {
    let bytes = size as u64;
    let signed = mc3_core::i64_of(bytes);
    counters::raw_add(Counter::MemFrees, 1);
    counters::raw_add(Counter::MemFreeBytes, bytes);
    G_LIVE.fetch_sub(signed, Ordering::Relaxed);
    MEM.with(|m| {
        m.frees.set(m.frees.get().wrapping_add(1));
        m.free_bytes.set(m.free_bytes.get().wrapping_add(bytes));
        m.net.set(m.net.get().wrapping_sub(signed));
    });
}

// SAFETY: every method delegates verbatim to `System` and only touches
// plain atomics and a `Cell`-only thread-local afterwards — the hook
// itself never allocates, so it cannot re-enter.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && crate::is_enabled() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && crate::is_enabled() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if crate::is_enabled() {
            note_free(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && crate::is_enabled() {
            // A grow/shrink counts as free(old) + alloc(new), so
            // `alloc_bytes − free_bytes` stays an exact net-live figure.
            note_free(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// Snapshot of one thread's monotonic totals at span open.
#[derive(Debug, Clone, Copy, Default)]
struct MemSnapshot {
    allocs: u64,
    alloc_bytes: u64,
    frees: u64,
    free_bytes: u64,
}

/// Everything a span needs to compute its memory delta at close.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanMemState {
    snap: MemSnapshot,
    net_at_open: i64,
    prev_net_peak: i64,
}

/// Per-instance memory tally of one closed raw span (inclusive of
/// children, like `wall_ns`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RawSpanMem {
    pub(crate) allocs: u64,
    pub(crate) alloc_bytes: u64,
    pub(crate) frees: u64,
    pub(crate) free_bytes: u64,
    pub(crate) peak_live_bytes: u64,
}

/// Snapshots this thread's totals for a span that just opened and starts
/// a fresh net-live high-water mark for it.
pub(crate) fn span_open() -> SpanMemState {
    MEM.with(|m| {
        let net = m.net.get();
        let state = SpanMemState {
            snap: MemSnapshot {
                allocs: m.allocs.get(),
                alloc_bytes: m.alloc_bytes.get(),
                frees: m.frees.get(),
                free_bytes: m.free_bytes.get(),
            },
            net_at_open: net,
            prev_net_peak: m.net_peak.get(),
        };
        m.net_peak.set(net);
        state
    })
}

/// Computes the memory delta for a closing span and restores the parent's
/// running net-live peak (with `max`, so child spikes surface upward).
pub(crate) fn span_close(state: &SpanMemState) -> RawSpanMem {
    MEM.with(|m| {
        let net_peak_now = m.net_peak.get();
        m.net_peak.set(state.prev_net_peak.max(net_peak_now));
        let peak = net_peak_now.saturating_sub(state.net_at_open);
        RawSpanMem {
            allocs: m.allocs.get().wrapping_sub(state.snap.allocs),
            alloc_bytes: m.alloc_bytes.get().wrapping_sub(state.snap.alloc_bytes),
            frees: m.frees.get().wrapping_sub(state.snap.frees),
            free_bytes: m.free_bytes.get().wrapping_sub(state.snap.free_bytes),
            peak_live_bytes: if peak > 0 { peak as u64 } else { 0 },
        }
    })
}

/// Zeroes the session-wide live/peak tracking (session start). Per-thread
/// totals are monotonic and need no reset: spans only ever take deltas.
pub(crate) fn reset() {
    G_LIVE.store(0, Ordering::Relaxed);
    G_PEAK.store(0, Ordering::Relaxed);
}

/// Session-wide peak of net live bytes allocated since [`reset`].
pub(crate) fn global_peak() -> u64 {
    G_PEAK.load(Ordering::Relaxed)
}

/// Peak resident set size of this process in bytes, read from the
/// `VmHWM` line of `/proc/self/status` (zero-dep). Returns `None` on
/// platforms or sandboxes where the file is unavailable or the line is
/// missing/unparseable — "not measured" is distinct from "zero bytes",
/// and every consumer (report JSON, Prometheus gauge, `mc3 profile`)
/// renders the two differently.
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss_bytes_from("/proc/self/status")
}

/// [`peak_rss_bytes`] with the status file path injected, so the
/// missing-file and malformed-content paths are testable on any host.
fn peak_rss_bytes_from(path: &str) -> Option<u64> {
    let status = std::fs::read_to_string(path).ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()?;
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        // A test process has certainly touched > 0 pages; if /proc is
        // available at all, VmHWM must parse to something positive.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes().is_some_and(|b| b > 0));
        }
    }

    #[test]
    fn peak_rss_is_none_when_the_status_file_is_missing() {
        // The non-Linux / sandboxed path: no readable status file means
        // "not measured", never a silent zero.
        assert_eq!(
            peak_rss_bytes_from("/definitely/not/a/real/status/file"),
            None
        );
    }

    #[test]
    fn peak_rss_is_none_when_the_vmhwm_line_is_absent_or_malformed() {
        let dir = std::env::temp_dir();
        let no_line = dir.join("mc3_memprof_no_vmhwm.txt");
        std::fs::write(&no_line, "Name:\tmc3\nVmPeak:\t  123 kB\n").expect("write fixture");
        assert_eq!(peak_rss_bytes_from(&no_line.to_string_lossy()), None);
        let bad_line = dir.join("mc3_memprof_bad_vmhwm.txt");
        std::fs::write(&bad_line, "VmHWM:\tnot-a-number kB\n").expect("write fixture");
        assert_eq!(peak_rss_bytes_from(&bad_line.to_string_lossy()), None);
        let good_line = dir.join("mc3_memprof_good_vmhwm.txt");
        std::fs::write(&good_line, "VmHWM:\t     2048 kB\n").expect("write fixture");
        assert_eq!(
            peak_rss_bytes_from(&good_line.to_string_lossy()),
            Some(2048 * 1024)
        );
    }

    #[test]
    fn span_state_round_trip_is_zero_without_allocations() {
        let state = span_open();
        let mem = span_close(&state);
        assert_eq!(mem, RawSpanMem::default());
    }
}
