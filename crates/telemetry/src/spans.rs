//! The hierarchical span collector.
//!
//! Each thread keeps a stack of open spans in a thread-local; closing a
//! span folds it into its parent's child list, and closing a span with no
//! parent (a per-thread root — the top-level solve, or a solver phase
//! running on a worker thread) moves the finished subtree into a global
//! list that [`Session::finish`](crate::Session::finish) drains. In a
//! parallel solve the per-component phase spans therefore surface as
//! separate top-level roots rather than children of `solve_core`; the
//! aggregation in [`report`](crate::report) merges same-name roots, so
//! the totals are identical either way.
//!
//! When no session is recording, [`span`] returns an inactive guard
//! without touching the thread-local at all — the disabled path is one
//! relaxed atomic load.

use crate::counters::Counter;
use crate::memprof::{self, RawSpanMem, SpanMemState};
use std::cell::RefCell;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A closed span subtree as recorded on one thread, before aggregation.
#[derive(Debug, Clone)]
pub(crate) struct RawSpan {
    pub(crate) name: &'static str,
    pub(crate) wall_ns: u64,
    pub(crate) counters: Vec<(&'static str, u64)>,
    pub(crate) children: Vec<RawSpan>,
    pub(crate) mem: RawSpanMem,
}

/// Upper bound on distinct counters any single span attributes (the
/// busiest spans today attach ≤ 4). Pre-reserving this many slots when a
/// span opens keeps [`span_add`]'s find-or-push allocation-free, which is
/// what lets the zero-steady-state kernel spans record exactly 0 allocs.
const SPAN_COUNTER_CAPACITY: usize = 8;

struct OpenSpan {
    name: &'static str,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
    children: Vec<RawSpan>,
    mem_state: SpanMemState,
}

thread_local! {
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
    /// When armed (a [`ScopedSession`](crate::ScopedSession) is active on
    /// this thread), roots closed here divert into this buffer instead of
    /// the global [`FINISHED`] list, so a server worker can hand each
    /// request's span trees to the aggregator without draining — or
    /// polluting — the process-wide session.
    static CAPTURE: RefCell<Option<Vec<RawSpan>>> = const { RefCell::new(None) };
}

/// Roots closed while the session gate was on, from all threads.
static FINISHED: Mutex<Vec<RawSpan>> = Mutex::new(Vec::new());

/// Arms per-thread root capture (scoped-session start). Any previously
/// captured-but-untaken roots on this thread are discarded.
pub(crate) fn begin_capture() {
    CAPTURE.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Disarms capture and returns the roots diverted since
/// [`begin_capture`]. Roots closed on this thread afterwards go back to
/// the global finished list.
pub(crate) fn take_captured() -> Vec<RawSpan> {
    CAPTURE.with(|c| c.borrow_mut().take()).unwrap_or_default()
}

/// Files a closed per-thread root: into this thread's capture buffer when
/// a scoped session armed one, else into the global finished list.
fn file_root(node: RawSpan) {
    let not_captured = CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                buf.push(node);
                None
            }
            None => Some(node),
        }
    });
    if let Some(node) = not_captured {
        let mut finished = FINISHED.lock().unwrap_or_else(|p| p.into_inner());
        finished.push(node);
    }
}

pub(crate) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn close_current(wall_override: Option<Duration>) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let Some(open) = stack.pop() else { return };
        let wall = wall_override.unwrap_or_else(|| open.start.elapsed());
        // Take the memory delta *before* building and filing the node so
        // the node push itself is attributed to the parent, not the span
        // that just closed.
        let mem = memprof::span_close(&open.mem_state);
        let node = RawSpan {
            name: open.name,
            wall_ns: duration_ns(wall),
            counters: open.counters,
            children: open.children,
            mem,
        };
        match stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => file_root(node),
        }
    });
}

/// Guard for an open span; the span closes when the guard drops.
#[must_use = "the span closes when this guard drops — bind it to a local"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Closes the span early with an explicitly measured wall time instead
    /// of the guard's own clock (the [`TimedSpan`] bridge uses this so the
    /// tree and the returned `Duration` come from one measurement).
    pub(crate) fn close_with(mut self, wall: Duration) {
        if self.active {
            self.active = false;
            close_current(Some(wall));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            close_current(None);
        }
    }
}

/// Opens a span named `name` on this thread. A no-op returning an
/// inactive guard when no session is recording.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { active: false };
    }
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Push first (the push and the counter-slot reservation may
        // allocate and belong to the *parent*), then snapshot the memory
        // totals so this span's own tally starts clean.
        stack.push(OpenSpan {
            name,
            start: Instant::now(),
            counters: Vec::with_capacity(SPAN_COUNTER_CAPACITY),
            children: Vec::new(),
            mem_state: SpanMemState::default(),
        });
        if let Some(top) = stack.last_mut() {
            top.mem_state = memprof::span_open();
        }
    });
    SpanGuard { active: true }
}

/// Adds `n` to a global counter *and* attributes it to the innermost open
/// span on this thread (if any), so the rendered tree can show where the
/// work happened. Gated like [`count`](crate::count).
pub fn span_add(c: Counter, n: u64) {
    if !crate::is_enabled() {
        return;
    }
    crate::counters::raw_add(c, n);
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(top) = stack.last_mut() {
            match top.counters.iter_mut().find(|(k, _)| *k == c.name()) {
                Some((_, v)) => *v = v.saturating_add(n),
                None => top.counters.push((c.name(), n)),
            }
        }
    });
}

/// A span that always measures wall time, even when telemetry is off.
///
/// This is the bridge between the span tree and public timing fields like
/// `SolveTimings`: [`TimedSpan::finish`] takes **one** `Instant::elapsed`
/// measurement, stores it in the span node (when recording) and returns it
/// to the caller, so the tree and the derived timings agree exactly.
pub struct TimedSpan {
    start: Instant,
    guard: Option<SpanGuard>,
}

/// Opens a [`TimedSpan`] named `name`.
pub fn timed_span(name: &'static str) -> TimedSpan {
    TimedSpan {
        start: Instant::now(),
        guard: Some(span(name)),
    }
}

impl TimedSpan {
    /// Closes the span and returns its wall time. The span-tree node (if a
    /// session is recording) stores exactly the returned duration.
    pub fn finish(mut self) -> Duration {
        let wall = self.start.elapsed();
        if let Some(guard) = self.guard.take() {
            guard.close_with(wall);
        }
        wall
    }
}

/// Number of spans currently open on this thread. Exposed for tests that
/// assert the disabled path records nothing.
pub fn open_span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// The `/`-joined names of this thread's open spans, outermost first
/// (`"solve/solve_core/k2.solve"`), or `None` when no span is open.
/// Structured events attach this as their span context, so a log line can
/// be matched against the trace without any id plumbing.
pub fn current_span_path() -> Option<String> {
    STACK.with(|s| {
        let stack = s.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.iter().map(|o| o.name).collect::<Vec<_>>().join("/"))
        }
    })
}

/// Pre-grows this thread's span stack to at least `cap` slots (session
/// start), so opening spans never reallocates the stack mid-measurement
/// and pollutes a parent span's allocation tally.
pub(crate) fn reserve_stack(cap: usize) {
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let have = stack.capacity();
        if have < cap {
            stack.reserve(cap - have);
        }
    });
}

/// Drains every finished root recorded so far (all threads).
pub(crate) fn take_finished() -> Vec<RawSpan> {
    let mut finished = FINISHED.lock().unwrap_or_else(|p| p.into_inner());
    std::mem::take(&mut *finished)
}
