#![warn(missing_docs)]

//! `mc3-telemetry` — zero-dependency observability for the MC³ solver.
//!
//! The paper's experiments (§6) are all about *where* solver work goes:
//! preprocessing shrinkage per Observation 3.1–3.4, flow effort inside
//! the k ≤ 2 path (Theorem 4.1), greedy iterations against the
//! Theorem 5.3 bound. This crate records exactly that, with three
//! primitives and one hard rule:
//!
//! * **Spans** ([`span`], [`timed_span`]) — hierarchical wall-time
//!   regions kept on a thread-local stack; worker-thread spans surface as
//!   their own roots and are merged by name at report time.
//! * **Counters** ([`Counter`], [`count`], [`span_add`]) — a closed
//!   registry of monotonic `AtomicU64`s, so parallel and sequential
//!   solves of one instance report identical totals.
//! * **Histograms** ([`Hist`], [`record`]) — log2-bucketed distributions
//!   (component sizes, greedy pick coverage).
//! * **Memory** (`mc3-memprof`, the `memprof` module) — a tracking
//!   `#[global_allocator]` that attributes allocation counts, bytes and
//!   live-byte peaks to the current span, exactly-deterministically for
//!   pinned workloads (the bench-gate pins per-span allocation counts).
//!
//! The hard rule: **when no [`Session`] is recording, everything is a
//! no-op behind one relaxed atomic load** ([`is_enabled`]). Solver crates
//! can therefore instrument their innermost loops unconditionally. The
//! companion `mc3-audit` rule `no-bare-instant` keeps ad-hoc timing from
//! creeping back in: library code times things through [`timed_span`],
//! never raw `Instant::now()` pairs.
//!
//! A session ends in a [`TelemetryReport`]: JSON via `mc3_core::json`
//! (schema in `docs/observability.md`) or a flame-style text tree via
//! [`TelemetryReport::render`].
//!
//! ```
//! use mc3_telemetry as telemetry;
//!
//! let session = telemetry::Session::begin();
//! {
//!     let _solve = telemetry::span("solve");
//!     let phase = telemetry::timed_span("setup");
//!     telemetry::span_add(telemetry::Counter::DinicPhases, 3);
//!     let wall = phase.finish(); // span node stores exactly `wall`
//!     assert!(wall.as_nanos() > 0);
//! }
//! let report = session.finish();
//! assert_eq!(report.counters["dinic_phases"], 3);
//! ```

mod aggregate;
mod counters;
mod memprof;
mod report;
mod spans;

pub use aggregate::Aggregator;
pub use counters::{
    bucket_bounds, bucket_of, count, hist_count, record, total, Counter, Hist, COUNTER_NAMES,
    HIST_BUCKETS, HIST_NAMES,
};
pub use memprof::peak_rss_bytes;
pub use report::{HistogramData, SpanData, SpanMem, TelemetryReport, REPORT_VERSION};
pub use spans::{
    current_span_path, open_span_depth, span, span_add, timed_span, SpanGuard, TimedSpan,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a telemetry session is currently recording. This is the whole
/// disabled-path cost: one relaxed load of a static `AtomicBool`.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Serializes sessions across threads (and across tests in one binary).
static SESSION: Mutex<()> = Mutex::new(());

/// Lazily pinned epoch for [`monotonic_ns`].
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// This crate is the one place allowed to read the clock (the
/// `no-bare-instant` lint pins that); consumers that need raw timestamps —
/// the `mc3-obs` event log's per-event `ts_ns` and its token-bucket rate
/// limiter — go through this helper instead of `Instant::now()` pairs.
pub fn monotonic_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    spans::duration_ns(epoch.elapsed())
}

/// An exclusive recording session.
///
/// [`Session::begin`] takes a process-wide lock, zeroes all counters,
/// histograms and pending spans, and opens the gate; [`Session::finish`]
/// closes the gate and returns the [`TelemetryReport`]. Dropping a
/// session without finishing it still closes the gate. Because state is
/// global, concurrent would-be sessions block on `begin` until the
/// current one ends — recording is meant for one solve/profile run at a
/// time, not for overlapping measurements.
pub struct Session {
    _lock: MutexGuard<'static, ()>,
}

impl Session {
    /// Starts recording from a clean slate.
    pub fn begin() -> Session {
        let lock = SESSION.lock().unwrap_or_else(|p| p.into_inner());
        counters::reset();
        spans::take_finished();
        memprof::reset();
        // Pre-grow this thread's span stack while the gate is still off,
        // so deep span nesting never shows up as a tracked allocation.
        spans::reserve_stack(64);
        ENABLED.store(true, Ordering::SeqCst);
        Session { _lock: lock }
    }

    /// Stops recording and assembles the report. Counter totals remain
    /// readable via [`total`] until the next `begin` resets them.
    pub fn finish(self) -> TelemetryReport {
        ENABLED.store(false, Ordering::SeqCst);
        report::gather()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// A per-request recording scope *inside* a long-lived [`Session`].
///
/// A server cannot take one `Session` per request — `begin` zeroes the
/// global counters and would destroy the cumulative totals `/metrics`
/// depends on. Instead the server holds **one** session for its whole
/// lifetime (keeping the gate open) and wraps each request in a
/// `ScopedSession` on the worker thread handling it: while the scope is
/// live, span roots closed on this thread divert into a thread-local
/// buffer instead of the global finished list, and
/// [`finish`](ScopedSession::finish) returns them aggregated — ready to
/// [`absorb`](Aggregator::absorb) into the global [`Aggregator`] and to
/// render as this request's own trace.
///
/// Scopes are strictly per-thread (the type is `!Send`) and must not
/// nest on one thread: beginning a new scope discards any unfinished
/// captured roots from the previous one. Global counters and histograms
/// keep accumulating process-wide regardless of scopes; only the span
/// *trees* are diverted. With no outer session recording, a scope is a
/// no-op that finishes empty.
pub struct ScopedSession {
    active: bool,
    /// Capture buffers are thread-local; moving the scope across threads
    /// would disarm the wrong thread's buffer.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ScopedSession {
    /// Arms root capture on this thread.
    pub fn begin() -> ScopedSession {
        spans::begin_capture();
        ScopedSession {
            active: true,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Disarms capture and returns this scope's aggregated span roots
    /// (same-name roots merged, exactly like a session-level report).
    pub fn finish(mut self) -> Vec<SpanData> {
        self.active = false;
        report::aggregate_raw(spans::take_captured())
    }
}

impl Drop for ScopedSession {
    fn drop(&mut self) {
        if self.active {
            // Abandoned scope (handler panicked or bailed early): discard
            // its partial capture so it cannot leak into the next request
            // served by this thread.
            drop(spans::take_captured());
        }
    }
}
