//! Aggregated telemetry snapshots: JSON export and the flame-style dump.
//!
//! A [`TelemetryReport`] is what [`Session::finish`](crate::Session::finish)
//! returns: same-name sibling spans merged (wall times and counters
//! summed, instance counts kept), every registered counter — zeros
//! included — and every registered histogram. The JSON schema is
//! versioned and strict: [`TelemetryReport::from_json`] rejects a report
//! that is missing any *registered* counter or histogram name, which is
//! the schema-drift guard CI leans on (see `docs/observability.md`).

use crate::counters::{self, Counter, Hist, COUNTER_NAMES, HIST_NAMES};
use crate::memprof;
use crate::spans::{self, RawSpan};
use mc3_core::json::Json;
use mc3_core::u32_of;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version emitted in the JSON `version` field. Version 2 added
/// the per-span `mem` object and the report-level `peak_live_bytes` /
/// `peak_rss_bytes` fields (the memprof axis).
pub const REPORT_VERSION: u64 = 2;

/// Aggregated memory tally of one span node (inclusive of children, like
/// `wall_ns`). All counts cover only the time a session gate was open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanMem {
    /// Heap allocations across all merged instances.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Heap frees across all merged instances.
    pub frees: u64,
    /// Bytes released by those frees.
    pub free_bytes: u64,
    /// Maximum over merged instances of the span's net-live high-water
    /// mark (bytes), relative to its own open.
    pub peak_live_bytes: u64,
    /// Minimum allocation count over merged instances — the steady-state
    /// signal: a kernel whose warm instances are allocation-free reads 0
    /// here even when its first instance grew buffers. (`u64::MAX` is
    /// never emitted: a node always merges at least one instance.)
    pub min_instance_allocs: u64,
}

/// One aggregated span node: all same-name siblings merged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanData {
    /// Span name (see the taxonomy in `docs/observability.md`).
    pub name: String,
    /// Total wall time across all merged instances, in nanoseconds.
    pub wall_ns: u64,
    /// Number of raw span instances merged into this node.
    pub count: u64,
    /// Counter increments attributed to this span (wire name → total).
    pub counters: BTreeMap<String, u64>,
    /// Memory attribution across all merged instances.
    pub mem: SpanMem,
    /// Aggregated children, in first-seen order.
    pub children: Vec<SpanData>,
}

/// Snapshot of one log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Histogram wire name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, observation count)` pairs,
    /// bucket semantics per [`counters::bucket_bounds`].
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramData {
    /// Inclusive upper value bound of log2 bucket `idx`: `0` for bucket 0,
    /// `2^idx − 1` for buckets `1..64`, and `u64::MAX` for the last bucket
    /// **and any out-of-range index** — exporters iterate reconstructed
    /// bucket indices from parsed reports, so an index past the registry's
    /// [`counters::HIST_BUCKETS`] saturates instead of panicking.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= crate::HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }
}

/// A full telemetry snapshot for one recording session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Aggregated span roots, in first-seen order.
    pub spans: Vec<SpanData>,
    /// Every registered counter (zeros included).
    pub counters: BTreeMap<String, u64>,
    /// Every registered histogram (empty ones included).
    pub histograms: Vec<HistogramData>,
    /// Session-wide peak of net live bytes allocated since the gate
    /// opened (0 when nothing allocated while recording).
    pub peak_live_bytes: u64,
    /// Peak resident set size of the process in bytes (`VmHWM` from
    /// `/proc/self/status`); `None` where the platform offers no
    /// readable measurement — serialized as JSON `null`, distinct from a
    /// measured zero.
    pub peak_rss_bytes: Option<u64>,
}

fn merge_into(siblings: &mut Vec<SpanData>, raw: RawSpan) {
    let idx = match siblings.iter().position(|s| s.name == raw.name) {
        Some(i) => i,
        None => {
            siblings.push(SpanData {
                name: raw.name.to_owned(),
                mem: SpanMem {
                    // Identity for the `min` fold below; overwritten by
                    // the first merged instance.
                    min_instance_allocs: u64::MAX,
                    ..SpanMem::default()
                },
                ..SpanData::default()
            });
            siblings.len() - 1
        }
    };
    let Some(slot) = siblings.get_mut(idx) else {
        return;
    };
    slot.wall_ns = slot.wall_ns.saturating_add(raw.wall_ns);
    slot.count += 1;
    for (name, v) in raw.counters {
        let cell = slot.counters.entry(name.to_owned()).or_insert(0);
        *cell = cell.saturating_add(v);
    }
    slot.mem.allocs = slot.mem.allocs.saturating_add(raw.mem.allocs);
    slot.mem.alloc_bytes = slot.mem.alloc_bytes.saturating_add(raw.mem.alloc_bytes);
    slot.mem.frees = slot.mem.frees.saturating_add(raw.mem.frees);
    slot.mem.free_bytes = slot.mem.free_bytes.saturating_add(raw.mem.free_bytes);
    slot.mem.peak_live_bytes = slot.mem.peak_live_bytes.max(raw.mem.peak_live_bytes);
    slot.mem.min_instance_allocs = slot.mem.min_instance_allocs.min(raw.mem.allocs);
    for child in raw.children {
        merge_into(&mut slot.children, child);
    }
}

/// Folds one already-aggregated span tree into a sibling list with the
/// exact semantics of [`merge_into`]: wall times, counts, counters and
/// memory tallies sum; per-instance peaks take the max; the steady-state
/// `min_instance_allocs` takes the min. This is the merge the lock-striped
/// [`Aggregator`](crate::Aggregator) runs per absorbed request, so the
/// live `/metrics` totals equal what one giant session would have
/// reported.
pub(crate) fn merge_span_data(siblings: &mut Vec<SpanData>, incoming: &SpanData) {
    let idx = match siblings.iter().position(|s| s.name == incoming.name) {
        Some(i) => i,
        None => {
            siblings.push(SpanData {
                name: incoming.name.clone(),
                mem: SpanMem {
                    min_instance_allocs: u64::MAX,
                    ..SpanMem::default()
                },
                ..SpanData::default()
            });
            siblings.len() - 1
        }
    };
    let Some(slot) = siblings.get_mut(idx) else {
        return;
    };
    slot.wall_ns = slot.wall_ns.saturating_add(incoming.wall_ns);
    slot.count = slot.count.saturating_add(incoming.count);
    for (name, &v) in &incoming.counters {
        let cell = slot.counters.entry(name.clone()).or_insert(0);
        *cell = cell.saturating_add(v);
    }
    slot.mem.allocs = slot.mem.allocs.saturating_add(incoming.mem.allocs);
    slot.mem.alloc_bytes = slot
        .mem
        .alloc_bytes
        .saturating_add(incoming.mem.alloc_bytes);
    slot.mem.frees = slot.mem.frees.saturating_add(incoming.mem.frees);
    slot.mem.free_bytes = slot.mem.free_bytes.saturating_add(incoming.mem.free_bytes);
    slot.mem.peak_live_bytes = slot.mem.peak_live_bytes.max(incoming.mem.peak_live_bytes);
    slot.mem.min_instance_allocs = slot
        .mem
        .min_instance_allocs
        .min(incoming.mem.min_instance_allocs);
    for child in &incoming.children {
        merge_span_data(&mut slot.children, child);
    }
}

/// Merges a batch of raw (per-thread) span roots into aggregated form —
/// the per-request half of the scoped-session flow: a
/// [`ScopedSession`](crate::ScopedSession) drains its captured raw roots
/// through this before the request hands them to the global aggregator.
pub(crate) fn aggregate_raw(raws: Vec<RawSpan>) -> Vec<SpanData> {
    let mut roots: Vec<SpanData> = Vec::new();
    for raw in raws {
        merge_into(&mut roots, raw);
    }
    roots
}

/// Assembles a report from the current global state (gate must already be
/// off so no new spans race the drain).
pub(crate) fn gather() -> TelemetryReport {
    let mut roots: Vec<SpanData> = Vec::new();
    for raw in spans::take_finished() {
        merge_into(&mut roots, raw);
    }
    TelemetryReport {
        spans: roots,
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), counters::total(c)))
            .collect(),
        histograms: Hist::ALL
            .iter()
            .map(|&h| {
                let (count, sum, buckets) = counters::hist_raw(h);
                HistogramData {
                    name: h.name().to_owned(),
                    count,
                    sum,
                    buckets,
                }
            })
            .collect(),
        peak_live_bytes: memprof::global_peak(),
        peak_rss_bytes: memprof::peak_rss_bytes(),
    }
}

fn mem_to_json(m: &SpanMem) -> Json {
    Json::object([
        ("allocs", Json::Int(m.allocs as i128)),
        ("alloc_bytes", Json::Int(m.alloc_bytes as i128)),
        ("frees", Json::Int(m.frees as i128)),
        ("free_bytes", Json::Int(m.free_bytes as i128)),
        ("peak_live_bytes", Json::Int(m.peak_live_bytes as i128)),
        (
            "min_instance_allocs",
            Json::Int(m.min_instance_allocs as i128),
        ),
    ])
}

fn mem_from_json(name: &str, v: &Json) -> Result<SpanMem, String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("span '{name}' mem missing u64 '{key}'"))
    };
    Ok(SpanMem {
        allocs: field("allocs")?,
        alloc_bytes: field("alloc_bytes")?,
        frees: field("frees")?,
        free_bytes: field("free_bytes")?,
        peak_live_bytes: field("peak_live_bytes")?,
        min_instance_allocs: field("min_instance_allocs")?,
    })
}

fn span_to_json(s: &SpanData) -> Json {
    Json::object([
        ("name", Json::Str(s.name.clone())),
        ("wall_ns", Json::Int(s.wall_ns as i128)),
        ("count", Json::Int(s.count as i128)),
        (
            "counters",
            Json::Object(
                s.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Int(v as i128)))
                    .collect(),
            ),
        ),
        ("mem", mem_to_json(&s.mem)),
        (
            "children",
            Json::Array(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn span_from_json(v: &Json) -> Result<SpanData, String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span missing string 'name'")?
        .to_owned();
    let wall_ns = v
        .get("wall_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("span '{name}' missing u64 'wall_ns'"))?;
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("span '{name}' missing u64 'count'"))?;
    let mut counters = BTreeMap::new();
    match v.get("counters") {
        Some(Json::Object(map)) => {
            for (k, val) in map {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("span '{name}' counter '{k}' is not a u64"))?;
                counters.insert(k.clone(), n);
            }
        }
        _ => return Err(format!("span '{name}' missing object 'counters'")),
    }
    let mem = match v.get("mem") {
        Some(obj @ Json::Object(_)) => mem_from_json(&name, obj)?,
        _ => return Err(format!("span '{name}' missing object 'mem'")),
    };
    let mut children = Vec::new();
    match v.get("children") {
        Some(Json::Array(items)) => {
            for item in items {
                children.push(span_from_json(item)?);
            }
        }
        _ => return Err(format!("span '{name}' missing array 'children'")),
    }
    Ok(SpanData {
        name,
        wall_ns,
        count,
        counters,
        mem,
        children,
    })
}

fn hist_to_json(h: &HistogramData) -> Json {
    Json::object([
        ("name", Json::Str(h.name.clone())),
        ("count", Json::Int(h.count as i128)),
        ("sum", Json::Int(h.sum as i128)),
        (
            "buckets",
            Json::Array(
                h.buckets
                    .iter()
                    .map(|&(i, c)| Json::Array(vec![Json::Int(i as i128), Json::Int(c as i128)]))
                    .collect(),
            ),
        ),
    ])
}

fn hist_from_json(v: &Json) -> Result<HistogramData, String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("histogram missing string 'name'")?
        .to_owned();
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing u64 'count'"))?;
    let sum = v
        .get("sum")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing u64 'sum'"))?;
    let mut buckets = Vec::new();
    match v.get("buckets") {
        Some(Json::Array(items)) => {
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histogram '{name}' bucket is not a pair"))?;
                let idx = pair
                    .first()
                    .and_then(Json::as_u64)
                    .filter(|&i| i < counters::HIST_BUCKETS as u64)
                    .ok_or_else(|| format!("histogram '{name}' bucket index invalid"))?;
                let c = pair
                    .get(1)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("histogram '{name}' bucket count invalid"))?;
                buckets.push((u32_of(idx), c));
            }
        }
        _ => return Err(format!("histogram '{name}' missing array 'buckets'")),
    }
    Ok(HistogramData {
        name,
        count,
        sum,
        buckets,
    })
}

/// Renders a nanosecond duration adaptively (`ns`, `µs`, `ms` or `s`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a byte count adaptively (`B`, `KiB`, `MiB` or `GiB`).
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Memory-axis sibling of [`render_node`]: one line per span with bytes
/// allocated, allocation/free counts and the per-span live peak; the
/// percentage is the share of the parent's allocated bytes.
fn render_mem_node(
    out: &mut String,
    node: &SpanData,
    prefix: &str,
    last: Option<bool>,
    parent_bytes: Option<u64>,
) {
    let connector = match last {
        None => "",
        Some(true) => "└─ ",
        Some(false) => "├─ ",
    };
    let pct = match parent_bytes {
        Some(p) if p > 0 => format!(" {:5.1}%", 100.0 * node.mem.alloc_bytes as f64 / p as f64),
        _ => String::new(),
    };
    let times = if node.count > 1 {
        format!(" ×{}", node.count)
    } else {
        String::new()
    };
    let mut line = format!(
        "{prefix}{connector}{} {}{pct}{times}  [allocs={} frees={} peak={}",
        node.name,
        fmt_bytes(node.mem.alloc_bytes),
        node.mem.allocs,
        node.mem.frees,
        fmt_bytes(node.mem.peak_live_bytes),
    );
    if node.count > 1 {
        let _ = write!(line, " min/inst={}", node.mem.min_instance_allocs);
    }
    line.push(']');
    let _ = writeln!(out, "{line}");
    let child_prefix = match last {
        None => String::new(),
        Some(true) => format!("{prefix}   "),
        Some(false) => format!("{prefix}│  "),
    };
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_mem_node(
            out,
            child,
            &child_prefix,
            Some(i + 1 == n),
            Some(node.mem.alloc_bytes),
        );
    }
}

/// `last`: `None` for a root (no connector), else whether this node is
/// its parent's last child.
fn render_node(
    out: &mut String,
    node: &SpanData,
    prefix: &str,
    last: Option<bool>,
    parent_ns: Option<u64>,
) {
    let connector = match last {
        None => "",
        Some(true) => "└─ ",
        Some(false) => "├─ ",
    };
    let pct = match parent_ns {
        Some(p) if p > 0 => format!(" {:5.1}%", 100.0 * node.wall_ns as f64 / p as f64),
        _ => String::new(),
    };
    let times = if node.count > 1 {
        format!(" ×{}", node.count)
    } else {
        String::new()
    };
    let mut line = format!(
        "{prefix}{connector}{} {}{pct}{times}",
        node.name,
        fmt_ns(node.wall_ns)
    );
    if !node.counters.is_empty() {
        let inline: Vec<String> = node
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = write!(line, "  [{}]", inline.join(" "));
    }
    let _ = writeln!(out, "{line}");
    let child_prefix = match last {
        None => String::new(),
        Some(true) => format!("{prefix}   "),
        Some(false) => format!("{prefix}│  "),
    };
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_node(
            out,
            child,
            &child_prefix,
            Some(i + 1 == n),
            Some(node.wall_ns),
        );
    }
}

impl TelemetryReport {
    /// Serializes to the versioned JSON schema (see `docs/observability.md`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("version", Json::Int(REPORT_VERSION as i128)),
            (
                "spans",
                Json::Array(self.spans.iter().map(span_to_json).collect()),
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i128)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Array(self.histograms.iter().map(hist_to_json).collect()),
            ),
            ("peak_live_bytes", Json::Int(self.peak_live_bytes as i128)),
            ("peak_rss_bytes", Json::opt_u64(self.peak_rss_bytes)),
        ])
    }

    /// Parses a report back from JSON. **Strict**: fails if the version is
    /// unknown, any field is malformed, or any *registered* counter or
    /// histogram name is absent — absence means the emitting binary and
    /// this binary disagree about the registry (schema drift).
    pub fn from_json(v: &Json) -> Result<TelemetryReport, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("report missing u64 'version'")?;
        if version != REPORT_VERSION {
            return Err(format!(
                "unsupported telemetry report version {version} (expected {REPORT_VERSION})"
            ));
        }
        let mut spans = Vec::new();
        match v.get("spans") {
            Some(Json::Array(items)) => {
                for item in items {
                    spans.push(span_from_json(item)?);
                }
            }
            _ => return Err("report missing array 'spans'".to_owned()),
        }
        let mut counters = BTreeMap::new();
        match v.get("counters") {
            Some(Json::Object(map)) => {
                for (k, val) in map {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("counter '{k}' is not a u64"))?;
                    counters.insert(k.clone(), n);
                }
            }
            _ => return Err("report missing object 'counters'".to_owned()),
        }
        for name in COUNTER_NAMES {
            if !counters.contains_key(*name) {
                return Err(format!(
                    "registered counter '{name}' absent from report (schema drift)"
                ));
            }
        }
        let mut histograms = Vec::new();
        match v.get("histograms") {
            Some(Json::Array(items)) => {
                for item in items {
                    histograms.push(hist_from_json(item)?);
                }
            }
            _ => return Err("report missing array 'histograms'".to_owned()),
        }
        for name in HIST_NAMES {
            if !histograms.iter().any(|h| h.name == *name) {
                return Err(format!(
                    "registered histogram '{name}' absent from report (schema drift)"
                ));
            }
        }
        let peak_live_bytes = v
            .get("peak_live_bytes")
            .and_then(Json::as_u64)
            .ok_or("report missing u64 'peak_live_bytes'")?;
        // Strict about presence, permissive about measurement: the key
        // must exist (schema drift guard) but `null` means "not measured"
        // on platforms without a readable RSS high-water mark.
        let peak_rss_bytes = match v.get("peak_rss_bytes") {
            Some(Json::Null) => None,
            Some(val) => Some(
                val.as_u64()
                    .ok_or("report field 'peak_rss_bytes' is neither u64 nor null")?,
            ),
            None => return Err("report missing field 'peak_rss_bytes'".to_owned()),
        };
        Ok(TelemetryReport {
            spans,
            counters,
            histograms,
            peak_live_bytes,
            peak_rss_bytes,
        })
    }

    /// Counters with non-zero totals, largest first.
    pub fn top_counters(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .counters
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (k.as_str(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Flame-style tree dump plus top counters and histograms — the body
    /// of `mc3 profile` and `mc3 solve --trace` output.
    pub fn render(&self) -> String {
        self.render_top(usize::MAX)
    }

    /// [`render`](Self::render) with the counter listing truncated to the
    /// `limit` largest entries (`mc3 profile --top N`).
    pub fn render_top(&self, limit: usize) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        for root in &self.spans {
            render_node(&mut out, root, "", None, None);
        }
        let mut top = self.top_counters();
        let omitted = top.len().saturating_sub(limit);
        top.truncate(limit);
        if !top.is_empty() {
            let _ = writeln!(out, "\ncounters (non-zero, largest first):");
            let width = top.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, n) in top {
                let _ = writeln!(out, "  {name:width$}  {n}");
            }
            if omitted > 0 {
                let _ = writeln!(out, "  … {omitted} more");
            }
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "\nhistogram {} (n={}, sum={}):",
                h.name, h.count, h.sum
            );
            for &(b, c) in &h.buckets {
                let (lo, hi) = counters::bucket_bounds(b as usize);
                let label = if lo == hi {
                    format!("{lo}")
                } else {
                    format!("{lo}..={hi}")
                };
                let _ = writeln!(out, "  {label:>12}  {c}");
            }
        }
        out
    }

    /// Memory-axis flame dump — the body of `mc3 profile --mem`: bytes
    /// and allocation counts per span, the session live-bytes peak and
    /// the process RSS high-water mark.
    pub fn render_mem(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        for root in &self.spans {
            render_mem_node(&mut out, root, "", None, None);
        }
        let allocs = self.counters.get("mem_allocs").copied().unwrap_or(0);
        let bytes = self.counters.get("mem_alloc_bytes").copied().unwrap_or(0);
        let _ = writeln!(out, "\ntotal: {} in {allocs} allocations", fmt_bytes(bytes));
        let _ = writeln!(
            out,
            "peak live bytes (session): {}",
            fmt_bytes(self.peak_live_bytes)
        );
        match self.peak_rss_bytes {
            Some(rss) => {
                let _ = writeln!(out, "peak rss (process): {}", fmt_bytes(rss));
            }
            None => {
                let _ = writeln!(out, "peak rss (process): not measured on this platform");
            }
        }
        if let Some(h) = self
            .histograms
            .iter()
            .find(|h| h.name == "alloc_size_bytes" && h.count > 0)
        {
            let _ = writeln!(
                out,
                "\nhistogram {} (n={}, sum={}):",
                h.name, h.count, h.sum
            );
            for &(b, c) in &h.buckets {
                let (lo, hi) = counters::bucket_bounds(b as usize);
                let label = if lo == hi {
                    format!("{lo}")
                } else {
                    format!("{lo}..={hi}")
                };
                let _ = writeln!(out, "  {label:>12}  {c}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(name: &'static str, wall: u64, children: Vec<RawSpan>) -> RawSpan {
        RawSpan {
            name,
            wall_ns: wall,
            counters: vec![("dinic_phases", 2)],
            children,
            mem: crate::memprof::RawSpanMem {
                allocs: wall / 10,
                alloc_bytes: wall,
                frees: wall / 20,
                free_bytes: wall / 2,
                peak_live_bytes: wall / 2,
            },
        }
    }

    #[test]
    fn aggregation_merges_same_name_siblings() {
        let mut roots = Vec::new();
        merge_into(
            &mut roots,
            raw("solve", 100, vec![raw("k2.solve", 40, vec![])]),
        );
        merge_into(
            &mut roots,
            raw("solve", 50, vec![raw("k2.solve", 10, vec![])]),
        );
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].wall_ns, 150);
        assert_eq!(roots[0].count, 2);
        assert_eq!(roots[0].counters["dinic_phases"], 4);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].wall_ns, 50);
        assert_eq!(roots[0].children[0].count, 2);
        // Memory merges: counts/bytes sum, the peak takes the max, and
        // min_instance_allocs keeps the smallest single-instance count.
        assert_eq!(roots[0].mem.allocs, 15);
        assert_eq!(roots[0].mem.alloc_bytes, 150);
        assert_eq!(roots[0].mem.frees, 7);
        assert_eq!(roots[0].mem.peak_live_bytes, 50);
        assert_eq!(roots[0].mem.min_instance_allocs, 5);
        assert_eq!(roots[0].children[0].mem.min_instance_allocs, 1);
    }

    fn sample_report() -> TelemetryReport {
        let mut roots = Vec::new();
        merge_into(
            &mut roots,
            raw("solve", 1_500_000, vec![raw("setup", 200_000, vec![])]),
        );
        TelemetryReport {
            spans: roots,
            counters: COUNTER_NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i as u64))
                .collect(),
            histograms: HIST_NAMES
                .iter()
                .map(|n| HistogramData {
                    name: n.to_string(),
                    count: 3,
                    sum: 12,
                    buckets: vec![(1, 1), (3, 2)],
                })
                .collect(),
            peak_live_bytes: 4096,
            peak_rss_bytes: Some(1 << 20),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let text = report.to_json().to_string_pretty();
        let parsed = mc3_core::json::parse(&text).expect("report JSON must parse");
        let back = TelemetryReport::from_json(&parsed).expect("strict parse");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_a_missing_registered_counter() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            if let Some(Json::Object(counters)) = map.get_mut("counters") {
                counters.remove("dinic_phases");
            }
        }
        let err = TelemetryReport::from_json(&v).expect_err("must flag drift");
        assert!(err.contains("dinic_phases"), "unexpected error: {err}");
    }

    #[test]
    fn from_json_rejects_a_bad_version() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            map.insert("version".to_owned(), Json::Int(99));
        }
        assert!(TelemetryReport::from_json(&v).is_err());
    }

    #[test]
    fn bucket_bound_edges_agree_with_bucket_bounds() {
        use crate::counters::{bucket_bounds, HIST_BUCKETS};
        // Edge buckets: 0, the last registered bucket, and overflow.
        assert_eq!(HistogramData::bucket_bound(0), 0);
        assert_eq!(HistogramData::bucket_bound(1), 1);
        assert_eq!(HistogramData::bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        // Out-of-range indices saturate instead of panicking.
        assert_eq!(HistogramData::bucket_bound(HIST_BUCKETS), u64::MAX);
        assert_eq!(HistogramData::bucket_bound(usize::MAX), u64::MAX);
        // Every in-range bound is exactly the hi end of bucket_bounds.
        for idx in 0..HIST_BUCKETS {
            let (_, hi) = bucket_bounds(idx);
            assert_eq!(HistogramData::bucket_bound(idx), hi, "bucket {idx}");
        }
    }

    #[test]
    fn render_mentions_every_span_and_top_counter() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("solve"));
        assert!(text.contains("setup"));
        assert!(text.contains("counters (non-zero"));
        assert!(text.contains("histogram component_size"));
    }

    #[test]
    fn from_json_rejects_a_span_without_mem() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            if let Some(Json::Array(spans)) = map.get_mut("spans") {
                if let Some(Json::Object(span)) = spans.first_mut() {
                    span.remove("mem");
                }
            }
        }
        let err = TelemetryReport::from_json(&v).expect_err("must flag v2 drift");
        assert!(err.contains("mem"), "unexpected error: {err}");
    }

    #[test]
    fn from_json_rejects_a_missing_peak_field() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            map.remove("peak_rss_bytes");
        }
        let err = TelemetryReport::from_json(&v).expect_err("must flag v2 drift");
        assert!(err.contains("peak_rss_bytes"), "unexpected error: {err}");
    }

    #[test]
    fn unmeasured_peak_rss_round_trips_as_null() {
        let mut report = sample_report();
        report.peak_rss_bytes = None;
        let text = report.to_json().to_string_pretty();
        assert!(text.contains("\"peak_rss_bytes\": null"), "{text}");
        let parsed = mc3_core::json::parse(&text).expect("report JSON must parse");
        let back = TelemetryReport::from_json(&parsed).expect("null rss is valid");
        assert_eq!(back.peak_rss_bytes, None);
        assert_eq!(back, report);
    }

    #[test]
    fn merge_span_data_matches_raw_merge_semantics() {
        // Aggregating two requests one tree at a time through
        // merge_span_data must equal merging all raws in one session.
        let mut all_at_once = Vec::new();
        merge_into(
            &mut all_at_once,
            raw("solve", 100, vec![raw("k2.solve", 40, vec![])]),
        );
        merge_into(
            &mut all_at_once,
            raw("solve", 50, vec![raw("k2.solve", 10, vec![])]),
        );
        let mut one_by_one = Vec::new();
        let req_a = aggregate_raw(vec![raw("solve", 100, vec![raw("k2.solve", 40, vec![])])]);
        let req_b = aggregate_raw(vec![raw("solve", 50, vec![raw("k2.solve", 10, vec![])])]);
        for root in req_a.iter().chain(req_b.iter()) {
            merge_span_data(&mut one_by_one, root);
        }
        assert_eq!(one_by_one, all_at_once);
    }

    #[test]
    fn render_mem_shows_bytes_per_span_and_peaks() {
        let report = sample_report();
        let text = report.render_mem();
        assert!(text.contains("solve"), "{text}");
        assert!(text.contains("setup"), "{text}");
        assert!(text.contains("allocs="), "{text}");
        assert!(text.contains("peak live bytes (session): 4.0KiB"), "{text}");
        assert!(text.contains("peak rss (process): 1.00MiB"), "{text}");
    }

    #[test]
    fn bytes_format_adaptively() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(1023), "1023B");
        assert_eq!(fmt_bytes(1536), "1.5KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }
}
