//! Aggregated telemetry snapshots: JSON export and the flame-style dump.
//!
//! A [`TelemetryReport`] is what [`Session::finish`](crate::Session::finish)
//! returns: same-name sibling spans merged (wall times and counters
//! summed, instance counts kept), every registered counter — zeros
//! included — and every registered histogram. The JSON schema is
//! versioned and strict: [`TelemetryReport::from_json`] rejects a report
//! that is missing any *registered* counter or histogram name, which is
//! the schema-drift guard CI leans on (see `docs/observability.md`).

use crate::counters::{self, Counter, Hist, COUNTER_NAMES, HIST_NAMES};
use crate::spans::{self, RawSpan};
use mc3_core::json::Json;
use mc3_core::u32_of;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version emitted in the JSON `version` field.
pub const REPORT_VERSION: u64 = 1;

/// One aggregated span node: all same-name siblings merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Span name (see the taxonomy in `docs/observability.md`).
    pub name: String,
    /// Total wall time across all merged instances, in nanoseconds.
    pub wall_ns: u64,
    /// Number of raw span instances merged into this node.
    pub count: u64,
    /// Counter increments attributed to this span (wire name → total).
    pub counters: BTreeMap<String, u64>,
    /// Aggregated children, in first-seen order.
    pub children: Vec<SpanData>,
}

/// Snapshot of one log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Histogram wire name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, observation count)` pairs,
    /// bucket semantics per [`counters::bucket_bounds`].
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramData {
    /// Inclusive upper value bound of log2 bucket `idx`: `0` for bucket 0,
    /// `2^idx − 1` for buckets `1..64`, and `u64::MAX` for the last bucket
    /// **and any out-of-range index** — exporters iterate reconstructed
    /// bucket indices from parsed reports, so an index past the registry's
    /// [`counters::HIST_BUCKETS`] saturates instead of panicking.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= crate::HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }
}

/// A full telemetry snapshot for one recording session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Aggregated span roots, in first-seen order.
    pub spans: Vec<SpanData>,
    /// Every registered counter (zeros included).
    pub counters: BTreeMap<String, u64>,
    /// Every registered histogram (empty ones included).
    pub histograms: Vec<HistogramData>,
}

fn merge_into(siblings: &mut Vec<SpanData>, raw: RawSpan) {
    let idx = match siblings.iter().position(|s| s.name == raw.name) {
        Some(i) => i,
        None => {
            siblings.push(SpanData {
                name: raw.name.to_owned(),
                wall_ns: 0,
                count: 0,
                counters: BTreeMap::new(),
                children: Vec::new(),
            });
            siblings.len() - 1
        }
    };
    let Some(slot) = siblings.get_mut(idx) else {
        return;
    };
    slot.wall_ns = slot.wall_ns.saturating_add(raw.wall_ns);
    slot.count += 1;
    for (name, v) in raw.counters {
        let cell = slot.counters.entry(name.to_owned()).or_insert(0);
        *cell = cell.saturating_add(v);
    }
    for child in raw.children {
        merge_into(&mut slot.children, child);
    }
}

/// Assembles a report from the current global state (gate must already be
/// off so no new spans race the drain).
pub(crate) fn gather() -> TelemetryReport {
    let mut roots: Vec<SpanData> = Vec::new();
    for raw in spans::take_finished() {
        merge_into(&mut roots, raw);
    }
    TelemetryReport {
        spans: roots,
        counters: Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), counters::total(c)))
            .collect(),
        histograms: Hist::ALL
            .iter()
            .map(|&h| {
                let (count, sum, buckets) = counters::hist_raw(h);
                HistogramData {
                    name: h.name().to_owned(),
                    count,
                    sum,
                    buckets,
                }
            })
            .collect(),
    }
}

fn span_to_json(s: &SpanData) -> Json {
    Json::object([
        ("name", Json::Str(s.name.clone())),
        ("wall_ns", Json::Int(s.wall_ns as i128)),
        ("count", Json::Int(s.count as i128)),
        (
            "counters",
            Json::Object(
                s.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Int(v as i128)))
                    .collect(),
            ),
        ),
        (
            "children",
            Json::Array(s.children.iter().map(span_to_json).collect()),
        ),
    ])
}

fn span_from_json(v: &Json) -> Result<SpanData, String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span missing string 'name'")?
        .to_owned();
    let wall_ns = v
        .get("wall_ns")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("span '{name}' missing u64 'wall_ns'"))?;
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("span '{name}' missing u64 'count'"))?;
    let mut counters = BTreeMap::new();
    match v.get("counters") {
        Some(Json::Object(map)) => {
            for (k, val) in map {
                let n = val
                    .as_u64()
                    .ok_or_else(|| format!("span '{name}' counter '{k}' is not a u64"))?;
                counters.insert(k.clone(), n);
            }
        }
        _ => return Err(format!("span '{name}' missing object 'counters'")),
    }
    let mut children = Vec::new();
    match v.get("children") {
        Some(Json::Array(items)) => {
            for item in items {
                children.push(span_from_json(item)?);
            }
        }
        _ => return Err(format!("span '{name}' missing array 'children'")),
    }
    Ok(SpanData {
        name,
        wall_ns,
        count,
        counters,
        children,
    })
}

fn hist_to_json(h: &HistogramData) -> Json {
    Json::object([
        ("name", Json::Str(h.name.clone())),
        ("count", Json::Int(h.count as i128)),
        ("sum", Json::Int(h.sum as i128)),
        (
            "buckets",
            Json::Array(
                h.buckets
                    .iter()
                    .map(|&(i, c)| Json::Array(vec![Json::Int(i as i128), Json::Int(c as i128)]))
                    .collect(),
            ),
        ),
    ])
}

fn hist_from_json(v: &Json) -> Result<HistogramData, String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("histogram missing string 'name'")?
        .to_owned();
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing u64 'count'"))?;
    let sum = v
        .get("sum")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing u64 'sum'"))?;
    let mut buckets = Vec::new();
    match v.get("buckets") {
        Some(Json::Array(items)) => {
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| format!("histogram '{name}' bucket is not a pair"))?;
                let idx = pair
                    .first()
                    .and_then(Json::as_u64)
                    .filter(|&i| i < counters::HIST_BUCKETS as u64)
                    .ok_or_else(|| format!("histogram '{name}' bucket index invalid"))?;
                let c = pair
                    .get(1)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("histogram '{name}' bucket count invalid"))?;
                buckets.push((u32_of(idx), c));
            }
        }
        _ => return Err(format!("histogram '{name}' missing array 'buckets'")),
    }
    Ok(HistogramData {
        name,
        count,
        sum,
        buckets,
    })
}

/// Renders a nanosecond duration adaptively (`ns`, `µs`, `ms` or `s`).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// `last`: `None` for a root (no connector), else whether this node is
/// its parent's last child.
fn render_node(
    out: &mut String,
    node: &SpanData,
    prefix: &str,
    last: Option<bool>,
    parent_ns: Option<u64>,
) {
    let connector = match last {
        None => "",
        Some(true) => "└─ ",
        Some(false) => "├─ ",
    };
    let pct = match parent_ns {
        Some(p) if p > 0 => format!(" {:5.1}%", 100.0 * node.wall_ns as f64 / p as f64),
        _ => String::new(),
    };
    let times = if node.count > 1 {
        format!(" ×{}", node.count)
    } else {
        String::new()
    };
    let mut line = format!(
        "{prefix}{connector}{} {}{pct}{times}",
        node.name,
        fmt_ns(node.wall_ns)
    );
    if !node.counters.is_empty() {
        let inline: Vec<String> = node
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = write!(line, "  [{}]", inline.join(" "));
    }
    let _ = writeln!(out, "{line}");
    let child_prefix = match last {
        None => String::new(),
        Some(true) => format!("{prefix}   "),
        Some(false) => format!("{prefix}│  "),
    };
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        render_node(
            out,
            child,
            &child_prefix,
            Some(i + 1 == n),
            Some(node.wall_ns),
        );
    }
}

impl TelemetryReport {
    /// Serializes to the versioned JSON schema (see `docs/observability.md`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("version", Json::Int(REPORT_VERSION as i128)),
            (
                "spans",
                Json::Array(self.spans.iter().map(span_to_json).collect()),
            ),
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i128)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Array(self.histograms.iter().map(hist_to_json).collect()),
            ),
        ])
    }

    /// Parses a report back from JSON. **Strict**: fails if the version is
    /// unknown, any field is malformed, or any *registered* counter or
    /// histogram name is absent — absence means the emitting binary and
    /// this binary disagree about the registry (schema drift).
    pub fn from_json(v: &Json) -> Result<TelemetryReport, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("report missing u64 'version'")?;
        if version != REPORT_VERSION {
            return Err(format!(
                "unsupported telemetry report version {version} (expected {REPORT_VERSION})"
            ));
        }
        let mut spans = Vec::new();
        match v.get("spans") {
            Some(Json::Array(items)) => {
                for item in items {
                    spans.push(span_from_json(item)?);
                }
            }
            _ => return Err("report missing array 'spans'".to_owned()),
        }
        let mut counters = BTreeMap::new();
        match v.get("counters") {
            Some(Json::Object(map)) => {
                for (k, val) in map {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("counter '{k}' is not a u64"))?;
                    counters.insert(k.clone(), n);
                }
            }
            _ => return Err("report missing object 'counters'".to_owned()),
        }
        for name in COUNTER_NAMES {
            if !counters.contains_key(*name) {
                return Err(format!(
                    "registered counter '{name}' absent from report (schema drift)"
                ));
            }
        }
        let mut histograms = Vec::new();
        match v.get("histograms") {
            Some(Json::Array(items)) => {
                for item in items {
                    histograms.push(hist_from_json(item)?);
                }
            }
            _ => return Err("report missing array 'histograms'".to_owned()),
        }
        for name in HIST_NAMES {
            if !histograms.iter().any(|h| h.name == *name) {
                return Err(format!(
                    "registered histogram '{name}' absent from report (schema drift)"
                ));
            }
        }
        Ok(TelemetryReport {
            spans,
            counters,
            histograms,
        })
    }

    /// Counters with non-zero totals, largest first.
    pub fn top_counters(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .counters
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &n)| (k.as_str(), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Flame-style tree dump plus top counters and histograms — the body
    /// of `mc3 profile` and `mc3 solve --trace` output.
    pub fn render(&self) -> String {
        self.render_top(usize::MAX)
    }

    /// [`render`](Self::render) with the counter listing truncated to the
    /// `limit` largest entries (`mc3 profile --top N`).
    pub fn render_top(&self, limit: usize) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        for root in &self.spans {
            render_node(&mut out, root, "", None, None);
        }
        let mut top = self.top_counters();
        let omitted = top.len().saturating_sub(limit);
        top.truncate(limit);
        if !top.is_empty() {
            let _ = writeln!(out, "\ncounters (non-zero, largest first):");
            let width = top.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (name, n) in top {
                let _ = writeln!(out, "  {name:width$}  {n}");
            }
            if omitted > 0 {
                let _ = writeln!(out, "  … {omitted} more");
            }
        }
        for h in &self.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "\nhistogram {} (n={}, sum={}):",
                h.name, h.count, h.sum
            );
            for &(b, c) in &h.buckets {
                let (lo, hi) = counters::bucket_bounds(b as usize);
                let label = if lo == hi {
                    format!("{lo}")
                } else {
                    format!("{lo}..={hi}")
                };
                let _ = writeln!(out, "  {label:>12}  {c}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(name: &'static str, wall: u64, children: Vec<RawSpan>) -> RawSpan {
        RawSpan {
            name,
            wall_ns: wall,
            counters: vec![("dinic_phases", 2)],
            children,
        }
    }

    #[test]
    fn aggregation_merges_same_name_siblings() {
        let mut roots = Vec::new();
        merge_into(
            &mut roots,
            raw("solve", 100, vec![raw("k2.solve", 40, vec![])]),
        );
        merge_into(
            &mut roots,
            raw("solve", 50, vec![raw("k2.solve", 10, vec![])]),
        );
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].wall_ns, 150);
        assert_eq!(roots[0].count, 2);
        assert_eq!(roots[0].counters["dinic_phases"], 4);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].wall_ns, 50);
        assert_eq!(roots[0].children[0].count, 2);
    }

    fn sample_report() -> TelemetryReport {
        let mut roots = Vec::new();
        merge_into(
            &mut roots,
            raw("solve", 1_500_000, vec![raw("setup", 200_000, vec![])]),
        );
        TelemetryReport {
            spans: roots,
            counters: COUNTER_NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), i as u64))
                .collect(),
            histograms: HIST_NAMES
                .iter()
                .map(|n| HistogramData {
                    name: n.to_string(),
                    count: 3,
                    sum: 12,
                    buckets: vec![(1, 1), (3, 2)],
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let text = report.to_json().to_string_pretty();
        let parsed = mc3_core::json::parse(&text).expect("report JSON must parse");
        let back = TelemetryReport::from_json(&parsed).expect("strict parse");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_a_missing_registered_counter() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            if let Some(Json::Object(counters)) = map.get_mut("counters") {
                counters.remove("dinic_phases");
            }
        }
        let err = TelemetryReport::from_json(&v).expect_err("must flag drift");
        assert!(err.contains("dinic_phases"), "unexpected error: {err}");
    }

    #[test]
    fn from_json_rejects_a_bad_version() {
        let report = sample_report();
        let mut v = report.to_json();
        if let Json::Object(map) = &mut v {
            map.insert("version".to_owned(), Json::Int(99));
        }
        assert!(TelemetryReport::from_json(&v).is_err());
    }

    #[test]
    fn bucket_bound_edges_agree_with_bucket_bounds() {
        use crate::counters::{bucket_bounds, HIST_BUCKETS};
        // Edge buckets: 0, the last registered bucket, and overflow.
        assert_eq!(HistogramData::bucket_bound(0), 0);
        assert_eq!(HistogramData::bucket_bound(1), 1);
        assert_eq!(HistogramData::bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        // Out-of-range indices saturate instead of panicking.
        assert_eq!(HistogramData::bucket_bound(HIST_BUCKETS), u64::MAX);
        assert_eq!(HistogramData::bucket_bound(usize::MAX), u64::MAX);
        // Every in-range bound is exactly the hi end of bucket_bounds.
        for idx in 0..HIST_BUCKETS {
            let (_, hi) = bucket_bounds(idx);
            assert_eq!(HistogramData::bucket_bound(idx), hi, "bucket {idx}");
        }
    }

    #[test]
    fn render_mentions_every_span_and_top_counter() {
        let report = sample_report();
        let text = report.render();
        assert!(text.contains("solve"));
        assert!(text.contains("setup"));
        assert!(text.contains("counters (non-zero"));
        assert!(text.contains("histogram component_size"));
    }
}
