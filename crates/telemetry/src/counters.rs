//! The fixed counter and histogram registries.
//!
//! Counters are a *closed* enum: every countable solver internal is
//! declared here, once, with its wire name. The cells behind them are
//! global `AtomicU64`s, so increments from worker threads aggregate for
//! free and a parallel solve reports exactly the same totals as a
//! sequential solve of the same instance (the solvers themselves are
//! deterministic per component). [`TelemetryReport`](crate::TelemetryReport)
//! always emits *every* registered name — zeros included — which is what
//! lets `TelemetryReport::from_json` double as a schema-drift guard.
//!
//! Histograms use log2 buckets: bucket 0 holds the value `0`, bucket
//! `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]`, for [`HIST_BUCKETS`]
//! buckets total (enough for the full `u64` range).

use mc3_core::u32_of;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! declare_counters {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)+) => {
        /// A registered monotonic counter.
        ///
        /// The registry is deliberately closed: adding a counter means
        /// adding a variant here, which automatically extends the JSON
        /// schema, the report renderer and the CI drift guard.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Counter {
            $($(#[$meta])* $variant,)+
        }

        /// Wire names of every registered counter, in declaration order.
        pub const COUNTER_NAMES: &[&str] = &[$($name,)+];

        impl Counter {
            /// Every registered counter, in declaration order.
            pub const ALL: &'static [Counter] = &[$(Counter::$variant,)+];

            /// The counter's wire name, as emitted in `TelemetryReport`.
            pub fn name(self) -> &'static str {
                match self { $(Counter::$variant => $name,)+ }
            }
        }
    };
}

declare_counters! {
    /// Dinic: BFS phases (level-graph rebuilds).
    DinicPhases => "dinic_phases",
    /// Dinic: augmenting paths found across all blocking flows.
    DinicAugmentingPaths => "dinic_augmenting_paths",
    /// Dinic: nodes enqueued across all level-graph BFS runs.
    DinicBfsVisits => "dinic_bfs_visits",
    /// Push-relabel: push operations.
    PrPushes => "pr_pushes",
    /// Push-relabel: relabel operations.
    PrRelabels => "pr_relabels",
    /// Push-relabel: gap-heuristic firings.
    PrGapFirings => "pr_gap_firings",
    /// Greedy WSC: heap pops (iterations of the selection loop).
    GreedyIterations => "greedy_iterations",
    /// Greedy WSC: stale heap entries reinserted with a fresh coverage.
    GreedyPqRebuilds => "greedy_pq_rebuilds",
    /// Greedy WSC: sets selected into the cover.
    GreedySelected => "greedy_selected",
    /// Preprocessing: Observation 3.1 firings (Step-1 selections).
    PreObs31Selected => "pre_obs31_selected",
    /// Preprocessing: Observation 3.3 removals (Step-3 decompositions).
    PreObs33Removed => "pre_obs33_removed",
    /// Preprocessing: Step-3 forced selections (last remaining cover).
    PreObs33Forced => "pre_obs33_forced",
    /// Preprocessing: Observation 3.4 singleton prunes (Step 4).
    PreObs34Pruned => "pre_obs34_pruned",
    /// Preprocessing: Step-3 fixpoint passes.
    PrePasses => "pre_passes",
    /// Solver: property-connected components found after preprocessing.
    ComponentsSplit => "components_split",
    /// Solver: dispatches into the exact k ≤ 2 path (Algorithm 2).
    DispatchK2 => "dispatch_k2",
    /// Solver: dispatches into the general WSC path (Algorithm 3).
    DispatchGeneral => "dispatch_general",
    /// Bipartite weighted-vertex-cover reductions solved via max-flow.
    WvcSolves => "wvc_solves",
    /// Simplex: pivots performed (phase 1 + phase 2).
    LpPivots => "lp_pivots",
    /// Simplex: degenerate pivots (leaving ratio ≈ 0; anti-cycling trigger).
    LpDegeneratePivots => "lp_degenerate_pivots",
    /// Bitset coverage kernel: 64-bit word operations executed.
    BitCoverWordOps => "bitcover_word_ops",
    /// Verify feature: max-flow certificates re-checked.
    VerifyFlowChecks => "verify_flow_checks",
    /// Verify feature: WVC optimality certificates re-checked.
    VerifyWvcChecks => "verify_wvc_checks",
    /// Verify feature: greedy dual-fitting certificates re-checked.
    VerifyGreedyDualChecks => "verify_greedy_dual_checks",
    /// Verify feature: k ≤ 2 exactness certificates re-checked.
    VerifyExactBracketChecks => "verify_exact_bracket_checks",
    /// Verify feature: Theorem 5.3 ratio certificates re-checked.
    VerifyRatioChecks => "verify_ratio_checks",
    /// Verify feature: end-to-end solution certificates re-checked.
    VerifyCertificateChecks => "verify_certificate_checks",
    /// Solve cache: component lookups answered from the cache.
    CacheHits => "cache_hits",
    /// Solve cache: component lookups that missed (or failed re-verify).
    CacheMisses => "cache_misses",
    /// Solve cache: entries evicted to stay under the byte budget.
    CacheEvictions => "cache_evictions",
    /// Solve cache: infeasibility verdicts replayed from the cache.
    CacheNegativeHits => "cache_negative_hits",
    /// Solve executor: component tasks executed by the shared workers.
    ExecTasks => "exec_tasks",
    /// Solve executor: tasks taken from another worker's deque.
    ExecSteals => "exec_steals",
    /// Solve executor: nanoseconds workers spent parked waiting for work.
    ExecParkNs => "exec_park_ns",
    /// Memprof: heap allocations observed while the session gate was on.
    MemAllocs => "mem_allocs",
    /// Memprof: bytes requested by those allocations.
    MemAllocBytes => "mem_alloc_bytes",
    /// Memprof: heap frees observed while the session gate was on.
    MemFrees => "mem_frees",
    /// Memprof: bytes released by those frees.
    MemFreeBytes => "mem_free_bytes",
}

macro_rules! declare_hists {
    ($($(#[$meta:meta])* $variant:ident => $name:literal,)+) => {
        /// A registered log2-bucketed histogram.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Hist {
            $($(#[$meta])* $variant,)+
        }

        /// Wire names of every registered histogram, in declaration order.
        pub const HIST_NAMES: &[&str] = &[$($name,)+];

        impl Hist {
            /// Every registered histogram, in declaration order.
            pub const ALL: &'static [Hist] = &[$(Hist::$variant,)+];

            /// The histogram's wire name, as emitted in `TelemetryReport`.
            pub fn name(self) -> &'static str {
                match self { $(Hist::$variant => $name,)+ }
            }
        }
    };
}

declare_hists! {
    /// Sizes (query counts) of property-connected components.
    ComponentSize => "component_size",
    /// Newly covered elements per greedy WSC selection.
    GreedyPickCoverage => "greedy_pick_coverage",
    /// Simplex pivots per `optimize` run (phase 1 and phase 2 separately).
    LpIterations => "lp_iterations",
    /// Nanoseconds per solve-cache lookup (hit or miss, incl. re-verify).
    CacheLookupNs => "cache_lookup_ns",
    /// Nanoseconds a scheduled executor task waited in queue before
    /// a worker picked it up.
    ExecWaitNs => "exec_wait_ns",
    /// Requested size in bytes of every tracked heap allocation.
    AllocSize => "alloc_size_bytes",
}

/// Number of log2 buckets per histogram: bucket 0 for the value `0`,
/// buckets `1..=64` for `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

const N_COUNTERS: usize = COUNTER_NAMES.len();
const N_HISTS: usize = HIST_NAMES.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];

static CELLS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];
static HIST_CELLS: [[AtomicU64; HIST_BUCKETS]; N_HISTS] = [ZERO_ROW; N_HISTS];
static HIST_COUNT: [AtomicU64; N_HISTS] = [ZERO; N_HISTS];
static HIST_SUM: [AtomicU64; N_HISTS] = [ZERO; N_HISTS];

/// Unconditional add, for callers that already checked the gate.
pub(crate) fn raw_add(c: Counter, n: u64) {
    CELLS[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Adds `n` to a counter if a telemetry session is recording. When the
/// gate is off this is one relaxed atomic load and a predictable branch.
#[inline]
pub fn count(c: Counter, n: u64) {
    if crate::is_enabled() {
        raw_add(c, n);
    }
}

/// Current total of a counter (survives until the next [`Session::begin`]
/// reset, so it can be read after a session finishes).
///
/// [`Session::begin`]: crate::Session::begin
pub fn total(c: Counter) -> u64 {
    CELLS[c as usize].load(Ordering::Relaxed)
}

/// The log2 bucket index a value lands in: `0 → 0`, otherwise
/// `64 - v.leading_zeros()` (so `1 → 1`, `2..=3 → 2`, `4..=7 → 3`, …).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of a bucket index.
///
/// # Panics
/// Panics if `bucket >= HIST_BUCKETS`.
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < HIST_BUCKETS, "bucket index out of range");
    if bucket == 0 {
        (0, 0)
    } else if bucket == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (bucket - 1), (1u64 << bucket) - 1)
    }
}

/// Unconditional histogram record, for callers that already checked the
/// gate (the allocator hook, which must stay branch-minimal).
pub(crate) fn raw_record(h: Hist, v: u64) {
    HIST_CELLS[h as usize][bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    HIST_COUNT[h as usize].fetch_add(1, Ordering::Relaxed);
    HIST_SUM[h as usize].fetch_add(v, Ordering::Relaxed);
}

/// Records one observation into a histogram if a session is recording.
#[inline]
pub fn record(h: Hist, v: u64) {
    if crate::is_enabled() {
        raw_record(h, v);
    }
}

/// Number of observations recorded into a histogram so far.
pub fn hist_count(h: Hist) -> u64 {
    HIST_COUNT[h as usize].load(Ordering::Relaxed)
}

/// Raw snapshot of one histogram: `(count, sum, non-empty buckets)`.
pub(crate) fn hist_raw(h: Hist) -> (u64, u64, Vec<(u32, u64)>) {
    let row = &HIST_CELLS[h as usize];
    let buckets = row
        .iter()
        .enumerate()
        .filter_map(|(i, cell)| {
            let c = cell.load(Ordering::Relaxed);
            (c > 0).then_some((u32_of(i), c))
        })
        .collect();
    (
        HIST_COUNT[h as usize].load(Ordering::Relaxed),
        HIST_SUM[h as usize].load(Ordering::Relaxed),
        buckets,
    )
}

/// Zeroes every counter and histogram cell (session start).
pub(crate) fn reset() {
    for cell in &CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for row in &HIST_CELLS {
        for cell in row {
            cell.store(0, Ordering::Relaxed);
        }
    }
    for cell in &HIST_COUNT {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &HIST_SUM {
        cell.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        for window in [COUNTER_NAMES, HIST_NAMES] {
            for (i, a) in window.iter().enumerate() {
                assert!(
                    a.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "wire name {a} is not snake_case"
                );
                for b in window.iter().skip(i + 1) {
                    assert_ne!(a, b, "duplicate wire name");
                }
            }
        }
    }

    #[test]
    fn counter_enum_and_name_table_agree() {
        assert_eq!(Counter::ALL.len(), COUNTER_NAMES.len());
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c as usize, i);
            assert_eq!(c.name(), COUNTER_NAMES[i]);
        }
        assert_eq!(Hist::ALL.len(), HIST_NAMES.len());
        for (i, &h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h as usize, i);
            assert_eq!(h.name(), HIST_NAMES[i]);
        }
    }

    #[test]
    fn bucket_of_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < HIST_BUCKETS);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "{v} outside bucket {b} = [{lo}, {hi}]");
        }
        // Buckets tile the u64 range with no gaps or overlaps.
        let mut next = 0u64;
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(lo, next);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "last bucket must end at u64::MAX");
    }
}
