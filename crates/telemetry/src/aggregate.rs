//! The lock-striped live aggregator behind `/metrics`.
//!
//! Batch sessions assemble their report once, at [`Session::finish`]
//! (crate::Session::finish). A server cannot stop the world like that:
//! `/metrics` must reflect every request served *so far* while new
//! requests keep recording. The [`Aggregator`] closes that gap — each
//! request's scoped session hands over its aggregated span roots, the
//! aggregator folds them into per-root-name accumulators guarded by a
//! small array of stripe locks, and a scrape clones the stripes into a
//! regular [`TelemetryReport`].
//!
//! Striping is by root span name (FNV-1a), so two requests whose root
//! spans differ (`solve` vs some future `plan`) never contend, while two
//! requests with the same root serialize only for the duration of one
//! tree merge. Same name always maps to the same stripe, which is what
//! makes a snapshot a plain concatenation: no root can be split across
//! stripes.
//!
//! The merge itself is [`report::merge_span_data`] — identical semantics
//! to the session-level raw merge, so after N requests the aggregate
//! equals what one giant session over all N solves would have reported
//! (the concurrent property test in `tests/aggregate_concurrency.rs`
//! asserts exactly this).

use crate::counters::{self, Counter, Hist};
use crate::memprof;
use crate::report::{self, HistogramData, SpanData, TelemetryReport};
use std::sync::Mutex;

/// Number of stripe locks. A small power of two: the server's worker
/// counts sit well below this, and the hash is cheap enough that finer
/// striping would only buy contention we cannot measure.
const STRIPES: usize = 16;

/// FNV-1a over the root span name; stable, zero-dep, and good enough to
/// spread distinct names across [`STRIPES`] buckets.
fn stripe_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % (STRIPES as u64)) as usize
}

/// Cumulative cross-request span aggregation with striped locking.
///
/// Writers ([`absorb`](Aggregator::absorb)) lock one stripe per distinct
/// root name in their batch; readers ([`snapshot`](Aggregator::snapshot),
/// [`report`](Aggregator::report)) lock each stripe briefly in turn —
/// there is no global pause, so a scrape never blocks request progress
/// for longer than one stripe clone.
pub struct Aggregator {
    stripes: [Mutex<Vec<SpanData>>; STRIPES],
}

impl Default for Aggregator {
    fn default() -> Aggregator {
        Aggregator::new()
    }
}

impl Aggregator {
    /// An empty aggregator.
    pub fn new() -> Aggregator {
        Aggregator {
            stripes: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Folds one request's aggregated span roots (a
    /// [`ScopedSession::finish`](crate::ScopedSession::finish) result)
    /// into the cumulative totals.
    pub fn absorb(&self, roots: &[SpanData]) {
        for root in roots {
            let idx = stripe_of(&root.name);
            let Some(stripe) = self.stripes.get(idx) else {
                continue;
            };
            let mut held = stripe.lock().unwrap_or_else(|p| p.into_inner());
            report::merge_span_data(&mut held, root);
        }
    }

    /// A point-in-time clone of every aggregated root, sorted by name so
    /// the exposition is deterministic regardless of absorb order.
    pub fn snapshot(&self) -> Vec<SpanData> {
        let mut roots: Vec<SpanData> = Vec::new();
        for stripe in &self.stripes {
            let held = stripe.lock().unwrap_or_else(|p| p.into_inner());
            roots.extend(held.iter().cloned());
        }
        roots.sort_by(|a, b| a.name.cmp(&b.name));
        roots
    }

    /// A live [`TelemetryReport`]: the aggregated span snapshot plus the
    /// *current* registry counter/histogram totals and memory peaks. The
    /// registry cells are process-global and monotonic while the server's
    /// long-lived session keeps the gate open, so successive reports from
    /// here expose monotonically non-decreasing totals — exactly what a
    /// Prometheus scraper assumes.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport {
            spans: self.snapshot(),
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name().to_owned(), counters::total(c)))
                .collect(),
            histograms: Hist::ALL
                .iter()
                .map(|&h| {
                    let (count, sum, buckets) = counters::hist_raw(h);
                    HistogramData {
                        name: h.name().to_owned(),
                        count,
                        sum,
                        buckets,
                    }
                })
                .collect(),
            peak_live_bytes: memprof::global_peak(),
            peak_rss_bytes: memprof::peak_rss_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn span(name: &str, wall: u64, children: Vec<SpanData>) -> SpanData {
        SpanData {
            name: name.to_owned(),
            wall_ns: wall,
            count: 1,
            counters: BTreeMap::from([("greedy_iterations".to_owned(), wall / 10)]),
            mem: crate::SpanMem {
                allocs: 2,
                alloc_bytes: wall,
                frees: 1,
                free_bytes: wall / 2,
                peak_live_bytes: wall / 2,
                min_instance_allocs: 2,
            },
            children,
        }
    }

    #[test]
    fn absorb_merges_same_root_and_keeps_distinct_roots_apart() {
        let agg = Aggregator::new();
        agg.absorb(&[span("solve", 100, vec![span("setup", 10, vec![])])]);
        agg.absorb(&[span("solve", 50, vec![span("setup", 5, vec![])])]);
        agg.absorb(&[span("loadgen", 7, vec![])]);
        let snap = agg.snapshot();
        assert_eq!(snap.len(), 2);
        // Sorted by name: loadgen before solve.
        assert_eq!(snap[0].name, "loadgen");
        assert_eq!(snap[1].name, "solve");
        assert_eq!(snap[1].wall_ns, 150);
        assert_eq!(snap[1].count, 2);
        assert_eq!(snap[1].counters["greedy_iterations"], 15);
        assert_eq!(snap[1].children.len(), 1);
        assert_eq!(snap[1].children[0].wall_ns, 15);
        assert_eq!(snap[1].mem.alloc_bytes, 150);
        assert_eq!(snap[1].mem.peak_live_bytes, 50);
    }

    #[test]
    fn same_name_always_lands_on_the_same_stripe() {
        for name in ["solve", "loadgen", "a", "", "solve_core/k2"] {
            assert_eq!(stripe_of(name), stripe_of(name));
            assert!(stripe_of(name) < STRIPES);
        }
    }

    #[test]
    fn report_contains_every_registered_counter_and_histogram() {
        let agg = Aggregator::new();
        agg.absorb(&[span("solve", 10, vec![])]);
        let report = agg.report();
        for name in crate::COUNTER_NAMES {
            assert!(report.counters.contains_key(*name), "missing {name}");
        }
        assert_eq!(report.histograms.len(), crate::HIST_NAMES.len());
        assert_eq!(report.spans.len(), 1);
    }
}
