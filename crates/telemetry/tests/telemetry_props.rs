//! Property-based tests of the telemetry substrate: span trees are
//! well-nested, counter totals are monotone and sum-exact, the disabled
//! gate records nothing, histogram buckets tile `u64`, and reports
//! survive a JSON round trip byte-exactly.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays a few hundred deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.
//!
//! Telemetry state is process-global, so every test here serializes on a
//! file-local mutex *in addition to* the `Session` lock — tests that
//! assert on the disabled gate must not overlap with a recording session
//! on another test thread.

use mc3_core::rng::prelude::*;
use mc3_telemetry::{
    bucket_bounds, bucket_of, count, open_span_depth, record, span, span_add, timed_span, total,
    Counter, Hist, HistogramData, Session, SpanData, SpanMem, TelemetryReport, COUNTER_NAMES,
    HIST_BUCKETS,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

const CASES: u64 = 200;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// The `mem_*` counters are fed by the allocator hook, not by explicit
/// `count`/`span_add` calls, so exact-total assertions skip them (any
/// allocation on any thread while a session records moves them).
fn is_mem_counter(name: &str) -> bool {
    name.starts_with("mem_")
}

/// Counters whose totals move only via explicit increments.
fn explicit_counters() -> Vec<Counter> {
    Counter::ALL
        .iter()
        .copied()
        .filter(|c| !is_mem_counter(c.name()))
        .collect()
}

/// Σ over every node of a well-nestedness check: children's wall times
/// must not exceed their parent's (spans close LIFO, so a child's
/// interval is contained in its parent's).
fn assert_well_nested(node: &SpanData) {
    let child_sum: u64 = node.children.iter().map(|c| c.wall_ns).sum();
    assert!(
        child_sum <= node.wall_ns,
        "span '{}': children sum {} ns exceeds parent {} ns",
        node.name,
        child_sum,
        node.wall_ns
    );
    for child in &node.children {
        assert_well_nested(child);
    }
}

fn span_count(node: &SpanData) -> u64 {
    node.count + node.children.iter().map(span_count).sum::<u64>()
}

#[test]
fn random_span_trees_are_well_nested_and_counts_are_exact() {
    let _guard = locked();
    const NAMES: &[&str] = &["a", "b", "c", "d", "e"];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let session = Session::begin();
        let mut open: Vec<mc3_telemetry::SpanGuard> = Vec::new();
        let mut closed = 0u64;
        let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
        for _ in 0..rng.gen_range(1..60usize) {
            match rng.gen_range(0..3u32) {
                0 if open.len() < 6 => {
                    open.push(span(NAMES[rng.gen_range(0..NAMES.len())]));
                }
                1 if !open.is_empty() => {
                    drop(open.pop());
                    closed += 1;
                }
                _ => {
                    let pool = explicit_counters();
                    let c = pool[rng.gen_range(0..pool.len())];
                    let n = rng.gen_range(0..100u64);
                    span_add(c, n);
                    *expected.entry(c.name()).or_insert(0) += n;
                }
            }
        }
        closed += open.len() as u64;
        while let Some(guard) = open.pop() {
            drop(guard);
        }
        assert_eq!(open_span_depth(), 0, "seed {seed}: span stack must drain");
        let report = session.finish();
        assert_well_nested_roots(&report, seed);
        let recorded: u64 = report.spans.iter().map(span_count).sum();
        assert_eq!(
            recorded, closed,
            "seed {seed}: every closed span is reported once"
        );
        for name in COUNTER_NAMES {
            if is_mem_counter(name) {
                continue;
            }
            let want = expected.get(name).copied().unwrap_or(0);
            let got = report.counters.get(*name).copied();
            assert_eq!(got, Some(want), "seed {seed}: counter {name} total");
        }
    }
}

fn assert_well_nested_roots(report: &TelemetryReport, seed: u64) {
    for root in &report.spans {
        // Attach the seed to any failure via a wrapping assertion message.
        let child_sum: u64 = root.children.iter().map(|c| c.wall_ns).sum();
        assert!(
            child_sum <= root.wall_ns,
            "seed {seed}: root '{}' not well-nested",
            root.name
        );
        assert_well_nested(root);
    }
}

#[test]
fn counter_totals_are_monotone_under_increments() {
    let _guard = locked();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let session = Session::begin();
        let pool = explicit_counters();
        let c = pool[rng.gen_range(0..pool.len())];
        let mut last = total(c);
        assert_eq!(last, 0, "seed {seed}: session begin resets counters");
        let mut sum = 0u64;
        for _ in 0..rng.gen_range(1..40usize) {
            let n = rng.gen_range(0..1000u64);
            count(c, n);
            sum += n;
            let now = total(c);
            assert!(now >= last, "seed {seed}: counter went backwards");
            last = now;
        }
        assert_eq!(total(c), sum, "seed {seed}: final total is the exact sum");
        let report = session.finish();
        assert_eq!(report.counters[c.name()], sum);
    }
}

#[test]
fn disabled_gate_records_nothing() {
    let _guard = locked();
    // Reset global state, then make sure the gate is off.
    drop(Session::begin().finish());
    assert!(!mc3_telemetry::is_enabled());
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD15AB1ED ^ seed);
        let c = Counter::ALL[rng.gen_range(0..Counter::ALL.len())];
        let h = Hist::ALL[rng.gen_range(0..Hist::ALL.len())];
        let before = total(c);
        let _span = span("disabled");
        assert_eq!(
            open_span_depth(),
            0,
            "seed {seed}: disabled span must not open"
        );
        count(c, rng.gen_range(1..50u64));
        span_add(c, rng.gen_range(1..50u64));
        record(h, rng.gen_range(0..1000u64));
        let t = timed_span("disabled.timed");
        assert_eq!(open_span_depth(), 0);
        let wall = t.finish();
        assert!(wall.as_nanos() < u128::MAX);
        assert_eq!(total(c), before, "seed {seed}: disabled counter moved");
        assert_eq!(
            mc3_telemetry::hist_count(h),
            0,
            "seed {seed}: disabled hist moved"
        );
    }
    // A fresh session right after sees a clean slate: no spans leaked in.
    let report = Session::begin().finish();
    assert!(
        report.spans.is_empty(),
        "disabled ops must not leave spans behind"
    );
    // mem_* totals are excluded: another test thread allocating inside
    // the begin/finish window would legitimately move them.
    assert!(report
        .counters
        .iter()
        .all(|(name, &v)| is_mem_counter(name) || v == 0));
}

#[test]
fn histogram_buckets_tile_u64_and_contain_their_values() {
    let mut rng = StdRng::seed_from_u64(0x81C0);
    for case in 0..CASES {
        let v: u64 = match case % 4 {
            0 => rng.gen_range(0..16u64),
            1 => rng.gen_range(0..(1u64 << 32)),
            2 => rng.next_u64(),
            _ => 1u64 << rng.gen_range(0..64u32),
        };
        let b = bucket_of(v);
        assert!(b < HIST_BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        assert!(
            lo <= v && v <= hi,
            "value {v} outside bucket {b} = [{lo}, {hi}]"
        );
        if b > 0 {
            let (_, prev_hi) = bucket_bounds(b - 1);
            assert_eq!(
                lo,
                prev_hi + 1,
                "buckets {b} and {} must be adjacent",
                b - 1
            );
        }
    }
}

#[test]
fn histogram_count_and_sum_match_recorded_values() {
    let _guard = locked();
    for seed in 0..50 {
        let mut rng = StdRng::seed_from_u64(0x415 ^ seed);
        let session = Session::begin();
        let mut n = 0u64;
        let mut sum = 0u64;
        for _ in 0..rng.gen_range(0..64usize) {
            let v = rng.gen_range(0..10_000u64);
            record(Hist::ComponentSize, v);
            n += 1;
            sum += v;
        }
        let report = session.finish();
        let h = report
            .histograms
            .iter()
            .find(|h| h.name == Hist::ComponentSize.name())
            .expect("registered histogram present");
        assert_eq!((h.count, h.sum), (n, sum), "seed {seed}");
        let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, n, "seed {seed}: bucket counts sum to n");
    }
}

fn random_span_data(rng: &mut StdRng, depth: usize) -> SpanData {
    const NAMES: &[&str] = &["solve", "setup", "k2.solve", "dinic.max_flow", "x"];
    let n_children = if depth >= 3 {
        0
    } else {
        rng.gen_range(0..3usize)
    };
    let mut counters = BTreeMap::new();
    for _ in 0..rng.gen_range(0..3usize) {
        let c = Counter::ALL[rng.gen_range(0..Counter::ALL.len())];
        counters.insert(c.name().to_owned(), rng.next_u64() >> 1);
    }
    SpanData {
        name: NAMES[rng.gen_range(0..NAMES.len())].to_owned(),
        wall_ns: rng.next_u64() >> 1,
        count: rng.gen_range(1..4u64),
        counters,
        mem: SpanMem {
            allocs: rng.next_u64() >> 1,
            alloc_bytes: rng.next_u64() >> 1,
            frees: rng.next_u64() >> 1,
            free_bytes: rng.next_u64() >> 1,
            peak_live_bytes: rng.next_u64() >> 1,
            min_instance_allocs: rng.next_u64() >> 1,
        },
        children: (0..n_children)
            .map(|_| random_span_data(rng, depth + 1))
            .collect(),
    }
}

#[test]
fn random_reports_round_trip_through_json() {
    // Not a session test, but heavily allocating: serialize with the
    // session-holding tests so their mem counters stay unpolluted.
    let _guard = locked();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x10_AD ^ seed);
        let report = TelemetryReport {
            spans: (0..rng.gen_range(0..4usize))
                .map(|_| random_span_data(&mut rng, 0))
                .collect(),
            counters: Counter::ALL
                .iter()
                .map(|c| (c.name().to_owned(), rng.next_u64() >> 1))
                .collect(),
            histograms: Hist::ALL
                .iter()
                .map(|h| HistogramData {
                    name: h.name().to_owned(),
                    count: rng.gen_range(0..100u64),
                    sum: rng.next_u64() >> 1,
                    buckets: (0..rng.gen_range(0..5u32))
                        .map(|i| (i, rng.gen_range(1..50u64)))
                        .collect(),
                })
                .collect(),
            peak_live_bytes: rng.next_u64() >> 1,
            // Exercise both the measured and the not-measured (null) arm.
            peak_rss_bytes: if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(rng.next_u64() >> 1)
            },
        };
        let text = report.to_json().to_string_pretty();
        let parsed = mc3_core::json::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: emitted JSON must parse: {e:?}"));
        let back = TelemetryReport::from_json(&parsed)
            .unwrap_or_else(|e| panic!("seed {seed}: strict parse failed: {e}"));
        assert_eq!(back, report, "seed {seed}: JSON round trip must be exact");
    }
}

#[test]
fn disabled_gate_tracks_no_allocations() {
    let _guard = locked();
    // Reset all counters, then close the gate again.
    drop(Session::begin().finish());
    assert!(!mc3_telemetry::is_enabled());
    let v: Vec<u64> = (0..1000).collect();
    drop(v);
    assert_eq!(total(Counter::MemAllocs), 0);
    assert_eq!(total(Counter::MemAllocBytes), 0);
    assert_eq!(total(Counter::MemFrees), 0);
    assert_eq!(mc3_telemetry::hist_count(Hist::AllocSize), 0);
}

#[test]
fn recorded_allocations_attribute_to_the_open_span() {
    let _guard = locked();
    let session = Session::begin();
    {
        let _s = span("alloc.host");
        let v = vec![0u8; 4096];
        drop(v);
    }
    let report = session.finish();
    let node = report
        .spans
        .iter()
        .find(|s| s.name == "alloc.host")
        .expect("span recorded");
    assert!(node.mem.allocs >= 1, "{:?}", node.mem);
    assert!(node.mem.alloc_bytes >= 4096, "{:?}", node.mem);
    assert!(node.mem.frees >= 1, "{:?}", node.mem);
    assert!(node.mem.peak_live_bytes >= 4096, "{:?}", node.mem);
    assert!(report.counters["mem_allocs"] >= 1);
    assert!(report.counters["mem_alloc_bytes"] >= 4096);
    assert!(report.peak_live_bytes >= 4096);
    let h = report
        .histograms
        .iter()
        .find(|h| h.name == Hist::AllocSize.name())
        .expect("alloc size histogram present");
    assert!(h.count >= 1);
}

/// Deterministic allocation script: the same `(name, seed)` performs the
/// same allocation sequence whether run inline or on a worker thread.
fn mem_workload(name: &'static str, seed: u64) {
    let _s = span(name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keep: Vec<Vec<u8>> = Vec::new();
    for _ in 0..rng.gen_range(1..12usize) {
        keep.push(vec![0u8; rng.gen_range(1..2048usize)]);
    }
}

#[test]
fn parallel_and_sequential_span_mem_totals_agree() {
    let _guard = locked();
    const WORKERS: [&str; 4] = ["mem.w0", "mem.w1", "mem.w2", "mem.w3"];
    for case in 0..CASES {
        let session = Session::begin();
        for (i, name) in WORKERS.iter().enumerate() {
            mem_workload(name, case ^ ((i as u64) << 32));
        }
        let seq = session.finish();

        let session = Session::begin();
        std::thread::scope(|scope| {
            for (i, name) in WORKERS.iter().enumerate() {
                scope.spawn(move || mem_workload(name, case ^ ((i as u64) << 32)));
            }
        });
        let par = session.finish();

        for name in WORKERS {
            let a = seq
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("case {case}: sequential span {name} missing"));
            let b = par
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("case {case}: parallel span {name} missing"));
            assert!(a.mem.allocs >= 1, "case {case}: span {name} saw no allocs");
            assert_eq!(
                (
                    a.mem.allocs,
                    a.mem.alloc_bytes,
                    a.mem.frees,
                    a.mem.free_bytes
                ),
                (
                    b.mem.allocs,
                    b.mem.alloc_bytes,
                    b.mem.frees,
                    b.mem.free_bytes
                ),
                "case {case}: span {name} parallel ≡ sequential totals"
            );
            assert_eq!(
                a.mem.peak_live_bytes, b.mem.peak_live_bytes,
                "case {case}: span {name} relative live peak"
            );
        }
    }
}

#[test]
fn timed_span_wall_matches_reported_node_exactly() {
    let _guard = locked();
    let session = Session::begin();
    let t = timed_span("phase");
    std::thread::sleep(std::time::Duration::from_millis(2));
    let wall = t.finish();
    let report = session.finish();
    let node = report
        .spans
        .iter()
        .find(|s| s.name == "phase")
        .expect("timed span recorded");
    assert_eq!(u128::from(node.wall_ns), wall.as_nanos());
}
