//! Concurrency property for the serving-plane aggregation pipeline: the
//! lock-striped [`Aggregator`] absorbing per-request [`ScopedSession`]
//! trees from many threads at once must end up **identical** to a
//! sequential reference merge of the same trees — per-span counts, wall
//! totals, counters and memory attribution alike.

use mc3_telemetry::{Aggregator, ScopedSession, Session, SpanData};
use std::sync::Mutex;

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 25;

/// One simulated request: a root span (name chosen per thread so stripes
/// and same-name merging both get exercised) with a counted child.
fn simulate_request(thread: usize, i: usize) -> Vec<SpanData> {
    let scope = ScopedSession::begin();
    {
        // Half the roots share one name across all threads (same-stripe
        // contention), half are per-thread (distinct roots).
        let name: &'static str = if i % 2 == 0 {
            "request"
        } else {
            match thread % 4 {
                0 => "req_a",
                1 => "req_b",
                2 => "req_c",
                _ => "req_d",
            }
        };
        let _root = mc3_telemetry::span(name);
        let _child = mc3_telemetry::span("child");
        mc3_telemetry::span_add(mc3_telemetry::Counter::GreedyIterations, 1 + i as u64);
        std::hint::black_box(vec![0u8; 64 + i]);
    }
    scope.finish()
}

#[test]
fn concurrent_absorb_equals_sequential_reference_merge() {
    let session = Session::begin();
    let concurrent = Aggregator::new();
    let recorded: Mutex<Vec<Vec<SpanData>>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let concurrent = &concurrent;
            let recorded = &recorded;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_THREAD {
                    let roots = simulate_request(t, i);
                    assert!(!roots.is_empty(), "scope captured nothing");
                    concurrent.absorb(&roots);
                    recorded
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(roots);
                }
            });
        }
    });

    // Sequential reference: absorb the very same per-request trees one by
    // one on this thread.
    let reference = Aggregator::new();
    let recorded = recorded.into_inner().unwrap_or_else(|p| p.into_inner());
    assert_eq!(recorded.len(), THREADS * REQUESTS_PER_THREAD);
    for roots in &recorded {
        reference.absorb(roots);
    }

    let got = concurrent.snapshot();
    let want = reference.snapshot();
    assert_eq!(got, want, "concurrent aggregate diverged from reference");

    // Cross-check the totals against first principles: every request
    // produced exactly one root with one `child` beneath it.
    let total_roots: u64 = got.iter().map(|s| s.count).sum();
    assert_eq!(total_roots, (THREADS * REQUESTS_PER_THREAD) as u64);
    for root in &got {
        let child = root
            .children
            .iter()
            .find(|c| c.name == "child")
            .expect("child span merged under every root");
        assert_eq!(child.count, root.count);
        assert!(root.wall_ns >= child.wall_ns);
    }
    let shared = got
        .iter()
        .find(|s| s.name == "request")
        .expect("shared-name root present");
    // Even-indexed requests of every thread share this root.
    assert_eq!(
        shared.count,
        (THREADS * REQUESTS_PER_THREAD.div_ceil(2)) as u64
    );

    drop(session);
}
