//! Property-based tests of the simplex solver: feasibility of returned
//! points, agreement with a dense grid search on small covering LPs, and
//! weak-duality-style sanity bounds.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_lp::{ConstraintOp, LpProblem, LpStatus};

const CASES: u64 = 250;

/// Random covering LP: min c·x s.t. for each row, a 0/1 subset of the
/// variables sums to ≥ 1.
fn rand_covering_lp(rng: &mut StdRng) -> LpProblem {
    let nv = rng.gen_range(1..6usize);
    let costs: Vec<f64> = (0..nv).map(|_| rng.gen_range(1.0..10.0)).collect();
    let mut p = LpProblem::minimize(costs);
    let nrows = rng.gen_range(1..6usize);
    for _ in 0..nrows {
        let coeffs: Vec<(usize, f64)> = (0..nv)
            .filter(|_| rng.gen_bool(0.5))
            .map(|i| (i, 1.0))
            .collect();
        if !coeffs.is_empty() {
            p.constraint(coeffs, ConstraintOp::Ge, 1.0);
        }
    }
    p
}

fn feasible(p: &LpProblem, x: &[f64], tol: f64) -> bool {
    x.iter().all(|&v| v >= -tol)
        && p.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            match c.op {
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
}

#[test]
fn covering_lp_solutions_are_feasible_and_optimalish() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rand_covering_lp(&mut rng);
        let sol = p.solve();
        assert_eq!(sol.status, LpStatus::Optimal, "seed {seed}");
        assert!(
            feasible(&p, &sol.values, 1e-6),
            "infeasible point {:?}, seed {seed}",
            sol.values
        );

        // covering LPs with 0/1 rows have an optimal solution in [0, 1]^n;
        // compare against a coarse grid search over {0, 0.25, ..., 1}^n
        let nv = p.num_vars();
        if nv <= 4 {
            let steps = 5u32;
            let mut best = f64::INFINITY;
            let total = steps.pow(nv as u32);
            for code in 0..total {
                let mut x = vec![0.0; nv];
                let mut c = code;
                for v in x.iter_mut() {
                    *v = (c % steps) as f64 / (steps - 1) as f64;
                    c /= steps;
                }
                if feasible(&p, &x, 1e-9) {
                    let obj: f64 = x.iter().zip(&p.objective).map(|(a, b)| a * b).sum();
                    best = best.min(obj);
                }
            }
            // the LP optimum is at most the best grid point
            assert!(
                sol.objective_value <= best + 1e-6,
                "simplex {} worse than grid {best}, seed {seed}",
                sol.objective_value
            );
        }
    }
}

#[test]
fn objective_value_matches_values() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rand_covering_lp(&mut rng);
        let sol = p.solve();
        assert_eq!(sol.status, LpStatus::Optimal, "seed {seed}");
        let recomputed: f64 = sol
            .values
            .iter()
            .zip(&p.objective)
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (recomputed - sol.objective_value).abs() < 1e-7,
            "objective mismatch, seed {seed}"
        );
    }
}

#[test]
fn scaling_costs_scales_the_optimum() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rand_covering_lp(&mut rng);
        let factor = rng.gen_range(1..5u32);
        let base = p.solve();
        let mut scaled = p.clone();
        for c in scaled.objective.iter_mut() {
            *c *= factor as f64;
        }
        let s = scaled.solve();
        assert_eq!(base.status, LpStatus::Optimal, "seed {seed}");
        assert_eq!(s.status, LpStatus::Optimal, "seed {seed}");
        assert!(
            (s.objective_value - factor as f64 * base.objective_value).abs() < 1e-5,
            "scaling mismatch, seed {seed}"
        );
    }
}

#[test]
fn adding_constraints_never_improves() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = rand_covering_lp(&mut rng);
        let base = p.solve();
        let mut tighter = p.clone();
        // add "sum of all variables ≥ 1.5"
        let all: Vec<(usize, f64)> = (0..p.num_vars()).map(|i| (i, 1.0)).collect();
        tighter.constraint(all, ConstraintOp::Ge, 1.5);
        let t = tighter.solve();
        assert_eq!(t.status, LpStatus::Optimal, "seed {seed}");
        assert!(
            t.objective_value >= base.objective_value - 1e-7,
            "tightening improved objective, seed {seed}"
        );
    }
}
