//! Two-phase dense tableau simplex with streak-triggered anti-cycling.
//!
//! The problem is brought to standard form `min c·x, Ax = b, x ≥ 0, b ≥ 0`
//! by adding slack variables (for `≤`), surplus variables (for `≥`) and
//! artificial variables (for `≥` and `=` rows, and any row whose natural
//! slack cannot start in the basis). Phase 1 minimizes the sum of
//! artificials; if it ends positive the program is infeasible. Phase 2
//! optimizes the real objective over the feasible basis.
//!
//! # Pivot selection and anti-cycling
//!
//! The entering column is chosen by **Dantzig's rule** (most negative
//! reduced cost) — few pivots in practice but susceptible to cycling on
//! degenerate bases. After [`DEGENERATE_STREAK_LIMIT`] *consecutive*
//! degenerate pivots (leaving ratio ≈ 0) the solver switches to **Bland's
//! rule** (smallest-index entering column), which provably cannot cycle;
//! the first non-degenerate pivot switches back to Dantzig. A hard pivot
//! bound backstops both phases: when it is exhausted the solve returns
//! [`LpStatus::IterationLimit`] instead of spinning, with the pivot count
//! attached, so callers get a diagnosable outcome on pathological inputs.
//!
//! Pivot effort is exported through `mc3-telemetry` (`lp_pivots`,
//! `lp_degenerate_pivots` counters and the `lp_iterations` histogram).

use crate::types::{ConstraintOp, LpProblem, LpSolution, LpStatus};

const EPS: f64 = 1e-9;

/// Consecutive degenerate pivots tolerated under Dantzig's rule before the
/// entering-column choice falls back to Bland's anti-cycling rule.
pub const DEGENERATE_STREAK_LIMIT: u64 = 16;

/// Running pivot statistics for one solve (both phases).
#[derive(Debug, Clone, Copy, Default)]
struct PivotStats {
    pivots: u64,
    degenerate: u64,
}

struct Tableau {
    /// `rows × (total_cols + 1)`; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `total_cols + 1`.
    obj: Vec<f64>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.a[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor.abs() > EPS {
                for (v, &p) in arow.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * p;
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for (v, &p) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * p;
            }
        }
        self.basis[row] = col;
    }

    /// The entering column under Dantzig's rule: most negative reduced
    /// cost, smallest index on (exact) ties. `None` means optimal.
    fn entering_dantzig(&self, allowed_cols: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..allowed_cols {
            let rc = self.obj[c];
            if rc < -EPS && best.is_none_or(|(_, b)| rc < b) {
                best = Some((c, rc));
            }
        }
        best.map(|(c, _)| c)
    }

    /// The entering column under Bland's rule: smallest index with a
    /// negative reduced cost. `None` means optimal.
    fn entering_bland(&self, allowed_cols: usize) -> Option<usize> {
        (0..allowed_cols).find(|&c| self.obj[c] < -EPS)
    }

    /// Runs simplex iterations until optimal, unbounded or out of pivot
    /// budget. `allowed_cols` bounds the columns eligible to enter (used
    /// to bar artificials in phase 2); `max_pivots` is the remaining
    /// budget shared across phases, decremented through `stats`.
    fn optimize(
        &mut self,
        allowed_cols: usize,
        max_pivots: u64,
        stats: &mut PivotStats,
    ) -> LpStatus {
        // Anti-cycling state: Dantzig's rule until a run of degenerate
        // pivots suggests the basis is stalling, then Bland's rule, which
        // cannot cycle; any strict-progress pivot re-arms Dantzig.
        let mut bland = false;
        let mut degenerate_streak = 0u64;
        loop {
            let entering = if bland {
                self.entering_bland(allowed_cols)
            } else {
                self.entering_dantzig(allowed_cols)
            };
            let Some(col) = entering else {
                return LpStatus::Optimal;
            };
            // Budget-check only once a pivot is actually required, so an
            // exactly-sufficient budget still reports `Optimal`.
            if stats.pivots >= max_pivots {
                return LpStatus::IterationLimit;
            }
            // Ratio test; ties broken by smallest basis index (Bland).
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.a.len() {
                let coeff = self.a[r][col];
                if coeff > EPS {
                    let ratio = self.a[r][self.cols] / coeff;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, ratio)) = leaving else {
                return LpStatus::Unbounded;
            };
            stats.pivots += 1;
            if ratio <= EPS {
                stats.degenerate += 1;
                degenerate_streak += 1;
                if degenerate_streak >= DEGENERATE_STREAK_LIMIT {
                    bland = true;
                }
            } else {
                degenerate_streak = 0;
                bland = false;
            }
            self.pivot(row, col);
        }
    }
}

/// The default hard pivot bound for a tableau with `rows` rows and `cols`
/// columns: generous for any LP the workspace produces, yet finite, so a
/// pathological instance surfaces as [`LpStatus::IterationLimit`] instead
/// of an unbounded spin.
pub fn default_pivot_limit(rows: usize, cols: usize) -> u64 {
    32 * (rows as u64 + cols as u64) + 1024
}

/// Solves `problem` with the two-phase simplex method under the default
/// pivot bound.
pub fn solve(problem: &LpProblem) -> LpSolution {
    let rows = problem.constraints.len();
    let cols = problem.num_vars() + 2 * rows;
    solve_with_limit(problem, default_pivot_limit(rows, cols))
}

/// Solves `problem` with an explicit hard pivot bound shared by both
/// phases. Returns [`LpStatus::IterationLimit`] (with the pivot count in
/// [`LpSolution::pivots`]) when the bound is exhausted.
pub fn solve_with_limit(problem: &LpProblem, max_pivots: u64) -> LpSolution {
    let _span = mc3_telemetry::span("lp.simplex");
    let mut stats = PivotStats::default();
    let solution = solve_inner(problem, max_pivots, &mut stats);
    mc3_telemetry::span_add(mc3_telemetry::Counter::LpPivots, stats.pivots);
    mc3_telemetry::span_add(mc3_telemetry::Counter::LpDegeneratePivots, stats.degenerate);
    mc3_telemetry::record(mc3_telemetry::Hist::LpIterations, stats.pivots);
    solution
}

fn solve_inner(problem: &LpProblem, max_pivots: u64, stats: &mut PivotStats) -> LpSolution {
    let n = problem.num_vars();
    let m = problem.constraints.len();

    // Column layout: [0, n) decision vars, [n, n + m) slack/surplus (one per
    // row, possibly unused), [n + m, n + m + m) artificials (one per row,
    // possibly unused).
    let slack0 = n;
    let art0 = n + m;
    let cols = n + 2 * m;

    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut any_artificial = false;

    for (r, con) in problem.constraints.iter().enumerate() {
        let mut rhs = con.rhs;
        let mut sign = 1.0;
        let mut op = con.op;
        if rhs < 0.0 {
            // Normalize to b ≥ 0, flipping the inequality.
            rhs = -rhs;
            sign = -1.0;
            op = match op {
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        for &(i, coef) in &con.coeffs {
            a[r][i] += sign * coef;
        }
        a[r][cols] = rhs;
        match op {
            ConstraintOp::Le => {
                a[r][slack0 + r] = 1.0;
                basis[r] = slack0 + r; // slack starts basic
            }
            ConstraintOp::Ge => {
                a[r][slack0 + r] = -1.0; // surplus
                a[r][art0 + r] = 1.0;
                basis[r] = art0 + r;
                any_artificial = true;
            }
            ConstraintOp::Eq => {
                a[r][art0 + r] = 1.0;
                basis[r] = art0 + r;
                any_artificial = true;
            }
        }
    }

    let mut t = Tableau {
        a,
        obj: vec![0.0; cols + 1],
        basis,
        cols,
    };

    if any_artificial {
        // Phase 1: minimize the sum of artificial variables. Reduced costs:
        // obj = Σ(artificial columns) expressed in terms of non-basic vars.
        for c in art0..art0 + m {
            t.obj[c] = 1.0;
        }
        // Make reduced costs consistent with the starting basis (price out
        // basic artificials).
        for r in 0..m {
            if t.basis[r] >= art0 {
                let row = t.a[r].clone();
                for (v, &p) in t.obj.iter_mut().zip(row.iter()) {
                    *v -= p;
                }
            }
        }
        let status = t.optimize(cols, max_pivots, stats);
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 is bounded below by 0");
        if status == LpStatus::IterationLimit {
            return LpSolution {
                status,
                objective_value: f64::NAN,
                values: vec![],
                pivots: stats.pivots,
            };
        }
        let phase1_value = -t.obj[cols];
        if phase1_value > 1e-7 {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective_value: f64::NAN,
                values: vec![],
                pivots: stats.pivots,
            };
        }
        // Drive any remaining basic artificials out of the basis (degenerate
        // at zero) or drop their rows if all-zero.
        for r in 0..m {
            if t.basis[r] >= art0 {
                let mut pivot_col = None;
                for c in 0..art0 {
                    if t.a[r][c].abs() > EPS {
                        pivot_col = Some(c);
                        break;
                    }
                }
                if let Some(c) = pivot_col {
                    t.pivot(r, c);
                }
                // else: redundant row; harmless to leave the zero artificial.
            }
        }
    }

    // Phase 2 objective: price out the real objective over the current basis.
    t.obj.iter_mut().for_each(|v| *v = 0.0);
    for (i, &c) in problem.objective.iter().enumerate() {
        t.obj[i] = c;
    }
    for r in 0..m {
        let b = t.basis[r];
        if b < cols {
            let cost = if b < n { problem.objective[b] } else { 0.0 };
            if cost.abs() > EPS {
                let row = t.a[r].clone();
                for (v, &p) in t.obj.iter_mut().zip(row.iter()) {
                    *v -= cost * p;
                }
            }
        }
    }

    // Artificials may not re-enter.
    let status = t.optimize(art0, max_pivots, stats);
    match status {
        LpStatus::Unbounded => {
            return LpSolution {
                status,
                objective_value: f64::NEG_INFINITY,
                values: vec![],
                pivots: stats.pivots,
            }
        }
        LpStatus::IterationLimit => {
            return LpSolution {
                status,
                objective_value: f64::NAN,
                values: vec![],
                pivots: stats.pivots,
            }
        }
        LpStatus::Optimal | LpStatus::Infeasible => {}
    }

    let mut values = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            values[b] = t.a[r][cols].max(0.0);
        }
    }
    let objective_value = values
        .iter()
        .zip(problem.objective.iter())
        .map(|(x, c)| x * c)
        .sum();
    LpSolution {
        status: LpStatus::Optimal,
        objective_value,
        values,
        pivots: stats.pivots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::*;

    fn ge(coeffs: Vec<(usize, f64)>, rhs: f64) -> LpConstraint {
        LpConstraint {
            coeffs,
            op: ConstraintOp::Ge,
            rhs,
        }
    }

    #[test]
    fn trivial_single_variable() {
        let mut p = LpProblem::minimize(vec![3.0]);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[0] - 2.0).abs() < 1e-7);
        assert!((s.objective_value - 6.0).abs() < 1e-7);
        assert!(s.pivots > 0);
    }

    #[test]
    fn unconstrained_minimum_is_zero() {
        let p = LpProblem::minimize(vec![1.0, 5.0]);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.objective_value.abs() < 1e-9);
    }

    #[test]
    fn covering_lp_fractional_optimum() {
        // Vertex cover LP of a triangle: min x0+x1+x2, xi+xj ≥ 1 → ½ each.
        let mut p = LpProblem::minimize(vec![1.0, 1.0, 1.0]);
        p.constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
        p.constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Ge, 1.0);
        p.constraint(vec![(0, 1.0), (2, 1.0)], ConstraintOp::Ge, 1.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective_value - 1.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = LpProblem::minimize(vec![1.0]);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        assert_eq!(p.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x0 with x0 only bounded below → unbounded.
        let mut p = LpProblem::minimize(vec![-1.0]);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(p.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x0 + x1  s.t. x0 + x1 = 3, x0 - x1 = 1 → (2, 1)
        let mut p = LpProblem::minimize(vec![1.0, 1.0]);
        p.constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Eq, 3.0);
        p.constraint(vec![(0, 1.0), (1, -1.0)], ConstraintOp::Eq, 1.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[0] - 2.0).abs() < 1e-7);
        assert!((s.values[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x0 ≤ 5 written as -x0 ≥ -5
        let mut p = LpProblem::minimize(vec![-1.0]);
        p.constraints.push(ge(vec![(0, -1.0)], -5.0));
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[0] - 5.0).abs() < 1e-7, "{:?}", s.values);
    }

    #[test]
    fn mixed_constraints() {
        // min 2x0 + x1, x0 + x1 ≥ 4, x0 ≤ 1 → x0=1, x1=3, obj=5
        let mut p = LpProblem::minimize(vec![2.0, 1.0]);
        p.constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective_value - 4.0).abs() < 1e-7); // actually x0=0, x1=4 is cheaper (obj 4)
        assert!((s.values[1] - 4.0).abs() < 1e-7);
    }

    #[test]
    fn set_cover_lp_integral_when_disjoint() {
        // Two disjoint elements, two sets covering one each, one set
        // covering both at cost 1.5: LP picks the combined set.
        let mut p = LpProblem::minimize(vec![1.0, 1.0, 1.5]);
        p.constraint(vec![(0, 1.0), (2, 1.0)], ConstraintOp::Ge, 1.0);
        p.constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Ge, 1.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective_value - 1.5).abs() < 1e-7);
        assert!((s.values[2] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_pivots_terminate() {
        // A classic degenerate configuration; the streak-triggered Bland
        // fallback must terminate.
        let mut p = LpProblem::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        p.constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.constraint(vec![(2, 1.0)], ConstraintOp::Le, 1.0);
        let s = p.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective_value - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn pivot_limit_surfaces_as_iteration_limit() {
        // Any LP needing at least one pivot trips a zero budget.
        let mut p = LpProblem::minimize(vec![3.0]);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve_with_limit(&p, 0);
        assert_eq!(s.status, LpStatus::IterationLimit);
        assert_eq!(s.pivots, 0);
        assert!(s.values.is_empty());
        // The same LP solves fine under the default budget.
        assert_eq!(p.solve().status, LpStatus::Optimal);
    }

    #[test]
    fn phase2_pivot_limit_also_surfaces() {
        // ≥-rows force a phase 1; give exactly enough budget for phase 1
        // to finish but not phase 2 by probing increasing budgets until
        // the first Optimal, asserting every smaller budget reports
        // IterationLimit (never a wrong answer).
        let mut p = LpProblem::minimize(vec![2.0, 1.0, 3.0]);
        p.constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 4.0);
        p.constraint(vec![(1, 1.0), (2, 1.0)], ConstraintOp::Ge, 2.0);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Le, 1.0);
        let full = p.solve();
        assert_eq!(full.status, LpStatus::Optimal);
        for budget in 0..full.pivots {
            let s = solve_with_limit(&p, budget);
            assert_eq!(s.status, LpStatus::IterationLimit, "budget {budget}");
            assert!(s.pivots <= budget);
        }
        let s = solve_with_limit(&p, full.pivots);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective_value - full.objective_value).abs() < 1e-9);
    }

    #[test]
    fn random_covering_lps_satisfy_constraints() {
        use mc3_core::rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..50 {
            let nv = rng.gen_range(2..8usize);
            let nc = rng.gen_range(1..8usize);
            let mut p = LpProblem::minimize((0..nv).map(|_| rng.gen_range(1.0..10.0)).collect());
            for _ in 0..nc {
                let coeffs: Vec<(usize, f64)> = (0..nv)
                    .filter(|_| rng.gen_bool(0.5))
                    .map(|i| (i, 1.0))
                    .collect();
                if coeffs.is_empty() {
                    continue;
                }
                p.constraint(coeffs, ConstraintOp::Ge, 1.0);
            }
            let s = p.solve();
            assert_eq!(s.status, LpStatus::Optimal);
            for con in &p.constraints {
                let lhs: f64 = con.coeffs.iter().map(|&(i, c)| c * s.values[i]).sum();
                assert!(lhs >= con.rhs - 1e-6, "violated: {lhs} < {}", con.rhs);
            }
            assert!(s.values.iter().all(|&v| v >= -1e-9));
        }
    }
}
