//! Problem and solution types for the simplex solver.

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct LpConstraint {
    /// `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint direction.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization LP over non-negative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients (`minimize c·x`); its length fixes the number
    /// of variables.
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<LpConstraint>,
}

impl LpProblem {
    /// A minimization problem with the given objective and no constraints.
    pub fn minimize(objective: Vec<f64>) -> LpProblem {
        LpProblem {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds a constraint; coefficients for out-of-range variables panic in
    /// debug builds.
    pub fn constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    ) -> &mut Self {
        debug_assert!(coeffs.iter().all(|&(i, _)| i < self.num_vars()));
        self.constraints.push(LpConstraint { coeffs, op, rhs });
        self
    }

    /// Solves with the two-phase simplex.
    pub fn solve(&self) -> LpSolution {
        crate::simplex::solve(self)
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The hard pivot bound was exhausted before reaching optimality
    /// (anti-cycling backstop; see [`crate::simplex::solve_with_limit`]).
    IterationLimit,
}

/// An LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Whether the solve succeeded.
    pub status: LpStatus,
    /// `c·x` at the solution (meaningful only when `Optimal`).
    pub objective_value: f64,
    /// The variable assignment (meaningful only when `Optimal`).
    pub values: Vec<f64>,
    /// Simplex pivots performed across both phases, including partial
    /// progress on non-`Optimal` outcomes.
    pub pivots: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_variables() {
        let mut p = LpProblem::minimize(vec![1.0, 1.0, 1.0]);
        assert_eq!(p.num_vars(), 3);
        p.constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert_eq!(p.constraints.len(), 1);
    }
}
