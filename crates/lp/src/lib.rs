#![warn(missing_docs)]

//! A dense, two-phase primal simplex LP solver.
//!
//! The paper's Algorithm 3 runs "the LP-based algorithm for WSC \[50\]"
//! (Vazirani): solve the LP relaxation of Weighted Set Cover and round every
//! variable with `x_s ≥ 1/f`. This crate provides the LP solver that step
//! needs, as a self-contained substrate with no external dependencies.
//!
//! Scope: covering LPs arising from MC³ reductions are small-to-medium and
//! dense tableau simplex is simple, exact enough (`f64` with an explicit
//! tolerance) and easily verified; for large instances `mc3-setcover`
//! switches to the combinatorial primal–dual algorithm with the same
//! `f`-approximation guarantee, so the simplex never needs to scale past a
//! few thousand rows/columns.
//!
//! # Example
//!
//! ```
//! use mc3_lp::{ConstraintOp, LpProblem, LpStatus};
//!
//! // min x0 + 2 x1  s.t.  x0 + x1 ≥ 1, x1 ≥ 0.25, x ≥ 0
//! let mut p = LpProblem::minimize(vec![1.0, 2.0]);
//! p.constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
//! p.constraint(vec![(1, 1.0)], ConstraintOp::Ge, 0.25);
//! let sol = p.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective_value - 1.25).abs() < 1e-7);
//! assert!((sol.values[0] - 0.75).abs() < 1e-7);
//! ```

pub mod simplex;
pub mod types;

pub use simplex::{default_pivot_limit, solve, solve_with_limit, DEGENERATE_STREAK_LIMIT};
pub use types::{ConstraintOp, LpConstraint, LpProblem, LpSolution, LpStatus};
