//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p mc3-bench --bin experiments -- all [--full]
//! cargo run --release -p mc3-bench --bin experiments -- fig3a fig3d
//! cargo run --release -p mc3-bench --bin experiments -- all --telemetry tel.json
//! ```
//!
//! With `--telemetry <FILE>` the whole run executes under a telemetry
//! session and the aggregated [`mc3_telemetry::TelemetryReport`] (span
//! tree, solver-internals counters, histograms) is written as JSON.

use mc3_bench::{run_experiment, ExperimentScale, EXPERIMENT_IDS};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut telemetry_out: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--telemetry" => match it.next() {
                Some(path) => telemetry_out = Some(path),
                None => {
                    eprintln!("error: --telemetry requires a file path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag '{other}'");
                std::process::exit(2);
            }
            other => ids.push(other.to_owned()),
        }
    }
    let scale = if full {
        ExperimentScale::Full
    } else {
        ExperimentScale::Quick
    };
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|&s| s.to_owned()).collect();
    }

    println!(
        "# MC3 experiment harness ({} scale)\n",
        if full { "full / paper" } else { "quick" }
    );
    let session = telemetry_out.is_some().then(mc3_telemetry::Session::begin);
    let mut failed = false;
    for id in &ids {
        // audit:allow(no-bare-instant) the harness times the experiments themselves
        let start = std::time::Instant::now();
        match run_experiment(id, scale) {
            Ok(report) => {
                println!("{report}");
                println!(
                    "[{id} completed in {:.2}s]\n",
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if let (Some(session), Some(path)) = (session, telemetry_out) {
        let report = session.finish();
        let json = report.to_json().to_string_pretty();
        match std::fs::write(&path, json) {
            Ok(()) => println!("telemetry report written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
