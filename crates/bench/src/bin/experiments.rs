//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p mc3-bench --bin experiments -- all [--full]
//! cargo run --release -p mc3-bench --bin experiments -- fig3a fig3d
//! ```

use mc3_bench::{run_experiment, ExperimentScale, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::Full
    } else {
        ExperimentScale::Quick
    };
    let mut ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() || ids.contains(&"all") {
        ids = EXPERIMENT_IDS.to_vec();
    }

    println!(
        "# MC3 experiment harness ({} scale)\n",
        if full { "full / paper" } else { "quick" }
    );
    let mut failed = false;
    for id in ids {
        let start = std::time::Instant::now();
        match run_experiment(id, scale) {
            Ok(report) => {
                println!("{report}");
                println!(
                    "[{id} completed in {:.2}s]\n",
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
