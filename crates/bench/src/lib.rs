#![warn(missing_docs)]

//! Experiment harness regenerating the paper's evaluation (§6).
//!
//! Each experiment id maps to a table or figure of the paper (see
//! DESIGN.md's per-experiment index) and produces the same rows/series the
//! paper reports:
//!
//! | id | artifact |
//! |----|----------|
//! | `table1` | Table 1 — dataset summary |
//! | `fig3a`  | Fig. 3a — BB: cost vs #queries, MC3\[S\]/Mixed/QO/PO |
//! | `fig3b`  | Fig. 3b — P (short): cost vs #queries, MC3\[S\]/QO/PO |
//! | `fig3c`  | Fig. 3c — synthetic short: MC3\[S\] runtime ± preprocessing |
//! | `fig3d`  | Fig. 3d — P: cost vs #queries, MC3\[G\]/SF/LG/QO/PO |
//! | `fig3e`  | Fig. 3e — synthetic: MC3\[G\] cost ± preprocessing |
//! | `fig3f`  | Fig. 3f — synthetic: MC3\[G\] runtime ± preprocessing |
//! | `example11` | Example 1.1 — the soccer-shirts instance |
//! | `ablation-wsc` | §5.2 — greedy vs LP vs primal–dual vs combined |
//! | `ablation-preprocess` | §3 — per-step preprocessing effect |
//! | `ablation-flow` | §4/§6 — Dinic vs push-relabel inside Algorithm 2 |
//! | `ablation-guarantee` | Theorem 5.3 bound vs empirical ratios |
//! | `ablation-popularity` | uniform vs Zipf property popularity |
//! | `ablation-bounded` | §5.3 — bounded classifier length `k'` |
//! | `ablation-partial` | §5.3/§8 — budgeted partial-cover strategies |
//!
//! Run with `cargo run --release -p mc3-bench --bin experiments -- <id>|all
//! [--full]`; `--full` uses the paper's full dataset sizes (slower).

pub mod experiments;
pub mod report;
pub mod timing;

pub use experiments::{run_experiment, ExperimentScale, EXPERIMENT_IDS};
pub use report::Table;
