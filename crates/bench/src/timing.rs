//! A minimal plain-timing micro-bench harness.
//!
//! The workspace builds offline, so the `[[bench]]` targets use this tiny
//! warmup-then-sample loop instead of `criterion`. Each measurement runs
//! the closure until a time floor is hit, reports median/mean per
//! iteration, and is deterministic apart from machine noise. Re-exported
//! for the `benches/*.rs` entry points (`cargo bench -p mc3-bench`).

use mc3_core::u32_of;
use std::time::{Duration, Instant};

/// One benchmark group; prints a header line and owns the sample policy.
pub struct Group {
    name: String,
    /// Samples collected per measurement.
    pub samples: usize,
    /// Minimum wall-clock time spent per sample (iterations adapt to it).
    pub min_sample_time: Duration,
}

impl Group {
    /// Starts a group: prints the header immediately.
    pub fn new(name: &str) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_owned(),
            samples: 10,
            min_sample_time: Duration::from_millis(50),
        }
    }

    /// Overrides the number of samples (default 10).
    pub fn samples(mut self, n: usize) -> Group {
        self.samples = n.max(1);
        self
    }

    /// Times `f`, printing one result line `group/id  median  mean`.
    pub fn bench<R>(&self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        // Warmup: one untimed call, then calibrate iterations per sample.
        std::hint::black_box(f());
        // audit:allow(no-bare-instant) the timing harness is the clock itself
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let iters = if once.is_zero() {
            1000
        } else {
            (self.min_sample_time.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as usize
        };

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                // audit:allow(no-bare-instant) the timing harness is the clock itself
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / u32_of(iters)
            })
            .collect();
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<Duration>() / u32_of(per_iter.len());
        println!(
            "{}/{id:<24} median {:>12}  mean {:>12}  ({} samples x {iters} iters)",
            self.name,
            fmt_duration(median),
            fmt_duration(mean),
            self.samples,
        );
    }
}

/// Renders a duration with an adaptive unit, `123.4 µs` style.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u64;
        Group::new("test").samples(2).bench("noop", || {
            calls += 1;
            calls
        });
        assert!(calls > 2);
    }
}
