//! The experiment implementations (one per paper table/figure).

use crate::report::{pct, secs, Table};
use mc3_core::u32_of;
use mc3_core::{Instance, InstanceStats, WeightsBuilder};
use mc3_solver::{Algorithm, Mc3Solver, PreprocessOptions, WscStrategy};
use mc3_workload::{random_subset, BestBuyConfig, PrivateConfig, SyntheticConfig};
use std::time::Duration;

/// All experiment ids accepted by [`run_experiment`].
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "example11",
    "ablation-wsc",
    "ablation-preprocess",
    "ablation-flow",
    "ablation-guarantee",
    "ablation-popularity",
    "ablation-bounded",
    "ablation-partial",
];

/// Dataset sizes: `Quick` keeps every experiment in seconds; `Full` uses the
/// paper's sizes (up to 100 000 synthetic queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Reduced sizes for fast iteration and CI.
    Quick,
    /// The paper's dataset sizes.
    Full,
}

impl ExperimentScale {
    fn synthetic_sizes(self) -> &'static [usize] {
        match self {
            ExperimentScale::Quick => &[1_000, 5_000, 20_000],
            ExperimentScale::Full => &[1_000, 10_000, 50_000, 100_000],
        }
    }

    /// The largest synthetic size — the last entry of [`Self::synthetic_sizes`].
    fn synthetic_max(self) -> usize {
        match self {
            ExperimentScale::Quick => 20_000,
            ExperimentScale::Full => 100_000,
        }
    }

    fn private_total(self) -> usize {
        match self {
            ExperimentScale::Quick => 5_000,
            ExperimentScale::Full => 10_000,
        }
    }
}

/// Runs one experiment; returns its rendered report.
pub fn run_experiment(id: &str, scale: ExperimentScale) -> Result<String, String> {
    match id {
        "table1" => table1(scale).map_err(|e| e.to_string()),
        "fig3a" => fig3a().map_err(|e| e.to_string()),
        "fig3b" => fig3b(scale).map_err(|e| e.to_string()),
        "fig3c" => fig3c(scale).map_err(|e| e.to_string()),
        "fig3d" => fig3d(scale).map_err(|e| e.to_string()),
        "fig3e" => fig3e(scale).map_err(|e| e.to_string()),
        "fig3f" => fig3f(scale).map_err(|e| e.to_string()),
        "example11" => example11().map_err(|e| e.to_string()),
        "ablation-wsc" => ablation_wsc(scale).map_err(|e| e.to_string()),
        "ablation-preprocess" => ablation_preprocess(scale).map_err(|e| e.to_string()),
        "ablation-flow" => ablation_flow(scale).map_err(|e| e.to_string()),
        "ablation-guarantee" => ablation_guarantee().map_err(|e| e.to_string()),
        "ablation-popularity" => ablation_popularity(scale).map_err(|e| e.to_string()),
        "ablation-bounded" => ablation_bounded(scale).map_err(|e| e.to_string()),
        "ablation-partial" => ablation_partial(scale).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            EXPERIMENT_IDS.join(", ")
        )),
    }
}

fn solve(instance: &Instance, algorithm: Algorithm) -> mc3_core::Result<(u64, Duration)> {
    let report = Mc3Solver::new()
        .algorithm(algorithm)
        .solve_report(instance)?;
    debug_assert!(report.solution.verify(instance).is_ok());
    Ok((report.solution.cost().raw(), report.timings.total))
}

fn solve_with_pre(
    instance: &Instance,
    algorithm: Algorithm,
    pre: bool,
) -> mc3_core::Result<(u64, Duration)> {
    let solver = if pre {
        Mc3Solver::new().algorithm(algorithm)
    } else {
        Mc3Solver::new()
            .algorithm(algorithm)
            .without_preprocessing()
    };
    let report = solver.solve_report(instance)?;
    Ok((report.solution.cost().raw(), report.timings.total))
}

// --- Table 1 ------------------------------------------------------------

fn table1(scale: ExperimentScale) -> mc3_core::Result<String> {
    let mut t = Table::new(
        "Table 1: datasets",
        &[
            "Dataset",
            "# of queries",
            "Max cost",
            "Max length",
            "short (≤2)",
        ],
    );
    let bb = BestBuyConfig::default().generate();
    let p = PrivateConfig::with_queries(scale.private_total()).generate();
    let s = SyntheticConfig::with_queries(scale.synthetic_max()).generate();
    for (name, inst, max_cost) in [
        ("BestBuy (BB)", &bb.instance, 1u64),
        ("Private (P)", &p.instance, 63),
        ("Synthetic (S)", &s.instance, 50),
    ] {
        let stats = InstanceStats::gather(inst);
        t.row(vec![
            name.to_owned(),
            stats.num_queries.to_string(),
            max_cost.to_string(),
            stats.max_query_len.to_string(),
            pct(
                stats.short_query_fraction() * stats.num_queries as f64,
                stats.num_queries as f64,
            ),
        ]);
    }
    Ok(t.to_string())
}

// --- Figure 3a ----------------------------------------------------------

fn fig3a() -> mc3_core::Result<String> {
    // The Mixed algorithm of [13] is defined only for queries of length ≤ 2,
    // which is 95% of BB; the comparison runs on that short-query slice.
    let bb = BestBuyConfig::default().generate();
    let bb_short = bb.instance.filter_queries(|q| q.len() <= 2)?;
    let mut t = Table::new(
        format!(
            "Fig 3a: BB (uniform costs, {} short queries of {}) — cost vs #queries",
            bb_short.num_queries(),
            bb.instance.num_queries()
        ),
        &[
            "#queries",
            "MC3[S]",
            "Mixed",
            "Query-Oriented",
            "Property-Oriented",
        ],
    );
    let full = bb_short.num_queries();
    for (i, &size) in [
        full / 5,
        (2 * full) / 5,
        (3 * full) / 5,
        (4 * full) / 5,
        full,
    ]
    .iter()
    .enumerate()
    {
        let sub = random_subset(&bb_short, size, 0x3A + i as u64)?;
        let (mc3s, _) = solve(&sub, Algorithm::K2Exact)?;
        let (mixed, _) = solve(&sub, Algorithm::Mixed)?;
        let (qo, _) = solve(&sub, Algorithm::QueryOriented)?;
        let (po, _) = solve(&sub, Algorithm::PropertyOriented)?;
        t.row(vec![
            size.to_string(),
            mc3s.to_string(),
            mixed.to_string(),
            qo.to_string(),
            po.to_string(),
        ]);
    }
    Ok(format!(
        "{t}Expected shape (paper): MC3[S] = Mixed (both optimal) ≤ QO ≤ PO.\n"
    ))
}

// --- Figure 3b ----------------------------------------------------------

fn fig3b(scale: ExperimentScale) -> mc3_core::Result<String> {
    let p = PrivateConfig::with_queries(scale.private_total()).generate();
    let short = p.instance.filter_queries(|q| q.len() <= 2)?;
    let full = short.num_queries();
    let mut t = Table::new(
        format!(
            "Fig 3b: P restricted to short queries ({full} of {}) — cost vs #queries",
            p.instance.num_queries()
        ),
        &[
            "#queries",
            "MC3[S]",
            "Query-Oriented",
            "Property-Oriented",
            "MC3[S] vs best baseline",
        ],
    );
    let sizes: Vec<usize> = [full / 8, full / 4, full / 2, (3 * full) / 4, full]
        .into_iter()
        .filter(|&s| s > 0)
        .collect();
    for (i, &size) in sizes.iter().enumerate() {
        let sub = random_subset(&short, size, 0x3B + i as u64)?;
        let (mc3s, _) = solve(&sub, Algorithm::K2Exact)?;
        let (qo, _) = solve(&sub, Algorithm::QueryOriented)?;
        let (po, _) = solve(&sub, Algorithm::PropertyOriented)?;
        let best_baseline = qo.min(po);
        t.row(vec![
            size.to_string(),
            mc3s.to_string(),
            qo.to_string(),
            po.to_string(),
            pct((best_baseline - mc3s) as f64, best_baseline as f64) + " cheaper",
        ]);
    }
    Ok(format!(
        "{t}Expected shape (paper): MC3[S] outperforms QO and PO by ≈30%.\n"
    ))
}

// --- Figure 3c ----------------------------------------------------------

fn fig3c(scale: ExperimentScale) -> mc3_core::Result<String> {
    let mut t = Table::new(
        "Fig 3c: synthetic short queries — MC3[S] running time ± preprocessing",
        &[
            "#queries",
            "without preprocessing",
            "with preprocessing",
            "time saved",
        ],
    );
    for (i, &n) in scale.synthetic_sizes().iter().enumerate() {
        let ds = SyntheticConfig::short(n).seed(0x3C + i as u64).generate();
        let (cost_without, t_without) = solve_with_pre(&ds.instance, Algorithm::K2Exact, false)?;
        let (cost_with, t_with) = solve_with_pre(&ds.instance, Algorithm::K2Exact, true)?;
        assert_eq!(
            cost_with, cost_without,
            "preprocessing must not change the k=2 optimum"
        );
        t.row(vec![
            n.to_string(),
            secs(t_without),
            secs(t_with),
            pct(
                (t_without.as_secs_f64() - t_with.as_secs_f64()).max(0.0),
                t_without.as_secs_f64(),
            ),
        ]);
    }
    Ok(format!("{t}Expected shape (paper): preprocessing saves most (≈85%) of the running time;\nthe solution cost is identical (both are optimal).\n"))
}

// --- Figure 3d ----------------------------------------------------------

fn fig3d(scale: ExperimentScale) -> mc3_core::Result<String> {
    let cfg = PrivateConfig::with_queries(scale.private_total());
    let p = cfg.generate();
    let fashion = cfg.generate_fashion();
    let n = p.instance.num_queries();
    let mut t = Table::new(
        "Fig 3d: P (general) — construction cost vs #queries",
        &[
            "#queries",
            "MC3[G]",
            "Short-First",
            "Local-Greedy",
            "Query-Oriented",
            "Property-Oriented",
            "winner",
        ],
    );
    let mut subsets: Vec<(String, Instance)> = vec![(
        format!("{} (fashion)", fashion.instance.num_queries()),
        fashion.instance.clone(),
    )];
    for (i, &size) in [n / 4, n / 2, n].iter().enumerate() {
        subsets.push((
            size.to_string(),
            random_subset(&p.instance, size, 0x3D + i as u64)?,
        ));
    }
    for (label, sub) in subsets {
        let (g, _) = solve(&sub, Algorithm::General)?;
        let (sf, _) = solve(&sub, Algorithm::ShortFirst)?;
        let (lg, _) = solve(&sub, Algorithm::LocalGreedy)?;
        let (qo, _) = solve(&sub, Algorithm::QueryOriented)?;
        let (po, _) = solve(&sub, Algorithm::PropertyOriented)?;
        let entries = [
            ("MC3[G]", g),
            ("SF", sf),
            ("LG", lg),
            ("QO", qo),
            ("PO", po),
        ];
        let best = entries.iter().map(|&(_, c)| c).min().unwrap_or(u64::MAX);
        let winner = entries
            .iter()
            .filter(|&&(_, c)| c == best)
            .map(|&(n, _)| n)
            .collect::<Vec<_>>()
            .join("/");
        t.row(vec![
            label,
            g.to_string(),
            sf.to_string(),
            lg.to_string(),
            qo.to_string(),
            po.to_string(),
            winner,
        ]);
    }
    Ok(format!("{t}Expected shape (paper): Short-First wins on the 96%-short fashion subset;\nMC3[G] wins on every mixed subset (≈12% over the closest competitor at full size).\n"))
}

// --- Figures 3e / 3f ----------------------------------------------------

fn fig3e(scale: ExperimentScale) -> mc3_core::Result<String> {
    let mut t = Table::new(
        "Fig 3e: synthetic — MC3[G] (as published) solution cost ± preprocessing",
        &[
            "#queries",
            "without preprocessing",
            "with preprocessing",
            "cost saved",
            "+ reverse-delete",
        ],
    );
    for (i, &size) in scale.synthetic_sizes().iter().enumerate() {
        let mut cfg = SyntheticConfig::with_queries(size).seed(0x3E + i as u64);
        cfg.pool_size = Some(size / 5); // t = 5, a representative U[2, √n] draw
        let ds = cfg.generate();
        // the paper's Algorithm 3 verbatim (no reverse-delete refinement)
        let run_raw = |pre: bool| -> mc3_core::Result<u64> {
            let mut solver = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .without_refinement();
            if !pre {
                solver = solver.without_preprocessing();
            }
            Ok(solver.solve(&ds.instance)?.cost().raw())
        };
        let cost_without = run_raw(false)?;
        let cost_with = run_raw(true)?;
        let (cost_refined, _) = solve_with_pre(&ds.instance, Algorithm::General, true)?;
        t.row(vec![
            size.to_string(),
            cost_without.to_string(),
            cost_with.to_string(),
            pct(
                cost_without.saturating_sub(cost_with) as f64,
                cost_without as f64,
            ),
            cost_refined.to_string(),
        ]);
    }
    Ok(format!("{t}Expected shape (paper): preprocessing lowers MC3[G]'s construction cost (≈35%).\nThe last column is this implementation's guarantee-preserving reverse-delete\naugmentation, which recovers most of the effect even without preprocessing.\n"))
}

fn fig3f(scale: ExperimentScale) -> mc3_core::Result<String> {
    let mut t = Table::new(
        "Fig 3f: synthetic — MC3[G] running time ± preprocessing",
        &[
            "#queries",
            "without preprocessing",
            "with preprocessing",
            "time saved",
        ],
    );
    for (i, &size) in scale.synthetic_sizes().iter().enumerate() {
        let mut cfg = SyntheticConfig::with_queries(size).seed(0x3F + i as u64);
        cfg.pool_size = Some(size / 5); // t = 5, a representative U[2, √n] draw
        let ds = cfg.generate();
        let (_, t_without) = solve_with_pre(&ds.instance, Algorithm::General, false)?;
        let (_, t_with) = solve_with_pre(&ds.instance, Algorithm::General, true)?;
        t.row(vec![
            size.to_string(),
            secs(t_without),
            secs(t_with),
            pct(
                (t_without.as_secs_f64() - t_with.as_secs_f64()).max(0.0),
                t_without.as_secs_f64(),
            ),
        ]);
    }
    Ok(format!(
        "{t}Expected shape (paper): preprocessing saves ≈50% of MC3[G]'s running time.\n"
    ))
}

// --- Example 1.1 ----------------------------------------------------------

/// The paper's running example as an instance: queries
/// `{juventus, white, adidas}` and `{chelsea, adidas}` with the §1 costs.
pub fn example11_instance() -> mc3_core::Result<Instance> {
    // props: j = 0, w = 1, a = 2, c = 3
    let w = WeightsBuilder::new()
        .classifier([3u32], 5u64) // C
        .classifier([2u32], 5u64) // A
        .classifier([0u32], 5u64) // J
        .classifier([1u32], 1u64) // W
        .classifier([2u32, 3], 3u64) // AC
        .classifier([1u32, 2], 5u64) // AW
        .classifier([0u32, 2], 3u64) // AJ
        .classifier([0u32, 1], 4u64) // JW
        .classifier([0u32, 1, 2], 5u64) // JAW
        .build();
    Instance::new(vec![vec![0u32, 1, 2], vec![2u32, 3]], w)
}

fn example11() -> mc3_core::Result<String> {
    let instance = example11_instance()?;
    let mut t = Table::new(
        "Example 1.1: soccer shirts (optimum {AC, AJ, W} = 7N)",
        &["algorithm", "cost", "classifiers"],
    );
    for (name, alg) in [
        ("Exact", Algorithm::Exact),
        ("MC3[G]", Algorithm::General),
        ("Local-Greedy", Algorithm::LocalGreedy),
        ("Query-Oriented", Algorithm::QueryOriented),
        ("Property-Oriented", Algorithm::PropertyOriented),
    ] {
        let sol = Mc3Solver::new().algorithm(alg).solve(&instance)?;
        sol.verify(&instance)?;
        let names: Vec<String> = sol
            .classifiers()
            .iter()
            .map(|c| {
                c.iter()
                    .map(|p| ["J", "W", "A", "C"][p.index()])
                    .collect::<String>()
            })
            .collect();
        t.row(vec![
            name.to_owned(),
            sol.cost().to_string(),
            names.join(" "),
        ]);
    }
    Ok(t.to_string())
}

// --- Ablations ------------------------------------------------------------

fn ablation_wsc(scale: ExperimentScale) -> mc3_core::Result<String> {
    let sizes: &[usize] = match scale {
        ExperimentScale::Quick => &[200, 2_000],
        ExperimentScale::Full => &[200, 2_000, 10_000],
    };
    let mut t = Table::new(
        "Ablation (§5.2): WSC strategy inside Algorithm 3",
        &[
            "#queries",
            "greedy",
            "primal-dual",
            "LP rounding",
            "combined",
            "greedy time",
            "combined time",
        ],
    );
    for (i, &n) in sizes.iter().enumerate() {
        let ds = SyntheticConfig::with_queries(n)
            .seed(0xAB + i as u64)
            .generate();
        let run = |strategy: WscStrategy| -> mc3_core::Result<(u64, Duration)> {
            let report = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .wsc_strategy(strategy)
                .solve_report(&ds.instance)?;
            Ok((report.solution.cost().raw(), report.timings.total))
        };
        let (g, tg) = run(WscStrategy::GreedyOnly)?;
        let (pd, _) = run(WscStrategy::PrimalDualOnly)?;
        // the dense simplex only fits small reductions
        let lp = if n <= 200 {
            run(WscStrategy::LpRoundingOnly)?.0.to_string()
        } else {
            "(too large)".to_owned()
        };
        let (c, tc) = run(WscStrategy::Combined)?;
        t.row(vec![
            n.to_string(),
            g.to_string(),
            pd.to_string(),
            lp,
            c.to_string(),
            secs(tg),
            secs(tc),
        ]);
    }
    Ok(format!(
        "{t}Combined = min(greedy, f-approximation) — never worse than either (Theorem 5.3).\n"
    ))
}

fn ablation_preprocess(scale: ExperimentScale) -> mc3_core::Result<String> {
    let n = match scale {
        ExperimentScale::Quick => 5_000,
        ExperimentScale::Full => 20_000,
    };
    let mut cfg = SyntheticConfig::with_queries(n).seed(0xAB1);
    cfg.pool_size = Some(n / 5); // match the Fig. 3e workload
    let ds = cfg.generate();
    let mut t = Table::new(
        format!("Ablation (§3): preprocessing steps, synthetic n = {n}, MC3[G]"),
        &["steps enabled", "cost", "time"],
    );
    let configs: [(&str, PreprocessOptions); 4] = [
        ("none", PreprocessOptions::disabled()),
        (
            "step 1 (singletons + zero-weight)",
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: false,
                k2_singleton_pruning: false,
                max_passes: 0,
            },
        ),
        (
            "steps 1 + 3 (+ forced selections)",
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: true,
                k2_singleton_pruning: false,
                max_passes: 6,
            },
        ),
        (
            "all (step 4 inactive for k > 2)",
            PreprocessOptions::default(),
        ),
    ];
    for (label, opts) in configs {
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .preprocess(opts)
            .solve_report(&ds.instance)?;
        t.row(vec![
            label.to_owned(),
            report.solution.cost().raw().to_string(),
            secs(report.timings.total),
        ]);
    }
    Ok(t.to_string())
}

// --- Flow-algorithm ablation -----------------------------------------------

fn ablation_flow(scale: ExperimentScale) -> mc3_core::Result<String> {
    use mc3_core::rng::prelude::*;
    use mc3_core::Weight;
    use mc3_flow::{solve_bipartite_wvc_with, BipartiteWvc, FlowAlgorithm};

    let sizes: &[usize] = match scale {
        ExperimentScale::Quick => &[10_000, 50_000],
        ExperimentScale::Full => &[10_000, 100_000, 500_000],
    };
    let mut t = Table::new(
        "Ablation (§4/§6): max-flow algorithm inside Algorithm 2's WVC step",
        &[
            "#pair nodes",
            "Dinic cost",
            "push-relabel cost",
            "Dinic time",
            "push-relabel time",
        ],
    );
    for &n in sizes {
        // the exact network shape the k=2 reduction produces
        let mut rng = StdRng::seed_from_u64(0xF10 + n as u64);
        let nl = (n / 2).max(2);
        let inst = BipartiteWvc {
            left_weights: (0..nl).map(|_| Weight::new(rng.gen_range(1..50))).collect(),
            right_weights: (0..n).map(|_| Weight::new(rng.gen_range(1..50))).collect(),
            edges: (0..u32_of(n))
                .flat_map(|r| {
                    let a = rng.gen_range(0..u32_of(nl));
                    let mut b = rng.gen_range(0..u32_of(nl));
                    if b == a {
                        b = (b + 1) % u32_of(nl);
                    }
                    [(a, r), (b, r)]
                })
                .collect(),
        };
        // audit:allow(no-bare-instant) the experiment times the two flow kernels
        let t0 = std::time::Instant::now();
        let dinic = solve_bipartite_wvc_with(&inst, FlowAlgorithm::Dinic)?;
        let dt = t0.elapsed();
        // audit:allow(no-bare-instant) the experiment times the two flow kernels
        let t1 = std::time::Instant::now();
        let pr = solve_bipartite_wvc_with(&inst, FlowAlgorithm::PushRelabel)?;
        let pt = t1.elapsed();
        assert_eq!(
            dinic.weight, pr.weight,
            "the two exact algorithms must agree"
        );
        t.row(vec![
            n.to_string(),
            dinic.weight.to_string(),
            pr.weight.to_string(),
            secs(dt),
            secs(pt),
        ]);
    }
    Ok(format!(
        "{t}Both are exact (identical costs); the paper selected Dinic [10] for speed.\n"
    ))
}

// --- Empirical approximation ratios ----------------------------------------

fn ablation_guarantee() -> mc3_core::Result<String> {
    use mc3_core::rng::prelude::*;
    let mut t = Table::new(
        "Empirical approximation ratio vs the Theorem 5.3 guarantee (small random instances)",
        &[
            "k",
            "instances",
            "max ratio MC3[G]/OPT",
            "mean ratio",
            "Theorem 5.3 bound (max)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0x6A);
    for k in [3usize, 4, 5] {
        let mut max_ratio: f64 = 1.0;
        let mut sum_ratio = 0.0;
        let mut max_bound: f64 = 0.0;
        let rounds = 40;
        for _ in 0..rounds {
            let n = rng.gen_range(2..=6usize);
            let queries: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let len = rng.gen_range(1..=k);
                    (0..len).map(|_| rng.gen_range(0..10u32)).collect()
                })
                .collect();
            let instance = Instance::new(queries, mc3_core::Weights::seeded(rng.gen(), 1, 40))?;
            let report = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .solve_report(&instance)?;
            let exact = Mc3Solver::new()
                .algorithm(Algorithm::Exact)
                .solve(&instance)?;
            let ratio = report.solution.cost().raw() as f64 / exact.cost().raw().max(1) as f64;
            max_ratio = max_ratio.max(ratio);
            sum_ratio += ratio;
            max_bound = max_bound.max(report.instance_stats.approximation_guarantee());
        }
        t.row(vec![
            k.to_string(),
            rounds.to_string(),
            format!("{max_ratio:.3}"),
            format!("{:.3}", sum_ratio / rounds as f64),
            format!("{max_bound:.2}"),
        ]);
    }
    Ok(format!(
        "{t}MC3[G] sits far below its worst-case bound in practice (§6's qualitative finding).\n"
    ))
}

// --- Property-popularity extension ------------------------------------------

fn ablation_popularity(scale: ExperimentScale) -> mc3_core::Result<String> {
    let n = match scale {
        ExperimentScale::Quick => 5_000,
        ExperimentScale::Full => 20_000,
    };
    let mut t = Table::new(
        format!("Extension: property-popularity skew (synthetic n = {n}, pool n/5)"),
        &[
            "popularity",
            "I (incidence)",
            "MC3[G]",
            "Short-First",
            "Property-Oriented",
            "MC3[G] vs PO",
        ],
    );
    for (label, zipf) in [
        ("uniform (paper)", None),
        ("Zipf s=1.0", Some(1.0)),
        ("Zipf s=1.3", Some(1.3)),
    ] {
        let mut cfg = SyntheticConfig::with_queries(n).seed(0x21F);
        cfg.pool_size = Some(n / 5);
        if let Some(s) = zipf {
            cfg = cfg.zipf(s);
        }
        let ds = cfg.generate();
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve_report(&ds.instance)?;
        let (sf, _) = solve(&ds.instance, Algorithm::ShortFirst)?;
        let (po, _) = solve(&ds.instance, Algorithm::PropertyOriented)?;
        let g = report.solution.cost().raw();
        t.row(vec![
            label.to_owned(),
            report.instance_stats.max_incidence.to_string(),
            g.to_string(),
            sf.to_string(),
            po.to_string(),
            pct(po.saturating_sub(g) as f64, po as f64) + " cheaper",
        ]);
    }
    Ok(format!("{t}Heavier skew raises incidence I and widens MC3[G]'s margin: popular properties\namortize over many queries while the rare tail is covered by cheap conjunctions,\nwhereas Property-Oriented still pays for every distinct property.\n"))
}

// --- Bounded classifiers (§5.3) ----------------------------------------------

fn ablation_bounded(scale: ExperimentScale) -> mc3_core::Result<String> {
    let p = PrivateConfig::with_queries(scale.private_total()).generate();
    let k = p.instance.max_query_len();
    let mut t = Table::new(
        format!("Extension (§5.3): bounded classifier length k' on P (k = {k})"),
        &["k'", "MC3[G] cost", "classifiers", "f bound", "time"],
    );
    for kp in [1usize, 2, 3, k] {
        let report = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(kp)
            .solve_report(&p.instance)?;
        let cost = report.solution.cost().raw();
        t.row(vec![
            if kp == k {
                format!("{kp} (= k)")
            } else {
                kp.to_string()
            },
            cost.to_string(),
            report.solution.len().to_string(),
            report.instance_stats.wsc_frequency_bound().to_string(),
            secs(report.timings.total),
        ]);
    }
    Ok(format!("{t}k' = 2 is the prevalent practical choice (§5.3): frequency drops from 2^(k−1) to k\nwhile most of the cost benefit of longer classifiers is already realized.\n"))
}

// --- Budgeted partial cover (§5.3 / §8 future work) --------------------------

fn ablation_partial(scale: ExperimentScale) -> mc3_core::Result<String> {
    use mc3_core::rng::prelude::*;
    use mc3_solver::{solve_partial_cover_with, PartialStrategy};

    let n = match scale {
        ExperimentScale::Quick => 1_000,
        ExperimentScale::Full => 5_000,
    };
    let p = PrivateConfig::with_queries(n).generate();
    // query importances: heavy-tailed "observed frequency" model
    let mut rng = StdRng::seed_from_u64(0x5041);
    let values: Vec<u64> = (0..p.instance.num_queries())
        .map(|_| 1 + (1000.0 / (1.0 + rng.gen_range(0.0..99.0f64))) as u64)
        .collect();
    let total_value: u64 = values.iter().sum();
    let full_cost = Mc3Solver::new().solve(&p.instance)?.cost().raw();

    let mut t = Table::new(
        format!(
            "Extension (§5.3/§8): budgeted partial cover on P (n = {}, full cover costs {full_cost})",
            p.instance.num_queries()
        ),
        &["budget (% of full)", "query-greedy value", "component-knapsack value", "best value", "% of total value"],
    );
    for pct_budget in [10u64, 25, 50, 75, 100] {
        let budget = mc3_core::Weight::new(full_cost * pct_budget / 100);
        let run = |strategy| -> mc3_core::Result<u64> {
            Ok(solve_partial_cover_with(&p.instance, &values, budget, strategy)?.covered_value)
        };
        let g = run(PartialStrategy::QueryGreedy)?;
        let k = run(PartialStrategy::ComponentKnapsack)?;
        let b = run(PartialStrategy::Best)?;
        t.row(vec![
            format!("{pct_budget}%"),
            g.to_string(),
            k.to_string(),
            b.to_string(),
            pct(b as f64, total_value as f64),
        ]);
    }
    Ok(format!("{t}Diminishing returns: most of the query-load value is covered well below the full budget\n(the paper's motivation for the budgeted variant it leaves as future work).\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example11_reports_optimum_seven() {
        let out = example11().expect("example 1.1 is coverable");
        assert!(out.contains("Exact"), "{out}");
        // the Exact and MC3[G] rows must both report cost 7
        let lines: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        let exact = lines.iter().find(|l| l.contains("Exact")).unwrap();
        assert!(exact.contains("| 7"), "exact row: {exact}");
        let general = lines.iter().find(|l| l.contains("MC3[G]")).unwrap();
        assert!(general.contains("| 7"), "general row: {general}");
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(run_experiment("nope", ExperimentScale::Quick).is_err());
    }

    #[test]
    fn table1_lists_three_datasets() {
        let out = table1(ExperimentScale::Quick).expect("table1 runs");
        assert!(out.contains("BestBuy"));
        assert!(out.contains("Private"));
        assert!(out.contains("Synthetic"));
    }

    #[test]
    fn fig3a_small_scale_shape_holds() {
        // run on the real experiment (BB is small) and verify the ordering
        let out = fig3a().expect("fig3a runs");
        for line in out
            .lines()
            .filter(|l| l.starts_with("| ") && !l.contains("MC3"))
        {
            let cells: Vec<&str> = line
                .split('|')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if cells.len() == 5 {
                let mc3s: u64 = cells[1].parse().unwrap();
                let mixed: u64 = cells[2].parse().unwrap();
                let qo: u64 = cells[3].parse().unwrap();
                assert_eq!(mc3s, mixed, "both exact under uniform costs: {line}");
                assert!(mc3s <= qo, "{line}");
            }
        }
    }
}
