//! Minimal aligned-column table rendering for experiment output.

use std::fmt;

/// A simple text table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for c in 0..cols {
                write!(f, " {:<width$} |", cells[c], width = widths[c])?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a `Duration` as fractional seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats `part / whole` as a percentage string.
pub fn pct(part: f64, whole: f64) -> String {
    if !(whole.abs() > f64::EPSILON) {
        "–".to_owned()
    } else {
        format!("{:.1}%", 100.0 * part / whole)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "cost"]);
        t.row(vec!["10".into(), "5".into()]);
        t.row(vec!["10000".into(), "42".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n     | cost |"));
        assert!(s.contains("| 10000 | 42   |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
        assert_eq!(pct(25.0, 100.0), "25.0%");
        assert_eq!(pct(1.0, 0.0), "–");
    }
}
