//! Benchmarks behind Fig. 3c: MC3[S] (Algorithm 2) on synthetic short-query
//! workloads, with and without preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc3_solver::{Algorithm, Mc3Solver};
use mc3_workload::SyntheticConfig;
use std::hint::black_box;

fn bench_k2(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc3s_algorithm2");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let ds = SyntheticConfig::short(n).generate();
        group.bench_with_input(
            BenchmarkId::new("with_preprocessing", n),
            &ds.instance,
            |b, inst| {
                let solver = Mc3Solver::new().algorithm(Algorithm::K2Exact);
                b.iter(|| black_box(solver.solve(inst).unwrap().cost()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("without_preprocessing", n),
            &ds.instance,
            |b, inst| {
                let solver = Mc3Solver::new()
                    .algorithm(Algorithm::K2Exact)
                    .without_preprocessing();
                b.iter(|| black_box(solver.solve(inst).unwrap().cost()));
            },
        );
    }
    group.finish();
}

fn bench_mixed_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixed_baseline_matching");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let ds = mc3_workload::BestBuyConfig::with_queries(n).generate();
        let short = ds.instance.filter_queries(|q| q.len() <= 2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &short, |b, inst| {
            let solver = Mc3Solver::new().algorithm(Algorithm::Mixed);
            b.iter(|| black_box(solver.solve(inst).unwrap().cost()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k2, bench_mixed_baseline);
criterion_main!(benches);
