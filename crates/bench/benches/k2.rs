//! Benchmarks behind Fig. 3c: MC3[S] (Algorithm 2) on synthetic short-query
//! workloads, with and without preprocessing.

use mc3_bench::timing::Group;
use mc3_solver::{Algorithm, Mc3Solver};
use mc3_workload::SyntheticConfig;
use std::hint::black_box;

fn bench_k2() {
    let group = Group::new("mc3s_algorithm2").samples(5);
    for &n in &[1_000usize, 10_000, 100_000] {
        let ds = SyntheticConfig::short(n).generate();
        let with = Mc3Solver::new().algorithm(Algorithm::K2Exact);
        group.bench(format!("with_preprocessing/{n}"), || {
            black_box(with.solve(&ds.instance).expect("solvable").cost())
        });
        let without = Mc3Solver::new()
            .algorithm(Algorithm::K2Exact)
            .without_preprocessing();
        group.bench(format!("without_preprocessing/{n}"), || {
            black_box(without.solve(&ds.instance).expect("solvable").cost())
        });
    }
}

fn bench_mixed_baseline() {
    let group = Group::new("mixed_baseline_matching").samples(5);
    for &n in &[1_000usize, 10_000] {
        let ds = mc3_workload::BestBuyConfig::with_queries(n).generate();
        let short = ds
            .instance
            .filter_queries(|q| q.len() <= 2)
            .expect("non-empty");
        let solver = Mc3Solver::new().algorithm(Algorithm::Mixed);
        group.bench(n, || {
            black_box(solver.solve(&short).expect("solvable").cost())
        });
    }
}

fn main() {
    bench_k2();
    bench_mixed_baseline();
}
