//! Micro-benchmarks of the flow substrate (§4 / §6: the paper selected
//! Dinic [10] as the best-performing flow algorithm on the bipartite WVC
//! networks; this bench also covers the matching-based path used by the
//! Mixed baseline).

use mc3_bench::timing::Group;
use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_flow::{
    hopcroft_karp, koenig_vertex_cover, solve_bipartite_wvc, BipartiteGraph, BipartiteWvc, Dinic,
    FlowNetwork,
};
use std::hint::black_box;

/// A random bipartite WVC instance shaped like the Algorithm-2 reduction:
/// `n` right nodes (pair classifiers) each touching two of `n/2` left nodes.
fn random_wvc(n: usize, seed: u64) -> BipartiteWvc {
    let mut rng = StdRng::seed_from_u64(seed);
    let nl = (n / 2).max(2);
    let left_weights = (0..nl).map(|_| Weight::new(rng.gen_range(1..50))).collect();
    let right_weights = (0..n).map(|_| Weight::new(rng.gen_range(1..50))).collect();
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..n as u32 {
        let a = rng.gen_range(0..nl as u32);
        let mut b = rng.gen_range(0..nl as u32);
        if b == a {
            b = (b + 1) % nl as u32;
        }
        edges.push((a, r));
        edges.push((b, r));
    }
    BipartiteWvc {
        left_weights,
        right_weights,
        edges,
    }
}

fn bench_dinic_raw() {
    let group = Group::new("dinic_unit_bipartite");
    for &n in &[1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let nl = n / 2;
        let edges: Vec<(usize, usize)> = (0..2 * n)
            .map(|_| (1 + rng.gen_range(0..nl), 1 + nl + rng.gen_range(0..n)))
            .collect();
        group.bench(n, || {
            let mut g = FlowNetwork::with_capacity(nl + n + 2, edges.len() + nl + n);
            let (s, t) = (0usize, nl + n + 1);
            for l in 0..nl {
                g.add_edge(s, 1 + l, 1);
            }
            for r in 0..n {
                g.add_edge(1 + nl + r, t, 1);
            }
            for &(u, v) in &edges {
                g.add_edge(u, v, 1);
            }
            black_box(Dinic::new(&mut g).max_flow(s, t))
        });
    }
}

fn bench_wvc() {
    let group = Group::new("bipartite_wvc_via_maxflow");
    for &n in &[1_000usize, 10_000, 50_000] {
        let inst = random_wvc(n, 42);
        group.bench(n, || {
            black_box(solve_bipartite_wvc(&inst).expect("solvable").weight)
        });
    }
}

fn bench_matching() {
    let group = Group::new("hopcroft_karp_koenig");
    for &n in &[1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut g = BipartiteGraph::new(n / 2, n);
        for r in 0..n {
            g.add_edge(rng.gen_range(0..n / 2), r);
            g.add_edge(rng.gen_range(0..n / 2), r);
        }
        group.bench(n, || {
            let m = hopcroft_karp(&g);
            let (l, r) = koenig_vertex_cover(&g, &m);
            black_box((m.size, l.len(), r.len()))
        });
    }
}

fn main() {
    bench_dinic_raw();
    bench_wvc();
    bench_matching();
}
