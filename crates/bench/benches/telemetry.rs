//! Telemetry overhead benchmarks: the ISSUE acceptance bar is that a
//! *disabled* gate costs the `general` solve < 2% — here both states are
//! measured side by side so a regression shows up as a ratio, not a
//! guess. Also times the raw primitives (gated counter add, span
//! open/close) to keep the per-call cost visible.

use mc3_bench::timing::Group;
use mc3_solver::{Algorithm, Mc3Solver};
use mc3_telemetry::{Counter, Session};
use mc3_workload::SyntheticConfig;
use std::hint::black_box;

fn bench_solve_overhead() {
    let ds = SyntheticConfig::with_queries(10_000).generate();
    let solver = Mc3Solver::new().algorithm(Algorithm::General);
    let group = Group::new("telemetry_solve_overhead").samples(5);
    group.bench("general/disabled_gate", || {
        black_box(solver.solve(&ds.instance).expect("solvable").cost())
    });
    let session = Session::begin();
    group.bench("general/enabled_gate", || {
        black_box(solver.solve(&ds.instance).expect("solvable").cost())
    });
    drop(session.finish());
}

fn bench_primitives() {
    let group = Group::new("telemetry_primitives").samples(5);
    group.bench("count/disabled", || {
        for _ in 0..1_000 {
            mc3_telemetry::count(Counter::DinicPhases, 1);
        }
    });
    group.bench("span/disabled", || {
        for _ in 0..1_000 {
            let _span = mc3_telemetry::span("bench.noop");
        }
    });
    let session = Session::begin();
    group.bench("count/enabled", || {
        for _ in 0..1_000 {
            mc3_telemetry::count(Counter::DinicPhases, 1);
        }
    });
    group.bench("span/enabled", || {
        for _ in 0..1_000 {
            let _span = mc3_telemetry::span("bench.noop");
        }
    });
    drop(session.finish());
}

fn bench_allocator_overhead() {
    let group = Group::new("memprof_allocator").samples(5);
    group.bench("alloc_free/disabled_gate", || {
        for i in 0..1_000usize {
            black_box(Box::new(i));
        }
    });
    let session = Session::begin();
    group.bench("alloc_free/enabled_gate", || {
        for i in 0..1_000usize {
            black_box(Box::new(i));
        }
    });
    drop(session.finish());

    // Hard ceiling while the gate is closed: the tracking wrapper adds a
    // single relaxed load on top of malloc, so one alloc+free round trip
    // is single-digit-to-tens of ns in practice. The ceiling is
    // deliberately loose (shared-runner noise, debug builds) while still
    // catching an accidental always-on slow path.
    const ITERS: u32 = 100_000;
    let mut per_alloc = f64::MAX;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        for i in 0..ITERS {
            black_box(Box::new(i));
        }
        per_alloc = per_alloc.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    println!("memprof_allocator/disabled_gate_floor     {per_alloc:.1} ns per alloc+free");
    assert!(
        per_alloc < 1_000.0,
        "disabled-gate allocator costs {per_alloc:.1} ns per alloc+free; \
         the tracking wrapper must stay a single relaxed load while off"
    );
}

fn main() {
    bench_solve_overhead();
    bench_primitives();
    bench_allocator_overhead();
}
