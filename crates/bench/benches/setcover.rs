//! Micro-benchmarks of the WSC substrate (§5.2): lazy-heap greedy [6, 9],
//! the primal–dual f-approximation, LP rounding [50] on small instances,
//! and the reverse-delete refinement.

use mc3_bench::timing::Group;
use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_setcover::{
    prune_redundant, solve_greedy, solve_lp_rounding, solve_primal_dual, SetCoverInstance,
};
use std::hint::black_box;

/// A random coverable WSC instance with `n` elements and ~`3n` sets.
fn random_wsc(n: usize, seed: u64) -> SetCoverInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(3 * n);
    for e in 0..n as u32 {
        sets.push((vec![e], Weight::new(rng.gen_range(1..50))));
    }
    for _ in 0..2 * n {
        let size = rng.gen_range(2..8usize);
        let els: Vec<u32> = (0..size).map(|_| rng.gen_range(0..n as u32)).collect();
        sets.push((els, Weight::new(rng.gen_range(1..50))));
    }
    SetCoverInstance::new(n, sets)
}

fn bench_greedy() {
    let group = Group::new("wsc_greedy_lazy_heap");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 1);
        group.bench(n, || {
            black_box(solve_greedy(&inst).expect("coverable").cost)
        });
    }
}

fn bench_primal_dual() {
    let group = Group::new("wsc_primal_dual");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 2);
        group.bench(n, || {
            black_box(solve_primal_dual(&inst).expect("coverable").cost)
        });
    }
}

fn bench_lp_rounding() {
    let group = Group::new("wsc_lp_rounding_simplex").samples(5);
    for &n in &[50usize, 150] {
        let inst = random_wsc(n, 3);
        group.bench(n, || {
            black_box(solve_lp_rounding(&inst).expect("coverable").cost)
        });
    }
}

fn bench_prune() {
    let group = Group::new("wsc_reverse_delete");
    for &n in &[10_000usize, 100_000] {
        let inst = random_wsc(n, 4);
        let sol = solve_greedy(&inst).expect("coverable");
        group.bench(n, || black_box(prune_redundant(&inst, &sol).cost));
    }
}

fn main() {
    bench_greedy();
    bench_primal_dual();
    bench_lp_rounding();
    bench_prune();
}
