//! Micro-benchmarks of the WSC substrate (§5.2): sorted-cursor greedy
//! [6, 9], the primal–dual f-approximation, LP rounding [50] on small
//! instances, the reverse-delete refinement, swap local search, and the
//! greedy/local-search pair on the instance Algorithm 3 actually reduces
//! the synthetic workload to (see docs/performance.md for before/after
//! numbers).

use mc3_bench::timing::Group;
use mc3_core::rng::prelude::*;
use mc3_core::Weight;
use mc3_setcover::{
    local_search, prune_redundant, solve_greedy, solve_lp_rounding, solve_primal_dual,
    SetCoverInstance,
};
use std::hint::black_box;

/// A random coverable WSC instance with `n` elements and ~`3n` sets.
fn random_wsc(n: usize, seed: u64) -> SetCoverInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(3 * n);
    for e in 0..n as u32 {
        sets.push((vec![e], Weight::new(rng.gen_range(1..50))));
    }
    for _ in 0..2 * n {
        let size = rng.gen_range(2..8usize);
        let els: Vec<u32> = (0..size).map(|_| rng.gen_range(0..n as u32)).collect();
        sets.push((els, Weight::new(rng.gen_range(1..50))));
    }
    SetCoverInstance::new(n, sets)
}

fn bench_greedy() {
    let group = Group::new("wsc_greedy");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 1);
        group.bench(n, || {
            black_box(solve_greedy(&inst).expect("coverable").cost)
        });
    }
}

fn bench_primal_dual() {
    let group = Group::new("wsc_primal_dual");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 2);
        group.bench(n, || {
            black_box(solve_primal_dual(&inst).expect("coverable").cost)
        });
    }
}

fn bench_lp_rounding() {
    let group = Group::new("wsc_lp_rounding_simplex").samples(5);
    for &n in &[50usize, 150] {
        let inst = random_wsc(n, 3);
        group.bench(n, || {
            black_box(solve_lp_rounding(&inst).expect("coverable").cost)
        });
    }
}

fn bench_prune() {
    let group = Group::new("wsc_reverse_delete");
    for &n in &[10_000usize, 100_000] {
        let inst = random_wsc(n, 4);
        let sol = solve_greedy(&inst).expect("coverable");
        group.bench(n, || black_box(prune_redundant(&inst, &sol).cost));
    }
}

fn bench_local_search() {
    let group = Group::new("wsc_local_search");
    for &n in &[10_000usize, 100_000] {
        let inst = random_wsc(n, 5);
        let sol = solve_greedy(&inst).expect("coverable");
        group.bench(n, || black_box(local_search(&inst, &sol).cost));
    }
}

fn bench_synthetic_reduction() {
    // The WSC instance Algorithm 3 actually hands to greedy/local search on
    // the paper's synthetic workload (400 queries, seed 7) — the BitCover
    // kernel's target shape, pinned by name for before/after comparisons.
    let ds = mc3_workload::SyntheticConfig::with_queries(400)
        .seed(7)
        .generate();
    let universe = mc3_core::ClassifierUniverse::build(&ds.instance);
    let ws = mc3_solver::work::WorkState::new(&ds.instance, universe);
    let queries: Vec<usize> = (0..ds.instance.num_queries()).collect();
    let red = mc3_solver::reduce_to_wsc(&ws, &queries);
    let group = Group::new("wsc_on_mc3_reduction");
    group.bench("greedy/synthetic/400/7", || {
        black_box(solve_greedy(&red.instance).expect("coverable").cost)
    });
    let sol = solve_greedy(&red.instance).expect("coverable");
    group.bench("local_search/synthetic/400/7", || {
        black_box(local_search(&red.instance, &sol).cost)
    });
}

fn main() {
    bench_greedy();
    bench_primal_dual();
    bench_lp_rounding();
    bench_prune();
    bench_local_search();
    bench_synthetic_reduction();
}
