//! Micro-benchmarks of the WSC substrate (§5.2): lazy-heap greedy [6, 9],
//! the primal–dual f-approximation, LP rounding [50] on small instances,
//! and the reverse-delete refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc3_core::Weight;
use mc3_setcover::{
    prune_redundant, solve_greedy, solve_lp_rounding, solve_primal_dual, SetCoverInstance,
};
use rand::prelude::*;
use std::hint::black_box;

/// A random coverable WSC instance with `n` elements and ~`3n` sets.
fn random_wsc(n: usize, seed: u64) -> SetCoverInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(3 * n);
    for e in 0..n as u32 {
        sets.push((vec![e], Weight::new(rng.gen_range(1..50))));
    }
    for _ in 0..2 * n {
        let size = rng.gen_range(2..8usize);
        let els: Vec<u32> = (0..size).map(|_| rng.gen_range(0..n as u32)).collect();
        sets.push((els, Weight::new(rng.gen_range(1..50))));
    }
    SetCoverInstance::new(n, sets)
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsc_greedy_lazy_heap");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(solve_greedy(inst).unwrap().cost));
        });
    }
    group.finish();
}

fn bench_primal_dual(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsc_primal_dual");
    for &n in &[1_000usize, 10_000, 100_000] {
        let inst = random_wsc(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(solve_primal_dual(inst).unwrap().cost));
        });
    }
    group.finish();
}

fn bench_lp_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsc_lp_rounding_simplex");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let inst = random_wsc(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(solve_lp_rounding(inst).unwrap().cost));
        });
    }
    group.finish();
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("wsc_reverse_delete");
    for &n in &[10_000usize, 100_000] {
        let inst = random_wsc(n, 4);
        let sol = solve_greedy(&inst).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&inst, &sol),
            |b, (inst, sol)| {
                b.iter(|| black_box(prune_redundant(inst, sol).cost));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_primal_dual,
    bench_lp_rounding,
    bench_prune
);
criterion_main!(benches);
