//! Benchmarks behind Figs. 3e/3f and the §5.2 ablation: MC3[G]
//! (Algorithm 3) on the paper's synthetic workload, with/without
//! preprocessing and across WSC strategies, plus Short-First and the
//! Local-Greedy baseline.

use mc3_bench::timing::Group;
use mc3_solver::{Algorithm, Mc3Solver, WscStrategy};
use mc3_workload::{PrivateConfig, SyntheticConfig};
use std::hint::black_box;

fn bench_general() {
    let group = Group::new("mc3g_algorithm3").samples(5);
    for &n in &[1_000usize, 10_000, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        let with = Mc3Solver::new().algorithm(Algorithm::General);
        group.bench(format!("with_preprocessing/{n}"), || {
            black_box(with.solve(&ds.instance).expect("solvable").cost())
        });
        let without = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .without_preprocessing();
        group.bench(format!("without_preprocessing/{n}"), || {
            black_box(without.solve(&ds.instance).expect("solvable").cost())
        });
    }
}

fn bench_anti_cycling_q80_seed3() {
    // The workload that exposed simplex cycling: its reduced component
    // yields a degenerate covering LP. Named so the bench gate tracks the
    // anti-cycling path specifically.
    let ds = SyntheticConfig::with_queries(80).seed(3).generate();
    let solver = Mc3Solver::new().algorithm(Algorithm::General);
    let group = Group::new("mc3g_anti_cycling").samples(5);
    group.bench("synthetic_q80_seed3", || {
        black_box(solver.solve(&ds.instance).expect("solvable").cost())
    });
}

fn bench_strategies() {
    let ds = SyntheticConfig::with_queries(10_000).generate();
    let group = Group::new("mc3g_wsc_strategy").samples(5);
    for (name, strategy) in [
        ("greedy", WscStrategy::GreedyOnly),
        ("primal_dual", WscStrategy::PrimalDualOnly),
        ("combined", WscStrategy::Combined),
    ] {
        let solver = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .wsc_strategy(strategy);
        group.bench(name, || {
            black_box(solver.solve(&ds.instance).expect("solvable").cost())
        });
    }
}

fn bench_short_first_and_local_greedy() {
    let ds = PrivateConfig::with_queries(5_000).generate();
    let group = Group::new("private_dataset_algorithms").samples(5);
    for (name, alg) in [
        ("mc3g", Algorithm::General),
        ("short_first", Algorithm::ShortFirst),
        ("local_greedy", Algorithm::LocalGreedy),
    ] {
        let solver = Mc3Solver::new().algorithm(alg);
        group.bench(name, || {
            black_box(solver.solve(&ds.instance).expect("solvable").cost())
        });
    }
}

fn bench_parallel_components() {
    // the private dataset has three property-disjoint categories
    let ds = PrivateConfig::with_queries(10_000).generate();
    let group = Group::new("component_parallelism").samples(5);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        let solver = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .parallel(parallel);
        group.bench(name, || {
            black_box(solver.solve(&ds.instance).expect("solvable").cost())
        });
    }
}

fn main() {
    bench_general();
    bench_anti_cycling_q80_seed3();
    bench_strategies();
    bench_short_first_and_local_greedy();
    bench_parallel_components();
}
