//! Benchmarks behind Figs. 3e/3f and the §5.2 ablation: MC3[G]
//! (Algorithm 3) on the paper's synthetic workload, with/without
//! preprocessing and across WSC strategies, plus Short-First and the
//! Local-Greedy baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc3_solver::{Algorithm, Mc3Solver, WscStrategy};
use mc3_workload::{PrivateConfig, SyntheticConfig};
use std::hint::black_box;

fn bench_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc3g_algorithm3");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        group.bench_with_input(
            BenchmarkId::new("with_preprocessing", n),
            &ds.instance,
            |b, inst| {
                let solver = Mc3Solver::new().algorithm(Algorithm::General);
                b.iter(|| black_box(solver.solve(inst).unwrap().cost()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("without_preprocessing", n),
            &ds.instance,
            |b, inst| {
                let solver = Mc3Solver::new()
                    .algorithm(Algorithm::General)
                    .without_preprocessing();
                b.iter(|| black_box(solver.solve(inst).unwrap().cost()));
            },
        );
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let ds = SyntheticConfig::with_queries(10_000).generate();
    let mut group = c.benchmark_group("mc3g_wsc_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("greedy", WscStrategy::GreedyOnly),
        ("primal_dual", WscStrategy::PrimalDualOnly),
        ("combined", WscStrategy::Combined),
    ] {
        group.bench_function(name, |b| {
            let solver = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .wsc_strategy(strategy);
            b.iter(|| black_box(solver.solve(&ds.instance).unwrap().cost()));
        });
    }
    group.finish();
}

fn bench_short_first_and_local_greedy(c: &mut Criterion) {
    let ds = PrivateConfig::with_queries(5_000).generate();
    let mut group = c.benchmark_group("private_dataset_algorithms");
    group.sample_size(10);
    for (name, alg) in [
        ("mc3g", Algorithm::General),
        ("short_first", Algorithm::ShortFirst),
        ("local_greedy", Algorithm::LocalGreedy),
    ] {
        group.bench_function(name, |b| {
            let solver = Mc3Solver::new().algorithm(alg);
            b.iter(|| black_box(solver.solve(&ds.instance).unwrap().cost()));
        });
    }
    group.finish();
}

fn bench_parallel_components(c: &mut Criterion) {
    // the private dataset has three property-disjoint categories
    let ds = PrivateConfig::with_queries(10_000).generate();
    let mut group = c.benchmark_group("component_parallelism");
    group.sample_size(10);
    for (name, parallel) in [("sequential", false), ("parallel", true)] {
        group.bench_function(name, |b| {
            let solver = Mc3Solver::new()
                .algorithm(Algorithm::General)
                .parallel(parallel);
            b.iter(|| black_box(solver.solve(&ds.instance).unwrap().cost()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_general,
    bench_strategies,
    bench_short_first_and_local_greedy,
    bench_parallel_components
);
criterion_main!(benches);
