//! Micro-benchmarks of Algorithm 1 (§3) — the preprocessing pipeline on the
//! paper's synthetic workloads, plus the ablation over enabled steps.

use mc3_bench::timing::Group;
use mc3_core::ClassifierUniverse;
use mc3_solver::preprocess::{preprocess, PreprocessOptions};
use mc3_solver::work::WorkState;
use mc3_workload::SyntheticConfig;
use std::hint::black_box;

fn bench_full_pipeline() {
    let group = Group::new("preprocess_algorithm1").samples(5);
    for &n in &[1_000usize, 10_000, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        group.bench(n, || {
            let universe = ClassifierUniverse::build(&ds.instance);
            let mut ws = WorkState::new(&ds.instance, universe);
            let stats = preprocess(&mut ws, &PreprocessOptions::default()).expect("preprocess");
            black_box((stats.selected, stats.removed_by_decomposition))
        });
    }
}

fn bench_steps() {
    let ds = SyntheticConfig::with_queries(10_000).generate();
    let group = Group::new("preprocess_step_ablation").samples(5);
    let configs = [
        (
            "step1_only",
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: false,
                k2_singleton_pruning: false,
                max_passes: 0,
            },
        ),
        ("steps_1_3", PreprocessOptions::default()),
    ];
    for (name, opts) in configs {
        group.bench(name, || {
            let universe = ClassifierUniverse::build(&ds.instance);
            let mut ws = WorkState::new(&ds.instance, universe);
            black_box(preprocess(&mut ws, &opts).expect("preprocess").selected)
        });
    }
}

fn bench_universe_build() {
    let group = Group::new("classifier_universe_enumeration").samples(5);
    for &n in &[10_000usize, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        group.bench(n, || {
            black_box(ClassifierUniverse::build(&ds.instance).len())
        });
    }
}

fn main() {
    bench_full_pipeline();
    bench_steps();
    bench_universe_build();
}
