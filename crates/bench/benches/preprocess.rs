//! Micro-benchmarks of Algorithm 1 (§3) — the preprocessing pipeline on the
//! paper's synthetic workloads, plus the ablation over enabled steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mc3_core::ClassifierUniverse;
use mc3_solver::preprocess::{preprocess, PreprocessOptions};
use mc3_solver::work::WorkState;
use mc3_workload::SyntheticConfig;
use std::hint::black_box;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess_algorithm1");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds.instance, |b, inst| {
            b.iter(|| {
                let universe = ClassifierUniverse::build(inst);
                let mut ws = WorkState::new(inst, universe);
                let stats = preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
                black_box((stats.selected, stats.removed_by_decomposition))
            });
        });
    }
    group.finish();
}

fn bench_steps(c: &mut Criterion) {
    let ds = SyntheticConfig::with_queries(10_000).generate();
    let mut group = c.benchmark_group("preprocess_step_ablation");
    group.sample_size(10);
    let configs = [
        (
            "step1_only",
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: false,
                k2_singleton_pruning: false,
                max_passes: 0,
            },
        ),
        ("steps_1_3", PreprocessOptions::default()),
    ];
    for (name, opts) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let universe = ClassifierUniverse::build(&ds.instance);
                let mut ws = WorkState::new(&ds.instance, universe);
                black_box(preprocess(&mut ws, &opts).unwrap().selected)
            });
        });
    }
    group.finish();
}

fn bench_universe_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_universe_enumeration");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let ds = SyntheticConfig::with_queries(n).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds.instance, |b, inst| {
            b.iter(|| black_box(ClassifierUniverse::build(inst).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_pipeline,
    bench_steps,
    bench_universe_build
);
criterion_main!(benches);
