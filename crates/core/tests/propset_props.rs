//! Property-based tests of the core set algebra against a `BTreeSet` model,
//! plus `Weight` arithmetic laws and cover-semantics invariants.
//!
//! The workspace builds offline, so instead of `proptest` these are
//! seeded-loop properties: each test draws a few hundred random cases from
//! the deterministic [`mc3_core::rng::StdRng`] and asserts the invariant on
//! every one. Failures print the seed so a case can be replayed.

use mc3_core::rng::prelude::*;
use mc3_core::{covered, covering_subset, Instance, PropId, PropSet, Weight, Weights};
use std::collections::BTreeSet;

const CASES: u64 = 300;

fn model(s: &PropSet) -> BTreeSet<u32> {
    s.iter().map(|p| p.0).collect()
}

fn rand_ids(rng: &mut StdRng, max: u32, len_max: usize) -> Vec<u32> {
    let len = rng.gen_range(0..len_max);
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

fn rand_propset(rng: &mut StdRng, max: u32) -> PropSet {
    PropSet::from_ids(rand_ids(rng, max, 12))
}

#[test]
fn union_difference_intersection_match_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_propset(&mut rng, 30);
        let b = rand_propset(&mut rng, 30);
        let (ma, mb) = (model(&a), model(&b));

        let union: BTreeSet<u32> = ma.union(&mb).copied().collect();
        assert_eq!(model(&a.union(&b)), union, "union, seed {seed}");

        let diff: BTreeSet<u32> = ma.difference(&mb).copied().collect();
        assert_eq!(model(&a.difference(&b)), diff, "difference, seed {seed}");

        let inter: BTreeSet<u32> = ma.intersection(&mb).copied().collect();
        assert_eq!(
            a.intersects(&b),
            !inter.is_empty(),
            "intersects, seed {seed}"
        );
        assert_eq!(
            model(&a.intersection(&b)),
            inter,
            "intersection, seed {seed}"
        );
    }
}

#[test]
fn subset_and_contains_match_model() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_propset(&mut rng, 12);
        let b = rand_propset(&mut rng, 12);
        assert_eq!(
            a.is_subset_of(&b),
            model(&a).is_subset(&model(&b)),
            "subset, seed {seed}"
        );
        let p = rng.gen_range(0..20u32);
        let c = rand_propset(&mut rng, 20);
        assert_eq!(
            c.contains(PropId(p)),
            model(&c).contains(&p),
            "contains, seed {seed}"
        );
    }
}

#[test]
fn mask_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = rand_ids(&mut rng, 100, 10);
        ids.push(rng.gen_range(0..100)); // non-empty
        let q = PropSet::from_ids(ids);
        if q.len() > 16 {
            continue;
        }
        let full = (1u32 << q.len()) - 1;
        for mask in 0..=full {
            let sub = q.subset_by_mask(mask);
            assert!(sub.is_subset_of(&q), "mask subset, seed {seed}");
            assert_eq!(q.mask_of(&sub), Some(mask), "mask roundtrip, seed {seed}");
        }
    }
}

#[test]
fn union_laws() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_propset(&mut rng, 20);
        let b = rand_propset(&mut rng, 20);
        let c = rand_propset(&mut rng, 20);
        // commutativity, associativity, idempotence
        assert_eq!(a.union(&b), b.union(&a), "commutativity, seed {seed}");
        assert_eq!(
            a.union(&b).union(&c),
            a.union(&b.union(&c)),
            "associativity, seed {seed}"
        );
        assert_eq!(a.union(&a), a.clone(), "idempotence, seed {seed}");
        // absorption with difference: (a \ b) ∪ (a ∩ b) = a
        assert_eq!(
            a.difference(&b).union(&a.intersection(&b)),
            a,
            "absorption, seed {seed}"
        );
    }
}

#[test]
fn weight_addition_laws() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rng.gen_range(0..u64::MAX / 4);
        let b = rng.gen_range(0..u64::MAX / 4);
        let c = rng.gen_range(0..u64::MAX / 8);
        let (wa, wb, wc) = (Weight::new(a), Weight::new(b), Weight::new(c));
        assert_eq!(wa + wb, wb + wa, "commutativity, seed {seed}");
        assert_eq!((wa + wb) + wc, wa + (wb + wc), "associativity, seed {seed}");
        assert_eq!(wa + Weight::ZERO, wa, "identity, seed {seed}");
        assert_eq!(
            wa + Weight::INFINITE,
            Weight::INFINITE,
            "absorbing, seed {seed}"
        );
        // monotone
        assert!(wa + wb >= wa, "monotonicity, seed {seed}");
    }
}

#[test]
fn cover_is_monotone() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut query = rand_ids(&mut rng, 8, 5);
        query.push(rng.gen_range(0..8));
        let q = PropSet::from_ids(query);
        let n = rng.gen_range(0..6);
        let mut cs: Vec<PropSet> = (0..n)
            .map(|_| {
                let mut ids = rand_ids(&mut rng, 8, 3);
                ids.push(rng.gen_range(0..8));
                PropSet::from_ids(ids)
            })
            .collect();
        let before = covered(&q, &cs);
        let mut extra = rand_ids(&mut rng, 8, 3);
        extra.push(rng.gen_range(0..8));
        cs.push(PropSet::from_ids(extra));
        // adding classifiers can only help
        assert!(!before || covered(&q, &cs), "monotone cover, seed {seed}");
    }
}

#[test]
fn covering_subset_witness_is_sound() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut query = rand_ids(&mut rng, 8, 5);
        query.push(rng.gen_range(0..8));
        let q = PropSet::from_ids(query);
        let n = rng.gen_range(0..8);
        let cs: Vec<PropSet> = (0..n)
            .map(|_| {
                let mut ids = rand_ids(&mut rng, 8, 3);
                ids.push(rng.gen_range(0..8));
                PropSet::from_ids(ids)
            })
            .collect();
        if let Some(witness) = covering_subset(&q, &cs) {
            let mut union = PropSet::empty();
            for &i in &witness {
                assert!(cs[i].is_subset_of(&q), "witness member ⊆ q, seed {seed}");
                union = union.union(&cs[i]);
            }
            assert_eq!(union, q, "witness union = q, seed {seed}");
        }
    }
}

#[test]
fn instance_canonicalization_is_stable() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..10);
        let queries: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let mut ids = rand_ids(&mut rng, 10, 4);
                ids.push(rng.gen_range(0..10));
                ids
            })
            .collect();
        let a = Instance::new(queries.clone(), Weights::uniform(1u64)).expect("valid");
        let mut shuffled = queries;
        shuffled.reverse();
        let b = Instance::new(shuffled, Weights::uniform(1u64)).expect("valid");
        assert_eq!(a.queries(), b.queries(), "canonical queries, seed {seed}");
        assert_eq!(
            a.num_properties(),
            b.num_properties(),
            "property count, seed {seed}"
        );
    }
}
