//! Property-based tests of the core set algebra against a `BTreeSet` model,
//! plus `Weight` arithmetic laws and cover-semantics invariants.

use mc3_core::{covered, covering_subset, Instance, PropId, PropSet, Weight, Weights};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn model(s: &PropSet) -> BTreeSet<u32> {
    s.iter().map(|p| p.0).collect()
}

fn arb_propset(max: u32) -> impl Strategy<Value = PropSet> {
    prop::collection::vec(0..max, 0..12).prop_map(PropSet::from_ids)
}

proptest! {
    #[test]
    fn union_matches_model(a in arb_propset(30), b in arb_propset(30)) {
        let expected: BTreeSet<u32> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(model(&a.union(&b)), expected);
    }

    #[test]
    fn difference_matches_model(a in arb_propset(30), b in arb_propset(30)) {
        let expected: BTreeSet<u32> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(model(&a.difference(&b)), expected);
    }

    #[test]
    fn intersection_matches_model(a in arb_propset(30), b in arb_propset(30)) {
        let expected: BTreeSet<u32> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(a.intersects(&b), !expected.is_empty());
        prop_assert_eq!(model(&a.intersection(&b)), expected);
    }

    #[test]
    fn subset_matches_model(a in arb_propset(12), b in arb_propset(12)) {
        prop_assert_eq!(a.is_subset_of(&b), model(&a).is_subset(&model(&b)));
    }

    #[test]
    fn contains_matches_model(a in arb_propset(20), p in 0..20u32) {
        prop_assert_eq!(a.contains(PropId(p)), model(&a).contains(&p));
    }

    #[test]
    fn mask_roundtrip(a in prop::collection::vec(0..100u32, 1..10)) {
        let q = PropSet::from_ids(a);
        prop_assume!(q.len() <= 16);
        let full = (1u32 << q.len()) - 1;
        for mask in 0..=full {
            let sub = q.subset_by_mask(mask);
            prop_assert!(sub.is_subset_of(&q));
            prop_assert_eq!(q.mask_of(&sub), Some(mask));
        }
    }

    #[test]
    fn union_laws(a in arb_propset(20), b in arb_propset(20), c in arb_propset(20)) {
        // commutativity, associativity, idempotence
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        // absorption with difference: (a \ b) ∪ (a ∩ b) = a
        prop_assert_eq!(a.difference(&b).union(&a.intersection(&b)), a);
    }

    #[test]
    fn weight_addition_laws(a in 0..u64::MAX / 4, b in 0..u64::MAX / 4, c in 0..u64::MAX / 8) {
        let (wa, wb, wc) = (Weight::new(a), Weight::new(b), Weight::new(c));
        prop_assert_eq!(wa + wb, wb + wa);
        prop_assert_eq!((wa + wb) + wc, wa + (wb + wc));
        prop_assert_eq!(wa + Weight::ZERO, wa);
        prop_assert_eq!(wa + Weight::INFINITE, Weight::INFINITE);
        // monotone
        prop_assert!(wa + wb >= wa);
    }

    #[test]
    fn cover_is_monotone(
        query in prop::collection::vec(0..8u32, 1..6),
        classifiers in prop::collection::vec(prop::collection::vec(0..8u32, 1..4), 0..6),
        extra in prop::collection::vec(0..8u32, 1..4),
    ) {
        let q = PropSet::from_ids(query);
        let mut cs: Vec<PropSet> = classifiers.into_iter().map(PropSet::from_ids).collect();
        let before = covered(&q, &cs);
        cs.push(PropSet::from_ids(extra));
        // adding classifiers can only help
        prop_assert!(!before || covered(&q, &cs));
    }

    #[test]
    fn covering_subset_witness_is_sound(
        query in prop::collection::vec(0..8u32, 1..6),
        classifiers in prop::collection::vec(prop::collection::vec(0..8u32, 1..4), 0..8),
    ) {
        let q = PropSet::from_ids(query);
        let cs: Vec<PropSet> = classifiers.into_iter().map(PropSet::from_ids).collect();
        if let Some(witness) = covering_subset(&q, &cs) {
            let mut union = PropSet::empty();
            for &i in &witness {
                prop_assert!(cs[i].is_subset_of(&q));
                union = union.union(&cs[i]);
            }
            prop_assert_eq!(union, q);
        }
    }

    #[test]
    fn instance_canonicalization_is_stable(
        queries in prop::collection::vec(prop::collection::vec(0..10u32, 1..5), 1..10)
    ) {
        let a = Instance::new(queries.clone(), Weights::uniform(1u64)).unwrap();
        let mut shuffled = queries;
        shuffled.reverse();
        let b = Instance::new(shuffled, Weights::uniform(1u64)).unwrap();
        prop_assert_eq!(a.queries(), b.queries());
        prop_assert_eq!(a.num_properties(), b.num_properties());
    }
}
