//! Seeded property tests for the certificate layer: a genuine solution
//! always certifies, and a corrupted one (a dropped classifier, a lost
//! query, an understated cost) always fails re-verification.

use mc3_core::rng::prelude::*;
use mc3_core::{Certificate, Instance, PropSet, Solution, Weights};

const CASES: u64 = 200;

/// A random coverable instance plus a feasible solution built from a mix
/// of whole-query classifiers and per-property singletons.
fn rand_instance(rng: &mut StdRng) -> (Instance, Solution) {
    let num_queries = rng.gen_range(1..=6usize);
    let mut queries = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let len = rng.gen_range(1..=4usize);
        let mut props: Vec<u32> = (0..len).map(|_| rng.gen_range(0..9u32)).collect();
        props.sort_unstable();
        props.dedup();
        queries.push(props);
    }
    let instance =
        Instance::new(queries.clone(), Weights::seeded(rng.gen(), 1, 12)).expect("valid instance");
    let mut classifiers: Vec<PropSet> = Vec::new();
    for q in &queries {
        if rng.gen_bool(0.5) || q.len() == 1 {
            classifiers.push(PropSet::from_ids(q.iter().copied()));
        } else {
            for &p in q {
                classifiers.push(PropSet::from_ids([p]));
            }
        }
    }
    classifiers.sort_unstable();
    classifiers.dedup();
    let solution = Solution::new(&instance, classifiers).expect("feasible by construction");
    (instance, solution)
}

#[test]
fn genuine_solutions_always_certify() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, solution) = rand_instance(&mut rng);
        let cert = Certificate::for_solution(&instance, &solution)
            .unwrap_or_else(|e| panic!("certificate construction failed: {e}, seed {seed}"));
        assert!(
            cert.verify(&instance, &solution).is_ok(),
            "fresh certificate failed verification, seed {seed}"
        );
        assert_eq!(cert.witnesses.len(), instance.num_queries(), "seed {seed}");
    }
}

#[test]
fn dropped_classifier_fails_certificate_verification() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, solution) = rand_instance(&mut rng);
        let cert = Certificate::for_solution(&instance, &solution).expect("feasible");
        let mut fewer = solution.classifiers().to_vec();
        let victim = rng.gen_range(0..fewer.len());
        fewer.remove(victim);
        // Rebuilding may legitimately fail (no longer a cover) — what must
        // NEVER happen is the old certificate accepting the smaller set.
        let corrupted = Solution::with_cost(
            fewer.clone(),
            fewer.iter().map(|c| instance.weight(c)).sum(),
        );
        assert!(
            cert.verify(&instance, &corrupted).is_err(),
            "certificate accepted a solution missing classifier {victim}, seed {seed}"
        );
    }
}

#[test]
fn understated_cost_fails_certificate_verification() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, solution) = rand_instance(&mut rng);
        let mut cert = Certificate::for_solution(&instance, &solution).expect("feasible");
        let claimed = cert.cost.raw();
        if claimed == 0 {
            continue;
        }
        cert.cost = mc3_core::Weight::new(claimed - 1);
        assert!(
            cert.verify(&instance, &solution).is_err(),
            "certificate accepted an understated cost, seed {seed}"
        );
    }
}

#[test]
fn tampered_witness_fails_certificate_verification() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (instance, solution) = rand_instance(&mut rng);
        let mut cert = Certificate::for_solution(&instance, &solution).expect("feasible");
        let qi = rng.gen_range(0..cert.witnesses.len());
        // Emptying a witness breaks the union condition for any non-empty
        // query; pointing it past the classifier list breaks indexing.
        if rng.gen_bool(0.5) {
            cert.witnesses[qi].classifier_indices.clear();
        } else {
            cert.witnesses[qi]
                .classifier_indices
                .push(solution.classifiers().len());
        }
        assert!(
            cert.verify(&instance, &solution).is_err(),
            "certificate accepted a tampered witness for query {qi}, seed {seed}"
        );
    }
}
