//! Checkable certificates for MC³ solutions.
//!
//! A [`Certificate`] is a self-contained, machine-verifiable record of *why*
//! a solution is correct and (when the producing algorithm knows) *how good*
//! it is:
//!
//! * **feasibility** — for every query `q` a witness `T ⊆ S` with `⋃T = q`
//!   (§2.1 cover semantics), stored as indices into the solution's
//!   classifier list;
//! * **cost** — the claimed total `W(S)`, re-derivable from the instance's
//!   weight function;
//! * **quality** — an optional certified lower bound `LB ≤ OPT` (a min-cut
//!   value via Theorem 4.1's WVC/max-flow duality, an LP relaxation value,
//!   a greedy dual-fitting bound, or an exact optimum) together with an
//!   optional approximation factor `ρ`, asserting `W(S) ≤ ρ · LB`
//!   (Theorem 5.3's `ln I + ln(k−1) + 1` for the general solver, `ρ = 1`
//!   for the exact `k ≤ 2` solver).
//!
//! [`Certificate::verify`] re-checks all three claims against the instance
//! and solution from scratch; it trusts nothing recorded by the producer
//! beyond the witness indices themselves. The `mc3 audit` CLI subcommand and
//! the `verify`-feature solver paths are built on this type.

use crate::cover;
use crate::instance::Instance;
use crate::solution::Solution;
use crate::weight::Weight;
use std::fmt;

/// How a certificate's lower bound was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerBoundKind {
    /// A min-cut value equal to the optimal WVC weight (Theorem 4.1);
    /// certifies optimality when it matches the solution cost.
    MinCut,
    /// The optimal value of the weighted-set-cover LP relaxation.
    LpRelaxation,
    /// The greedy dual-fitting bound (price vector scaled by `H_d`).
    DualFitting,
    /// An exact optimum from a reference solver.
    Exact,
}

impl fmt::Display for LowerBoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LowerBoundKind::MinCut => "min-cut duality",
            LowerBoundKind::LpRelaxation => "LP relaxation",
            LowerBoundKind::DualFitting => "greedy dual fitting",
            LowerBoundKind::Exact => "exact reference",
        };
        f.write_str(s)
    }
}

/// Per-query feasibility witness: the indices (into the solution's canonical
/// classifier list) of a `T ⊆ S` whose union is exactly the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverWitness {
    /// Index of the query in the instance.
    pub query_index: usize,
    /// Indices into [`Solution::classifiers`] forming the witness `T`.
    pub classifier_indices: Vec<usize>,
}

/// A checkable record of solution feasibility, cost and quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Claimed total construction cost `W(S)`.
    pub cost: Weight,
    /// One witness per query, in query order.
    pub witnesses: Vec<CoverWitness>,
    /// A certified lower bound on `OPT`, if the producer computed one.
    pub lower_bound: Option<Weight>,
    /// Provenance of [`Certificate::lower_bound`].
    pub lower_bound_kind: Option<LowerBoundKind>,
    /// Guaranteed approximation factor `ρ` with `W(S) ≤ ρ · LB`, if known.
    pub ratio_bound: Option<f64>,
}

/// Why certificate construction or verification failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CertificateError {
    /// A query has no witness (or construction found it uncovered).
    Uncovered {
        /// Index of the uncovered query.
        query_index: usize,
    },
    /// A witness references a classifier index outside the solution.
    BadWitnessIndex {
        /// The offending query.
        query_index: usize,
        /// The out-of-range index.
        index: usize,
    },
    /// A witness member is not a subset of its query, or the witness union
    /// differs from the query.
    BadWitness {
        /// The offending query.
        query_index: usize,
    },
    /// The recorded cost does not match the weight function.
    CostMismatch {
        /// Cost recorded in the certificate.
        recorded: Weight,
        /// Cost recomputed from the instance.
        recomputed: Weight,
    },
    /// The recorded lower bound exceeds the solution cost — an impossible
    /// "lower" bound, so either the bound or the solution is corrupt.
    BoundAboveCost {
        /// The claimed lower bound.
        lower_bound: Weight,
        /// The solution cost.
        cost: Weight,
    },
    /// The solution cost exceeds `ρ · LB`: the approximation guarantee the
    /// producer claimed does not hold.
    RatioViolated {
        /// Solution cost.
        cost: Weight,
        /// Certified lower bound.
        lower_bound: Weight,
        /// Claimed factor.
        ratio: f64,
    },
    /// Witness count does not match the instance's query count.
    WitnessCountMismatch {
        /// Witnesses recorded.
        recorded: usize,
        /// Queries in the instance.
        expected: usize,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::Uncovered { query_index } => {
                write!(f, "query #{query_index} is not covered by the solution")
            }
            CertificateError::BadWitnessIndex { query_index, index } => write!(
                f,
                "witness for query #{query_index} references classifier #{index} outside the solution"
            ),
            CertificateError::BadWitness { query_index } => write!(
                f,
                "witness for query #{query_index} does not union to the query"
            ),
            CertificateError::CostMismatch {
                recorded,
                recomputed,
            } => write!(
                f,
                "certificate records cost {recorded} but weights sum to {recomputed}"
            ),
            CertificateError::BoundAboveCost { lower_bound, cost } => write!(
                f,
                "claimed lower bound {lower_bound} exceeds solution cost {cost}"
            ),
            CertificateError::RatioViolated {
                cost,
                lower_bound,
                ratio,
            } => write!(
                f,
                "cost {cost} exceeds {ratio:.4} x lower bound {lower_bound}: approximation guarantee violated"
            ),
            CertificateError::WitnessCountMismatch { recorded, expected } => write!(
                f,
                "certificate has {recorded} witnesses for {expected} queries"
            ),
        }
    }
}

impl std::error::Error for CertificateError {}

impl Certificate {
    /// Builds a feasibility certificate for `solution` on `instance`,
    /// extracting a cover witness for every query.
    ///
    /// The witness is the maximal covering subset per query (every selected
    /// classifier that is a subset of the query); quality fields start
    /// empty and can be attached with [`Certificate::with_lower_bound`].
    pub fn for_solution(
        instance: &Instance,
        solution: &Solution,
    ) -> Result<Certificate, CertificateError> {
        let classifiers = solution.classifiers();
        let mut witnesses = Vec::with_capacity(instance.num_queries());
        for (qi, q) in instance.queries().iter().enumerate() {
            let w = cover::covering_subset(q, classifiers)
                .ok_or(CertificateError::Uncovered { query_index: qi })?;
            witnesses.push(CoverWitness {
                query_index: qi,
                classifier_indices: w,
            });
        }
        let recomputed: Weight = classifiers.iter().map(|c| instance.weight(c)).sum();
        if recomputed != solution.cost() {
            return Err(CertificateError::CostMismatch {
                recorded: solution.cost(),
                recomputed,
            });
        }
        Ok(Certificate {
            cost: solution.cost(),
            witnesses,
            lower_bound: None,
            lower_bound_kind: None,
            ratio_bound: None,
        })
    }

    /// Attaches a certified lower bound (and optionally a guaranteed
    /// approximation factor) to the certificate.
    pub fn with_lower_bound(
        mut self,
        bound: Weight,
        kind: LowerBoundKind,
        ratio: Option<f64>,
    ) -> Certificate {
        self.lower_bound = Some(bound);
        self.lower_bound_kind = Some(kind);
        self.ratio_bound = ratio;
        self
    }

    /// Whether the certificate proves optimality (`LB = W(S)`).
    pub fn proves_optimality(&self) -> bool {
        self.lower_bound == Some(self.cost)
    }

    /// Re-verifies every claim against `instance` and `solution` from
    /// scratch. Trusts only the witness index lists.
    pub fn verify(&self, instance: &Instance, solution: &Solution) -> Result<(), CertificateError> {
        let classifiers = solution.classifiers();
        if self.witnesses.len() != instance.num_queries() {
            return Err(CertificateError::WitnessCountMismatch {
                recorded: self.witnesses.len(),
                expected: instance.num_queries(),
            });
        }
        for w in &self.witnesses {
            let q = &instance.queries()[w.query_index];
            let mut union = crate::propset::PropSet::empty();
            for &ci in &w.classifier_indices {
                let c = classifiers
                    .get(ci)
                    .ok_or(CertificateError::BadWitnessIndex {
                        query_index: w.query_index,
                        index: ci,
                    })?;
                if !c.is_subset_of(q) {
                    return Err(CertificateError::BadWitness {
                        query_index: w.query_index,
                    });
                }
                union = union.union(c);
            }
            if &union != q {
                return Err(CertificateError::BadWitness {
                    query_index: w.query_index,
                });
            }
        }
        let recomputed: Weight = classifiers.iter().map(|c| instance.weight(c)).sum();
        if recomputed != self.cost || solution.cost() != self.cost {
            return Err(CertificateError::CostMismatch {
                recorded: self.cost,
                recomputed,
            });
        }
        if let Some(lb) = self.lower_bound {
            if lb > self.cost {
                return Err(CertificateError::BoundAboveCost {
                    lower_bound: lb,
                    cost: self.cost,
                });
            }
            if let Some(ratio) = self.ratio_bound {
                if !ratio_holds(self.cost, lb, ratio) {
                    return Err(CertificateError::RatioViolated {
                        cost: self.cost,
                        lower_bound: lb,
                        ratio,
                    });
                }
            }
        }
        Ok(())
    }

    /// A short multi-line human-readable rendering for CLI output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cost: {}", self.cost);
        let _ = writeln!(out, "queries certified: {}", self.witnesses.len());
        let max_witness = self
            .witnesses
            .iter()
            .map(|w| w.classifier_indices.len())
            .max()
            .unwrap_or(0);
        let _ = writeln!(out, "largest witness |T|: {max_witness}");
        match (self.lower_bound, self.lower_bound_kind) {
            (Some(lb), Some(kind)) => {
                let _ = writeln!(out, "lower bound: {lb} ({kind})");
                if self.proves_optimality() {
                    let _ = writeln!(out, "optimality: PROVEN (cost = lower bound)");
                } else if let Some(r) = self.ratio_bound {
                    let _ = writeln!(out, "guaranteed ratio: {r:.4}");
                }
            }
            _ => {
                let _ = writeln!(out, "lower bound: (none recorded)");
            }
        }
        out
    }
}

/// Checks `cost ≤ ratio · lb` entirely in integer arithmetic where possible,
/// avoiding float-equality pitfalls (`no-float-eq` lint rule).
fn ratio_holds(cost: Weight, lb: Weight, ratio: f64) -> bool {
    match (cost.finite(), lb.finite()) {
        (Some(c), Some(l)) => {
            // ceil(ratio * l) with a small epsilon for the f64 product; the
            // comparison itself stays on integers.
            let limit = (ratio * l as f64) * (1.0 + 1e-12) + 1e-9;
            (c as f64) <= limit
        }
        // An infinite lower bound can only be matched by an infinite cost;
        // finite bounds never constrain an infinite cost claim (it already
        // failed the BoundAboveCost check upstream).
        (None, _) => false,
        (Some(_), None) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propset::PropSet;
    use crate::weights::Weights;

    fn tiny() -> (Instance, Solution) {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![1u32, 2]], Weights::uniform(2u64)).unwrap();
        let solution = Solution::new(
            &instance,
            vec![
                PropSet::from_ids([0u32]),
                PropSet::from_ids([1u32]),
                PropSet::from_ids([2u32]),
            ],
        )
        .unwrap();
        (instance, solution)
    }

    #[test]
    fn builds_and_verifies() {
        let (instance, solution) = tiny();
        let cert = Certificate::for_solution(&instance, &solution).unwrap();
        assert_eq!(cert.witnesses.len(), 2);
        cert.verify(&instance, &solution).unwrap();
        assert!(!cert.proves_optimality());
    }

    #[test]
    fn uncovered_solution_is_rejected_at_construction() {
        let (instance, _) = tiny();
        let partial = Solution::new(&instance, vec![PropSet::from_ids([0u32, 1])]).unwrap();
        assert_eq!(
            Certificate::for_solution(&instance, &partial),
            Err(CertificateError::Uncovered { query_index: 1 })
        );
    }

    #[test]
    fn dropped_classifier_fails_verification() {
        let (instance, solution) = tiny();
        let cert = Certificate::for_solution(&instance, &solution).unwrap();
        // Corrupt the solution: drop one selected classifier.
        let mut fewer = solution.classifiers().to_vec();
        fewer.remove(1);
        let corrupted = Solution::new(&instance, fewer).unwrap();
        assert!(cert.verify(&instance, &corrupted).is_err());
    }

    #[test]
    fn tampered_witness_fails_verification() {
        let (instance, solution) = tiny();
        let mut cert = Certificate::for_solution(&instance, &solution).unwrap();
        cert.witnesses[0].classifier_indices = vec![99];
        assert!(matches!(
            cert.verify(&instance, &solution),
            Err(CertificateError::BadWitnessIndex { .. })
        ));
        let mut cert = Certificate::for_solution(&instance, &solution).unwrap();
        cert.witnesses[1].classifier_indices = vec![0];
        assert!(matches!(
            cert.verify(&instance, &solution),
            Err(CertificateError::BadWitness { .. })
        ));
    }

    #[test]
    fn optimality_and_ratio_checks() {
        let (instance, solution) = tiny();
        let cert = Certificate::for_solution(&instance, &solution)
            .unwrap()
            .with_lower_bound(solution.cost(), LowerBoundKind::MinCut, None);
        assert!(cert.proves_optimality());
        cert.verify(&instance, &solution).unwrap();

        // A "lower bound" above the cost is impossible.
        let bad = Certificate::for_solution(&instance, &solution)
            .unwrap()
            .with_lower_bound(Weight::new(1_000), LowerBoundKind::Exact, None);
        assert!(matches!(
            bad.verify(&instance, &solution),
            Err(CertificateError::BoundAboveCost { .. })
        ));

        // Ratio claim that does not hold: cost 6, bound 2, claimed ratio 2.
        let bad = Certificate::for_solution(&instance, &solution)
            .unwrap()
            .with_lower_bound(Weight::new(2), LowerBoundKind::DualFitting, Some(2.0));
        assert!(matches!(
            bad.verify(&instance, &solution),
            Err(CertificateError::RatioViolated { .. })
        ));

        // Ratio claim that holds: cost 6 <= 3.0 * 2.
        let ok = Certificate::for_solution(&instance, &solution)
            .unwrap()
            .with_lower_bound(Weight::new(2), LowerBoundKind::DualFitting, Some(3.0));
        ok.verify(&instance, &solution).unwrap();
    }

    #[test]
    fn render_mentions_cost_and_bound() {
        let (instance, solution) = tiny();
        let cert = Certificate::for_solution(&instance, &solution)
            .unwrap()
            .with_lower_bound(solution.cost(), LowerBoundKind::MinCut, Some(1.0));
        let text = cert.render();
        assert!(text.contains("cost: 6"));
        assert!(text.contains("min-cut duality"));
        assert!(text.contains("PROVEN"));
    }
}
