//! A small, fast, non-cryptographic hasher (the `FxHash` algorithm used by
//! the Rust compiler), implemented locally to avoid an extra dependency.
//!
//! MC³ solvers hash millions of small keys (interned ids, short property
//! sets) on hot paths; SipHash's HashDoS protection is unnecessary here and
//! measurably slower (see the Rust Performance Book, "Hashing").

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
// audit:allow(no-default-hasher) definition site: this IS the sanctioned hasher
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
// audit:allow(no-default-hasher) definition site: this IS the sanctioned hasher
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a test");
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], i as usize);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&vec![i, i + 1]], i as usize);
        }
    }

    #[test]
    fn partial_chunks_hash_consistently() {
        // 9 bytes exercises the remainder path.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
