//! Checked narrowing conversions — the sanctioned choke point for the
//! `no-silent-truncation` lint.
//!
//! A bare `expr as u32` silently drops high bits when the value is out of
//! range, which is exactly how id/cost arithmetic goes wrong at serving
//! scale. These helpers route every narrowing through `TryFrom` and turn
//! an out-of-range value into a loud panic at the offending call site
//! (`#[track_caller]`) instead of a silently corrupted id. The panics are
//! *invariant* checks — every caller converts values it has itself bounded
//! (ids below a universe size, counts below a query length), so a failure
//! here is a bug, not an input error, and the one `expect` each carries is
//! individually waived for `no-unwrap-in-lib`.
//!
//! The exemption story the lint relies on: the workspace pins 64-bit
//! targets (asserted below), so `as usize`/`as u64` from `u32`-sized ids
//! can never truncate and stay allowed; everything narrower funnels
//! through here or carries a reviewed `audit:allow(no-silent-truncation)`
//! waiver stating the range argument.

/// The id/offset arithmetic across the workspace assumes `usize` is at
/// least 64 bits wide (u32 ids index into u64-word bitsets, and `u64`
/// counters round-trip through `usize` histogram buckets).
const _USIZE_IS_64_BIT: () = assert!(
    usize::BITS >= 64,
    "MC3 requires a 64-bit target: u64 <-> usize conversions are assumed lossless"
);

/// Converts to `u32`, panicking at the call site if the value is out of
/// range.
///
/// Use for ids and counts whose bound is an invariant of the caller
/// (universe sizes, per-query property counts).
#[inline]
#[track_caller]
pub fn u32_of<T: TryInto<u32>>(v: T) -> u32 {
    match v.try_into() {
        Ok(x) => x,
        // audit:allow(no-unwrap-in-lib) the single reviewed truncation choke point; out-of-range here is a caller invariant violation
        Err(_) => panic!("value exceeds u32 range"),
    }
}

/// Converts to `u16`, panicking at the call site if the value is out of
/// range.
#[inline]
#[track_caller]
pub fn u16_of<T: TryInto<u16>>(v: T) -> u16 {
    match v.try_into() {
        Ok(x) => x,
        // audit:allow(no-unwrap-in-lib) reviewed truncation choke point, same contract as u32_of
        Err(_) => panic!("value exceeds u16 range"),
    }
}

/// Converts to `u8`, panicking at the call site if the value is out of
/// range.
#[inline]
#[track_caller]
pub fn u8_of<T: TryInto<u8>>(v: T) -> u8 {
    match v.try_into() {
        Ok(x) => x,
        // audit:allow(no-unwrap-in-lib) reviewed truncation choke point, same contract as u32_of
        Err(_) => panic!("value exceeds u8 range"),
    }
}

/// Converts to `i64`, panicking at the call site if the value is out of
/// range (a `u64` above `i64::MAX` would otherwise flip sign).
#[inline]
#[track_caller]
pub fn i64_of<T: TryInto<i64>>(v: T) -> i64 {
    match v.try_into() {
        Ok(x) => x,
        // audit:allow(no-unwrap-in-lib) reviewed truncation choke point, same contract as u32_of
        Err(_) => panic!("value exceeds i64 range"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_round_trip() {
        assert_eq!(u32_of(7u64), 7);
        assert_eq!(u32_of(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(u32_of(0usize), 0);
        assert_eq!(u16_of(65_535u32), u16::MAX);
        assert_eq!(u8_of(255u32), u8::MAX);
        assert_eq!(i64_of(u64::MAX / 2), (u64::MAX / 2) as i64);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 range")]
    fn out_of_range_panics_loudly() {
        let _ = u32_of(u64::from(u32::MAX) + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds i64 range")]
    fn sign_flip_panics_loudly() {
        let _ = i64_of(u64::MAX);
    }
}
