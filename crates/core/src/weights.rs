//! The weight function `W : C_Q → [0, ∞]`.
//!
//! Classifiers absent from an explicit map are treated as having infinite
//! weight — exactly the paper's convention that infeasible classifiers "are
//! simply omitted from the input" (§2.1) and do not count towards input size.
//!
//! Three representations are supported:
//!
//! * [`Weights::Uniform`] — every classifier costs the same (the model of the
//!   predecessor paper \[13\] and the BestBuy dataset);
//! * an explicit map built with [`WeightsBuilder`];
//! * [`Weights::Seeded`] — a deterministic pseudo-random cost per classifier
//!   drawn uniformly from a range, as in the paper's synthetic workload
//!   (costs uniform in `[1, 50]`). This avoids materializing millions of
//!   map entries for large generated instances; the cost of a classifier is a
//!   pure function of `(seed, classifier)`.

use crate::fxhash::{FxHashMap, FxHasher};
use crate::propset::{Classifier, PropSet};
use crate::weight::Weight;
use std::hash::Hasher;
use std::sync::Arc;

/// A user-supplied cost estimator (e.g. wrapping a labeled-sample-count
/// model, as in the paper's production setting where "the monetary cost of
/// training a given classifier can be estimated in advance \[44\]").
pub type CostFn = dyn Fn(&PropSet) -> Weight + Send + Sync;

/// A total weight function over property sets.
#[derive(Clone)]
pub enum Weights {
    /// Every classifier in `C_Q` has the same finite cost.
    Uniform(Weight),
    /// Explicit per-classifier costs; absent classifiers get `default`
    /// (usually [`Weight::INFINITE`]).
    Map {
        /// Explicit costs.
        map: FxHashMap<Classifier, Weight>,
        /// Cost of classifiers not present in `map`.
        default: Weight,
    },
    /// Deterministic pseudo-random integer cost in `[lo, hi]` per classifier.
    Seeded {
        /// Seed mixed into the per-classifier hash.
        seed: u64,
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// An arbitrary cost estimator. Must be deterministic (the same
    /// classifier is priced repeatedly) and total (return
    /// [`Weight::INFINITE`] for infeasible classifiers).
    Custom(Arc<CostFn>),
}

impl std::fmt::Debug for Weights {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Weights::Uniform(w) => f.debug_tuple("Uniform").field(w).finish(),
            Weights::Map { map, default } => f
                .debug_struct("Map")
                .field("entries", &map.len())
                .field("default", default)
                .finish(),
            Weights::Seeded { seed, lo, hi } => f
                .debug_struct("Seeded")
                .field("seed", seed)
                .field("lo", lo)
                .field("hi", hi)
                .finish(),
            Weights::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl Weights {
    /// Uniform weight `w` for all classifiers.
    pub fn uniform(w: impl Into<Weight>) -> Weights {
        Weights::Uniform(w.into())
    }

    /// Seeded pseudo-random weights uniform in `[lo, hi]`.
    pub fn seeded(seed: u64, lo: u64, hi: u64) -> Weights {
        assert!(lo <= hi, "empty weight range");
        assert!(hi < u64::MAX, "hi must be finite");
        Weights::Seeded { seed, lo, hi }
    }

    /// Weights computed by an arbitrary (deterministic, total) estimator.
    pub fn custom(f: impl Fn(&PropSet) -> Weight + Send + Sync + 'static) -> Weights {
        Weights::Custom(Arc::new(f))
    }

    /// The cost of `classifier`.
    pub fn weight(&self, classifier: &PropSet) -> Weight {
        match self {
            Weights::Uniform(w) => *w,
            Weights::Map { map, default } => map.get(classifier).copied().unwrap_or(*default),
            Weights::Seeded { seed, lo, hi } => {
                let mut h = FxHasher::default();
                h.write_u64(*seed);
                for p in classifier.iter() {
                    h.write_u32(p.0);
                }
                // splitmix-style finalization for better low-bit diffusion
                let mut x = h.finish();
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58476d1ce4e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d049bb133111eb);
                x ^= x >> 31;
                Weight::new(lo + x % (hi - lo + 1))
            }
            Weights::Custom(f) => f(classifier),
        }
    }

    /// Number of explicit entries (0 for uniform/seeded weights).
    pub fn explicit_len(&self) -> usize {
        match self {
            Weights::Map { map, .. } => map.len(),
            _ => 0,
        }
    }
}

/// Builder for explicit ([`Weights::Map`]) weight functions.
///
/// # Example
///
/// ```
/// use mc3_core::{Weight, WeightsBuilder};
///
/// let w = WeightsBuilder::new()
///     .classifier([0u32, 1], 3u64)
///     .classifier([2u32], 5u64)
///     .infinite([0u32, 2]) // explicitly infeasible
///     .build();
/// assert_eq!(w.weight(&[0u32, 1].into_iter().collect()), Weight::new(3));
/// assert!(w.weight(&[0u32, 2].into_iter().collect()).is_infinite());
/// assert!(w.weight(&[9u32].into_iter().collect()).is_infinite()); // absent
/// ```
#[derive(Debug, Clone, Default)]
pub struct WeightsBuilder {
    map: FxHashMap<Classifier, Weight>,
    default: Option<Weight>,
}

impl WeightsBuilder {
    /// An empty builder whose absent-classifier default is infinity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cost of one classifier.
    pub fn classifier<I, T>(mut self, ids: I, cost: impl Into<Weight>) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<crate::prop::PropId>,
    {
        self.map.insert(PropSet::from_ids(ids), cost.into());
        self
    }

    /// Marks one classifier as infeasible (infinite weight).
    pub fn infinite<I, T>(mut self, ids: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<crate::prop::PropId>,
    {
        self.map.insert(PropSet::from_ids(ids), Weight::INFINITE);
        self
    }

    /// Inserts a pre-built `(classifier, cost)` pair.
    pub fn insert(&mut self, classifier: Classifier, cost: Weight) -> &mut Self {
        self.map.insert(classifier, cost);
        self
    }

    /// Overrides the default cost of classifiers absent from the map
    /// (infinity unless set).
    pub fn default_weight(mut self, w: Weight) -> Self {
        self.default = Some(w);
        self
    }

    /// Finalizes the weight function.
    pub fn build(self) -> Weights {
        Weights::Map {
            map: self.map,
            default: self.default.unwrap_or(Weight::INFINITE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn uniform_weights() {
        let w = Weights::uniform(7u64);
        assert_eq!(w.weight(&ps(&[1])), Weight::new(7));
        assert_eq!(w.weight(&ps(&[1, 2, 3])), Weight::new(7));
        assert_eq!(w.explicit_len(), 0);
    }

    #[test]
    fn map_weights_default_to_infinity() {
        let w = WeightsBuilder::new().classifier([1u32], 4u64).build();
        assert_eq!(w.weight(&ps(&[1])), Weight::new(4));
        assert!(w.weight(&ps(&[2])).is_infinite());
        assert_eq!(w.explicit_len(), 1);
    }

    #[test]
    fn map_weights_custom_default() {
        let w = WeightsBuilder::new().default_weight(Weight::new(1)).build();
        assert_eq!(w.weight(&ps(&[5, 6])), Weight::new(1));
    }

    #[test]
    fn seeded_weights_are_deterministic_and_in_range() {
        let w = Weights::seeded(42, 1, 50);
        for i in 0..500u32 {
            let c = ps(&[i, i + 1]);
            let a = w.weight(&c);
            let b = w.weight(&c);
            assert_eq!(a, b);
            let v = a.finite().unwrap();
            assert!((1..=50).contains(&v), "weight {v} out of range");
        }
    }

    #[test]
    fn seeded_weights_vary_with_seed_and_classifier() {
        let w1 = Weights::seeded(1, 1, 1_000_000);
        let w2 = Weights::seeded(2, 1, 1_000_000);
        let c = ps(&[10, 20]);
        // overwhelmingly likely to differ for a million-wide range
        assert_ne!(w1.weight(&c), w2.weight(&c));
        assert_ne!(w1.weight(&c), w1.weight(&ps(&[10, 21])));
    }

    #[test]
    fn seeded_weights_cover_the_range_roughly_uniformly() {
        let w = Weights::seeded(7, 0, 9);
        let mut buckets = [0usize; 10];
        for i in 0..10_000u32 {
            let v = w.weight(&ps(&[i])).finite().unwrap() as usize;
            buckets[v] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 700, "bucket {i} too small: {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty weight range")]
    fn seeded_rejects_empty_range() {
        let _ = Weights::seeded(0, 5, 4);
    }

    #[test]
    fn custom_cost_function() {
        // "cost = 3 per property, but pairs within one attribute are cheap"
        let w = Weights::custom(|c: &PropSet| {
            if c.len() == 2 {
                Weight::new(2)
            } else {
                Weight::new(3 * c.len() as u64)
            }
        });
        assert_eq!(w.weight(&ps(&[5])), Weight::new(3));
        assert_eq!(w.weight(&ps(&[5, 6])), Weight::new(2));
        assert_eq!(w.weight(&ps(&[5, 6, 7])), Weight::new(9));
        assert_eq!(w.explicit_len(), 0);
        // Debug does not try to render the closure
        assert_eq!(format!("{w:?}"), "Custom(..)");
        // and it is cloneable (shared Arc)
        let w2 = w.clone();
        assert_eq!(w2.weight(&ps(&[1, 2])), Weight::new(2));
    }

    #[test]
    fn custom_weights_drive_the_full_model() {
        let w = Weights::custom(|c: &PropSet| {
            if c.contains(crate::prop::PropId(9)) {
                Weight::INFINITE // property 9 is untrainable in conjunctions
            } else {
                Weight::new(c.len() as u64)
            }
        });
        let instance = crate::instance::Instance::new(vec![vec![0u32, 1]], w).unwrap();
        assert_eq!(instance.weight(&ps(&[0, 1])), Weight::new(2));
        assert!(instance.weight(&ps(&[9])).is_infinite());
    }
}
