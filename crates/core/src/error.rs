//! Error types shared by every `mc3-*` crate.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Mc3Error>;

/// Errors produced while building or solving MC³ instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mc3Error {
    /// A query with zero properties was supplied.
    EmptyQuery {
        /// Position of the offending query in the input.
        index: usize,
    },
    /// A query exceeds [`crate::MAX_QUERY_LEN`].
    QueryTooLong {
        /// Position of the offending query in the input.
        index: usize,
        /// Its length.
        len: usize,
    },
    /// The instance admits no finite-weight cover.
    ///
    /// The paper assumes `Q` can be covered by a solution of finite weight
    /// and disregards the trivial cases where this does not hold (§2.1); we
    /// detect and report them instead.
    Uncoverable {
        /// Index of the first query with no finite-weight cover.
        query_index: usize,
    },
    /// A classifier that is not a subset of any query was supplied where a
    /// member of `C_Q` was expected.
    ClassifierOutsideUniverse {
        /// Rendered classifier (sorted property ids).
        classifier: String,
    },
    /// Costs overflowed `u64` while being summed.
    CostOverflow,
    /// The LP solver exhausted its hard pivot bound (anti-cycling backstop)
    /// before reaching optimality. Callers with a combinatorial fallback
    /// should catch this and switch algorithms.
    LpIterationLimit {
        /// Simplex pivots performed before bailing out.
        pivots: u64,
    },
    /// An algorithm-specific invariant was violated (bug guard).
    Internal(String),
}

impl fmt::Display for Mc3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mc3Error::EmptyQuery { index } => {
                write!(
                    f,
                    "query #{index} is empty; queries must test at least one property"
                )
            }
            Mc3Error::QueryTooLong { index, len } => write!(
                f,
                "query #{index} has {len} properties, exceeding the supported maximum of {}",
                crate::MAX_QUERY_LEN
            ),
            Mc3Error::Uncoverable { query_index } => write!(
                f,
                "query #{query_index} has no finite-weight cover; the instance is uncoverable"
            ),
            Mc3Error::ClassifierOutsideUniverse { classifier } => {
                write!(
                    f,
                    "classifier {classifier} is not in the classifier universe C_Q"
                )
            }
            Mc3Error::CostOverflow => write!(f, "classifier cost sum overflowed u64"),
            Mc3Error::LpIterationLimit { pivots } => write!(
                f,
                "LP solver hit its hard pivot bound after {pivots} pivots without converging"
            ),
            Mc3Error::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for Mc3Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_query_index() {
        let err = Mc3Error::EmptyQuery { index: 3 };
        assert!(err.to_string().contains("#3"));
        let err = Mc3Error::QueryTooLong { index: 7, len: 40 };
        assert!(err.to_string().contains("#7"));
        assert!(err.to_string().contains("40"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&Mc3Error::CostOverflow);
    }
}
