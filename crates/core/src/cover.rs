//! Cover semantics (§2.1).
//!
//! A query `q` is covered by a classifier set `S` iff some `T ⊆ S` satisfies
//! `⋃T = q`. Since the union must equal `q` *exactly*, every member of such a
//! `T` is necessarily a subset of `q`; hence `q` is covered iff the union of
//! all members of `S` that are subsets of `q` equals `q`.

use crate::cast::u32_of;
use crate::instance::Instance;
use crate::propset::{Classifier, PropSet, Query};

/// Whether `query` is covered by `classifiers`.
pub fn covered(query: &Query, classifiers: &[Classifier]) -> bool {
    covering_subset(query, classifiers).is_some()
}

/// The indices of all members of `classifiers` that are subsets of `query`,
/// if their union equals `query`; `None` if the query is not covered.
///
/// The returned witness is the maximal covering subset; callers wanting an
/// irredundant witness can post-process.
pub fn covering_subset(query: &Query, classifiers: &[Classifier]) -> Option<Vec<usize>> {
    let mut union = PropSet::empty();
    let mut witness = Vec::new();
    for (i, c) in classifiers.iter().enumerate() {
        if c.is_subset_of(query) {
            witness.push(i);
            union = union.union(c);
        }
    }
    if &union == query {
        Some(witness)
    } else {
        None
    }
}

/// Whether every query of `instance` is covered by `classifiers`.
///
/// Uses a property → classifier inverted index so each query only inspects
/// classifiers sharing at least one of its properties.
pub fn is_cover(instance: &Instance, classifiers: &[Classifier]) -> bool {
    first_uncovered(instance, classifiers).is_none()
}

/// Index of the first uncovered query, if any.
pub fn first_uncovered(instance: &Instance, classifiers: &[Classifier]) -> Option<usize> {
    use crate::fxhash::FxHashMap;
    let mut by_prop: FxHashMap<crate::prop::PropId, Vec<u32>> = FxHashMap::default();
    for (i, c) in classifiers.iter().enumerate() {
        for p in c.iter() {
            by_prop.entry(p).or_default().push(u32_of(i));
        }
    }
    let mut seen: Vec<u32> = Vec::new();
    let mut stamp: FxHashMap<u32, ()> = FxHashMap::default();
    for (qi, q) in instance.queries().iter().enumerate() {
        seen.clear();
        stamp.clear();
        for p in q.iter() {
            if let Some(list) = by_prop.get(&p) {
                for &ci in list {
                    if stamp.insert(ci, ()).is_none() {
                        seen.push(ci);
                    }
                }
            }
        }
        let mut union = PropSet::empty();
        for &ci in &seen {
            let c = &classifiers[ci as usize];
            if c.is_subset_of(q) {
                union = union.union(c);
                if &union == q {
                    break;
                }
            }
        }
        if &union != q {
            return Some(qi);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Weights;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn exact_union_required() {
        let q = ps(&[1, 2, 3]);
        // {1,2} ∪ {3} = q → covered
        assert!(covered(&q, &[ps(&[1, 2]), ps(&[3])]));
        // {1,2} alone: union ⊊ q
        assert!(!covered(&q, &[ps(&[1, 2])]));
        // {1,2,3,4} is not a subset of q, so it cannot participate
        assert!(!covered(&q, &[ps(&[1, 2, 3, 4])]));
        // overlapping subsets are fine
        assert!(covered(&q, &[ps(&[1, 2]), ps(&[2, 3])]));
    }

    #[test]
    fn witness_lists_participating_classifiers() {
        let q = ps(&[1, 2]);
        let cs = [ps(&[5]), ps(&[1]), ps(&[2])];
        let w = covering_subset(&q, &cs).unwrap();
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn full_query_classifier_covers() {
        let q = ps(&[4, 5]);
        assert!(covered(&q, &[ps(&[4, 5])]));
    }

    #[test]
    fn instance_cover_check() {
        let instance =
            Instance::new(vec![vec![0u32, 1], vec![1u32, 2]], Weights::uniform(1u64)).unwrap();
        assert!(is_cover(&instance, &[ps(&[0]), ps(&[1]), ps(&[2])]));
        assert!(is_cover(&instance, &[ps(&[0, 1]), ps(&[1, 2])]));
        assert!(!is_cover(&instance, &[ps(&[0, 1])]));
        assert_eq!(first_uncovered(&instance, &[ps(&[0, 1])]), Some(1));
        assert_eq!(first_uncovered(&instance, &[]), Some(0));
    }

    #[test]
    fn empty_instance_is_trivially_covered() {
        let instance = Instance::new(Vec::<Vec<u32>>::new(), Weights::uniform(1u64)).unwrap();
        assert!(is_cover(&instance, &[]));
    }
}
