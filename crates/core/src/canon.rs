//! Canonical forms and stable fingerprints for MC³ instances.
//!
//! Two structurally identical instances that differ only in how their
//! properties are numbered (or in the order their queries are listed)
//! describe the *same* optimization problem — any solution of one maps to
//! a solution of the other through the property relabeling. This module
//! computes a **canonical relabeling** so such instances collapse to one
//! representation, plus a **stable 128-bit fingerprint** of that
//! representation suitable as a cache key (see `mc3-solver`'s
//! `SolveCache`).
//!
//! The canonical form covers everything the per-component solvers look
//! at:
//!
//! * the multiset of queries (duplicates preserved — greedy set cover
//!   counts elements per query);
//! * per-query *covered* masks (properties already covered by earlier
//!   selections; the WSC reduction only generates elements for the
//!   residual);
//! * the finite entries of the weight oracle over every classifier
//!   `S ⊆ q` with `|S| ≤ k'` — infinite (unusable) classifiers are
//!   omitted since no solver can pick them.
//!
//! # Algorithm
//!
//! A color-refinement (1-WL) pass over the property/query incidence
//! structure, seeded with invariant per-property keys (singleton
//! classifier weight, degree, containing-query shapes), followed by
//! individualization-refinement search: while the coloring is not
//! discrete, the first non-singleton color class is split by
//! individualizing each of its members in turn, and the
//! lexicographically minimal leaf encoding wins. Both the refinement and
//! the target-cell rule are isomorphism-invariant, so relabeled
//! instances produce the same encoding (Theorem: the leaf set of the
//! search tree is invariant; we take its minimum).
//!
//! The search carries a **work budget**; pathologically symmetric
//! instances exhaust it and [`canonicalize`] returns `None` (callers
//! simply skip caching). The budget accounting itself is
//! isomorphism-invariant, so either *all* relabelings of an instance
//! canonicalize or none do.
//!
//! # Fingerprints
//!
//! [`StableHasher`] is a seedless, word-oriented SipHash-2-4 with a
//! 128-bit output. Unlike `DefaultHasher` (randomly seeded per process)
//! or the in-tree FxHash (weak diffusion; fine for hash maps, not for
//! keys), its output is a pure function of the input words and is
//! reproducible across runs, processes and builds.

use crate::cast::u32_of;
use crate::prop::PropId;
use crate::propset::Query;
use crate::weight::Weight;

/// A seedless, word-oriented SipHash-2-4 with 128-bit output.
///
/// Input is a stream of `u64` words (not bytes); the word count is mixed
/// into the finalization, so `[1]` and `[1, 0]` hash differently.
/// Deterministic across runs and builds by construction — use this (and
/// never `DefaultHasher`/FxHash) wherever a hash value escapes the
/// process or keys a cross-request cache.
///
/// # Example
///
/// ```
/// use mc3_core::canon::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write_u64(42);
/// let a = h.finish128();
/// let mut h = StableHasher::new();
/// h.write_u64(42);
/// assert_eq!(a, h.finish128()); // reproducible
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    words: u64,
}

impl StableHasher {
    /// Fixed keys — `b"mc3canon"` / `b"stablefp"` as little-endian words.
    const K0: u64 = u64::from_le_bytes(*b"mc3canon");
    const K1: u64 = u64::from_le_bytes(*b"stablefp");

    /// A fresh hasher (fixed internal keys; no seed).
    pub fn new() -> Self {
        StableHasher {
            v0: Self::K0 ^ 0x736f_6d65_7073_6575,
            v1: Self::K1 ^ 0x646f_7261_6e64_6f6d ^ 0xee, // 128-bit variant
            v2: Self::K0 ^ 0x6c79_6765_6e65_7261,
            v3: Self::K1 ^ 0x7465_6462_7974_6573,
            words: 0,
        }
    }

    #[inline]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13) ^ self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16) ^ self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21) ^ self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17) ^ self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    /// Mixes one word into the state (two SipRounds).
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.v3 ^= w;
        self.round();
        self.round();
        self.v0 ^= w;
        self.words = self.words.wrapping_add(1);
    }

    /// Mixes a slice of words, in order.
    pub fn write_words(&mut self, words: &[u64]) {
        for &w in words {
            self.write_u64(w);
        }
    }

    /// Finalizes into a 128-bit digest, consuming the hasher.
    pub fn finish128(mut self) -> u128 {
        let count = self.words;
        self.write_u64(count);
        self.v2 ^= 0xee;
        for _ in 0..4 {
            self.round();
        }
        let hi = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;
        self.v1 ^= 0xdd;
        for _ in 0..4 {
            self.round();
        }
        let lo = self.v0 ^ self.v1 ^ self.v2 ^ self.v3;
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a word slice in one call.
pub fn stable_hash128(words: &[u64]) -> u128 {
    let mut h = StableHasher::new();
    h.write_words(words);
    h.finish128()
}

/// Default work budget for [`canonicalize`] — generous for real
/// components (which are small and asymmetric), exhausted quickly by
/// pathologically symmetric ones.
pub const DEFAULT_BUDGET: usize = 1 << 20;

/// The result of canonicalizing a (sub-)instance: a stable fingerprint
/// plus the relabeling that produced it, so cached solutions expressed
/// in canonical ids can be mapped back to original [`PropId`]s.
#[derive(Debug, Clone)]
pub struct Canonical {
    fingerprint: u128,
    /// `from_canonical[c]` = the original property assigned canonical id `c`.
    from_canonical: Vec<PropId>,
    /// `(original, canonical)` pairs sorted by original id, for reverse lookup.
    to_canonical: Vec<(PropId, u32)>,
    /// Length of the canonical encoding, in words (size signal for caches).
    encoding_words: usize,
}

impl Canonical {
    /// The stable 128-bit fingerprint of the canonical encoding.
    pub fn fingerprint(&self) -> u128 {
        self.fingerprint
    }

    /// Number of distinct properties in the canonicalized instance.
    pub fn num_props(&self) -> usize {
        self.from_canonical.len()
    }

    /// Length of the canonical encoding in `u64` words.
    pub fn encoding_words(&self) -> usize {
        self.encoding_words
    }

    /// The original property carrying canonical id `c`.
    pub fn original_of(&self, c: u32) -> Option<PropId> {
        self.from_canonical.get(c as usize).copied()
    }

    /// The canonical id assigned to original property `p`.
    pub fn canonical_of(&self, p: PropId) -> Option<u32> {
        self.to_canonical
            .binary_search_by_key(&p, |&(orig, _)| orig)
            .ok()
            .map(|i| self.to_canonical[i].1)
    }

    /// The full canonical-id → original-property table.
    pub fn from_canonical(&self) -> &[PropId] {
        &self.from_canonical
    }
}

/// One finite weight-oracle entry: a classifier as a query-local mask.
struct WeightEntry {
    query: u32,
    mask: u32,
    weight_raw: u64,
}

/// Everything precomputed once per [`canonicalize`] call.
struct CanonCtx<'a> {
    /// Sorted distinct original properties; index = local prop id.
    props: Vec<PropId>,
    /// Per query: members as local prop ids (sorted ascending).
    q_members: Vec<Vec<u32>>,
    /// Per query: covered mask in query-local bit positions.
    q_covered: &'a [u32],
    /// CSR incidence: for local prop `i`, `occ[occ_off[i]..occ_off[i+1]]`
    /// is its `(query index, bit position within query)` occurrences.
    occ_off: Vec<usize>,
    occ: Vec<(u32, u32)>,
    /// Finite weight-oracle entries, grouped by query, ascending mask.
    weights: Vec<WeightEntry>,
    /// Classifier length bound `k'`.
    kp: usize,
    /// Remaining work units; `None` from any step once exhausted.
    budget: usize,
}

impl CanonCtx<'_> {
    fn n(&self) -> usize {
        self.props.len()
    }

    fn m(&self) -> usize {
        self.q_members.len()
    }

    /// Deducts `units` of work; `None` when the budget runs dry.
    fn charge(&mut self, units: usize) -> Option<()> {
        if self.budget < units {
            self.budget = 0;
            return None;
        }
        self.budget -= units;
        Some(())
    }

    /// Re-ranks arbitrary per-prop keys into dense colors `0..distinct`,
    /// ordered by key value. Returns `(colors, distinct)`.
    fn rerank(&self, keys: &[u128]) -> (Vec<u32>, usize) {
        let mut order: Vec<u32> = (0..u32_of(keys.len())).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        let mut colors = vec![0u32; keys.len()];
        let mut distinct = 0usize;
        let mut prev: Option<u128> = None;
        for &i in &order {
            let k = keys[i as usize];
            if prev != Some(k) {
                distinct += 1;
                prev = Some(k);
            }
            colors[i as usize] = u32_of(distinct - 1);
        }
        (colors, distinct)
    }

    /// Color refinement to a fixpoint. Input colors may be non-dense;
    /// the output is a dense coloring ordered by invariant signatures.
    fn refine(&mut self, colors: &[u32]) -> Option<(Vec<u32>, usize)> {
        let n = self.n();
        let m = self.m();
        let keys: Vec<u128> = colors.iter().map(|&c| u128::from(c)).collect();
        let (mut colors, mut distinct) = self.rerank(&keys);
        if n == 0 {
            return Some((colors, distinct));
        }
        loop {
            self.charge(n + m + self.occ.len())?;
            // Per-query signature over member colors + covered flags.
            let mut qsig = Vec::with_capacity(m);
            let mut member_keys: Vec<u64> = Vec::new();
            for (qi, members) in self.q_members.iter().enumerate() {
                member_keys.clear();
                for (bit, &p) in members.iter().enumerate() {
                    let covered = u64::from((self.q_covered[qi] >> bit) & 1);
                    member_keys.push((u64::from(colors[p as usize]) << 1) | covered);
                }
                member_keys.sort_unstable();
                let mut h = StableHasher::new();
                h.write_u64(members.len() as u64);
                h.write_words(&member_keys);
                qsig.push(h.finish128());
            }
            // Per-prop signature: old color + sorted occurrence multiset.
            let mut psig = Vec::with_capacity(n);
            let mut occ_keys: Vec<(u64, u128)> = Vec::new();
            for p in 0..n {
                occ_keys.clear();
                for &(qi, bit) in &self.occ[self.occ_off[p]..self.occ_off[p + 1]] {
                    let covered = u64::from((self.q_covered[qi as usize] >> bit) & 1);
                    occ_keys.push((covered, qsig[qi as usize]));
                }
                occ_keys.sort_unstable();
                let mut h = StableHasher::new();
                h.write_u64(u64::from(colors[p]));
                for &(covered, sig) in &occ_keys {
                    h.write_u64(covered);
                    h.write_u64((sig >> 64) as u64);
                    h.write_u64(sig as u64);
                }
                psig.push(h.finish128());
            }
            let (next, next_distinct) = self.rerank(&psig);
            // The old color is part of the signature, so colors only ever
            // split; an unchanged class count means a fixpoint.
            if next_distinct == distinct {
                return Some((colors, distinct));
            }
            colors = next;
            distinct = next_distinct;
        }
    }

    /// Full canonical encoding of the instance under a discrete coloring
    /// (`colors` is a bijection local prop id → canonical id).
    fn encode(&mut self, colors: &[u32]) -> Option<Vec<u64>> {
        let mut words = Vec::new();
        words.push(self.n() as u64);
        words.push(self.m() as u64);
        words.push(self.kp as u64);
        // Queries: each rep = [len, canonical ids…, covered count,
        // covered canonical ids…]; the rep list is sorted so query order
        // never matters.
        let mut reps: Vec<Vec<u64>> = Vec::with_capacity(self.m());
        for (qi, members) in self.q_members.iter().enumerate() {
            let mut ids: Vec<u64> = members
                .iter()
                .map(|&p| u64::from(colors[p as usize]))
                .collect();
            let mut covered: Vec<u64> = members
                .iter()
                .enumerate()
                .filter(|&(bit, _)| (self.q_covered[qi] >> bit) & 1 == 1)
                .map(|(_, &p)| u64::from(colors[p as usize]))
                .collect();
            ids.sort_unstable();
            covered.sort_unstable();
            let mut rep = Vec::with_capacity(ids.len() + covered.len() + 2);
            rep.push(ids.len() as u64);
            rep.extend_from_slice(&ids);
            rep.push(covered.len() as u64);
            rep.extend_from_slice(&covered);
            reps.push(rep);
        }
        reps.sort_unstable();
        for rep in &reps {
            words.extend_from_slice(rep);
        }
        // Weight oracle: finite entries as sorted, deduplicated
        // [len, canonical ids…, weight] tuples. Shared classifiers
        // (reachable from several queries) collapse to one entry.
        let mut entries: Vec<Vec<u64>> = Vec::with_capacity(self.weights.len());
        for e in &self.weights {
            let members = &self.q_members[e.query as usize];
            let mut ids: Vec<u64> = members
                .iter()
                .enumerate()
                .filter(|&(bit, _)| (e.mask >> bit) & 1 == 1)
                .map(|(_, &p)| u64::from(colors[p as usize]))
                .collect();
            ids.sort_unstable();
            let mut entry = Vec::with_capacity(ids.len() + 2);
            entry.push(ids.len() as u64);
            entry.extend_from_slice(&ids);
            entry.push(e.weight_raw);
            entries.push(entry);
        }
        entries.sort_unstable();
        entries.dedup();
        words.push(entries.len() as u64);
        for entry in &entries {
            words.extend_from_slice(entry);
        }
        self.charge(words.len())?;
        Some(words)
    }

    /// Individualization-refinement search for the minimal leaf encoding.
    fn search(&mut self, colors: Vec<u32>, best: &mut Option<(Vec<u64>, Vec<u32>)>) -> Option<()> {
        let (colors, distinct) = self.refine(&colors)?;
        if distinct == self.n() {
            let enc = self.encode(&colors)?;
            let better = match best {
                Some((b, _)) => enc < *b,
                None => true,
            };
            if better {
                *best = Some((enc, colors));
            }
            return Some(());
        }
        // Target cell: the smallest color value with ≥ 2 members — an
        // isomorphism-invariant choice, since colors are ranked by
        // invariant signatures.
        let mut count = vec![0u32; distinct];
        for &c in &colors {
            count[c as usize] += 1;
        }
        let target = match count.iter().position(|&c| c >= 2) {
            Some(t) => u32_of(t),
            None => return Some(()), // unreachable: distinct < n implies a class ≥ 2
        };
        for p in 0..self.n() {
            if colors[p] != target {
                continue;
            }
            let branched: Vec<u32> = colors
                .iter()
                .enumerate()
                .map(|(i, &c)| c * 2 + u32::from(i != p))
                .collect();
            self.search(branched, best)?;
        }
        Some(())
    }
}

/// Canonicalizes a (sub-)instance given as `(query, covered_mask)` pairs
/// plus a weight oracle.
///
/// * `queries[qi].1` is a query-local bitmask (bit `i` = the `i`-th
///   smallest property of the query) of properties already covered —
///   pass `0` for a fresh instance.
/// * `kp` is the classifier length bound `k'` (`max_classifier_len`
///   clamped to the instance, or the max query length).
/// * `weight_of(qi, mask)` returns the construction cost of the
///   classifier `mask ⊆ queries[qi].0`; return [`Weight::INFINITE`] for
///   unavailable classifiers. The oracle must be consistent: a classifier
///   reachable from two queries must get one weight.
/// * `budget` bounds the total work (see [`DEFAULT_BUDGET`]); `None` is
///   returned when it is exhausted, which callers should treat as
///   "don't cache this one".
pub fn canonicalize(
    queries: &[(&Query, u32)],
    kp: usize,
    budget: usize,
    mut weight_of: impl FnMut(usize, u32) -> Weight,
) -> Option<Canonical> {
    let kp = kp.max(1);
    // Local prop table: sorted distinct PropIds.
    let mut props: Vec<PropId> = queries
        .iter()
        .flat_map(|(q, _)| q.ids().iter().copied())
        .collect();
    props.sort_unstable();
    props.dedup();
    let n = props.len();
    let m = queries.len();

    let local_of = |p: PropId| -> u32 {
        match props.binary_search(&p) {
            Ok(i) => u32_of(i),
            // audit:allow(no-unwrap-in-lib) props was built from these exact queries
            Err(_) => unreachable!("query property missing from the prop table"),
        }
    };

    let mut q_members: Vec<Vec<u32>> = Vec::with_capacity(m);
    let mut q_covered: Vec<u32> = Vec::with_capacity(m);
    for &(q, covered) in queries {
        let members: Vec<u32> = q.ids().iter().map(|&p| local_of(p)).collect();
        q_members.push(members);
        q_covered.push(covered);
    }

    // CSR incidence.
    let mut deg = vec![0usize; n];
    for members in &q_members {
        for &p in members {
            deg[p as usize] += 1;
        }
    }
    let mut occ_off = vec![0usize; n + 1];
    for i in 0..n {
        occ_off[i + 1] = occ_off[i] + deg[i];
    }
    let mut occ = vec![(0u32, 0u32); occ_off[n]];
    let mut cursor = occ_off.clone();
    for (qi, members) in q_members.iter().enumerate() {
        for (bit, &p) in members.iter().enumerate() {
            occ[cursor[p as usize]] = (u32_of(qi), u32_of(bit));
            cursor[p as usize] += 1;
        }
    }

    // Finite weight-oracle entries, plus per-prop singleton weights for
    // the initial coloring.
    let mut budget_left = budget;
    let mut weights = Vec::new();
    let mut singleton = vec![u64::MAX; n];
    for (qi, members) in q_members.iter().enumerate() {
        let len = members.len();
        if len >= 32 {
            // Query-local masks are u32; longer queries (beyond
            // MAX_QUERY_LEN anyway) are simply not canonicalized.
            return None;
        }
        let masks: u32 = 1u32 << len;
        if budget_left < masks as usize {
            return None;
        }
        budget_left -= masks as usize;
        for mask in 1..masks {
            if (mask.count_ones() as usize) > kp {
                continue;
            }
            let w = weight_of(qi, mask);
            if !w.is_finite() {
                continue;
            }
            if mask.count_ones() == 1 {
                let bit = mask.trailing_zeros() as usize;
                let p = members[bit] as usize;
                singleton[p] = singleton[p].min(w.raw());
            }
            weights.push(WeightEntry {
                query: u32_of(qi),
                mask,
                weight_raw: w.raw(),
            });
        }
    }

    let mut ctx = CanonCtx {
        props,
        q_members,
        q_covered: &q_covered,
        occ_off,
        occ,
        weights,
        kp,
        budget: budget_left,
    };

    // Initial invariant coloring: singleton weight, degree, shapes of the
    // containing queries.
    let mut init_keys = Vec::with_capacity(n);
    let mut shape: Vec<u64> = Vec::new();
    for p in 0..n {
        shape.clear();
        for &(qi, bit) in &ctx.occ[ctx.occ_off[p]..ctx.occ_off[p + 1]] {
            let covered = u64::from((q_covered[qi as usize] >> bit) & 1);
            let len = ctx.q_members[qi as usize].len() as u64;
            shape.push((len << 1) | covered);
        }
        shape.sort_unstable();
        let mut h = StableHasher::new();
        h.write_u64(singleton[p]);
        h.write_u64(deg[p] as u64);
        h.write_words(&shape);
        init_keys.push(h.finish128());
    }
    let (init_colors, _) = ctx.rerank(&init_keys);

    let mut best: Option<(Vec<u64>, Vec<u32>)> = None;
    ctx.search(init_colors, &mut best)?;
    let (encoding, colors) = best?;

    let mut from_canonical = vec![PropId(0); n];
    let mut to_canonical = Vec::with_capacity(n);
    for (p, &c) in colors.iter().enumerate() {
        from_canonical[c as usize] = ctx.props[p];
        to_canonical.push((ctx.props[p], c));
    }
    // ctx.props is sorted, so to_canonical is sorted by original id.
    Some(Canonical {
        fingerprint: stable_hash128(&encoding),
        from_canonical,
        to_canonical,
        encoding_words: encoding.len(),
    })
}

/// Canonicalizes a whole [`Instance`](crate::Instance): nothing covered,
/// `kp` = max query length, weights straight from the instance's weight
/// function.
pub fn canonicalize_instance(instance: &crate::Instance, budget: usize) -> Option<Canonical> {
    let queries: Vec<(&Query, u32)> = instance.queries().iter().map(|q| (q, 0u32)).collect();
    let kp = instance.max_query_len().max(1);
    canonicalize(&queries, kp, budget, |qi, mask| {
        let subset = instance.queries()[qi].subset_by_mask(mask);
        instance.weight(&subset)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SliceRandom, StdRng};
    use crate::{Instance, PropSet, WeightsBuilder};

    #[test]
    fn stable_hasher_is_deterministic_and_sensitive() {
        let a = stable_hash128(&[1, 2, 3]);
        assert_eq!(a, stable_hash128(&[1, 2, 3]));
        assert_ne!(a, stable_hash128(&[1, 2, 4]));
        assert_ne!(a, stable_hash128(&[1, 2, 3, 0])); // length-extension safe
        assert_ne!(stable_hash128(&[]), stable_hash128(&[0]));
    }

    #[test]
    fn stable_hasher_output_is_pinned() {
        // Guards the wire format: a change to the constants or the round
        // structure silently invalidates persisted fingerprints.
        assert_eq!(
            stable_hash128(&[0x6d63_33]),
            0x4209_99ac_130a_c85f_28f7_67b9_5700_a016
        );
    }

    /// The paper's Example 1.1 instance with props relabeled by `perm`.
    fn example_instance(perm: &[u32]) -> Instance {
        let p = |i: usize| PropId(perm[i]);
        let (j, w, a, c) = (p(0), p(1), p(2), p(3));
        let weights = WeightsBuilder::new()
            .classifier([c], 5u64)
            .classifier([a], 5u64)
            .classifier([j], 5u64)
            .classifier([w], 1u64)
            .classifier([a, c], 3u64)
            .classifier([a, w], 5u64)
            .classifier([a, j], 3u64)
            .classifier([j, w], 4u64)
            .classifier([j, a, w], 5u64)
            .build();
        // audit:allow(no-unwrap-in-lib) test-only construction
        Instance::new(vec![vec![j, w, a], vec![c, a]], weights).unwrap()
    }

    #[test]
    fn relabeling_preserves_the_fingerprint() {
        let base = canonicalize_instance(&example_instance(&[0, 1, 2, 3]), DEFAULT_BUDGET)
            .expect("canonicalizes");
        for perm in [[3, 1, 0, 2], [7, 5, 9, 2], [1, 0, 3, 2]] {
            let other = canonicalize_instance(&example_instance(&perm), DEFAULT_BUDGET)
                .expect("canonicalizes");
            assert_eq!(base.fingerprint(), other.fingerprint(), "perm {perm:?}");
        }
    }

    #[test]
    fn relabeling_is_invariant_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xCA_F0);
        for case in 0..25u64 {
            let mut rng2 = StdRng::seed_from_u64(case);
            let n_props = 6 + (case % 5) as u32;
            let queries: Vec<Vec<PropId>> = (0..4 + case % 4)
                .map(|_| {
                    let len = rng2.gen_range(1..=4usize);
                    let mut ids: Vec<u32> = (0..n_props).collect();
                    ids.shuffle(&mut rng2);
                    let mut q: Vec<PropId> = ids[..len.min(ids.len())]
                        .iter()
                        .map(|&i| PropId(i))
                        .collect();
                    q.sort_unstable();
                    q
                })
                .collect();
            let seed_weights = crate::Weights::seeded(case.wrapping_mul(7), 1, 40);
            let instance = Instance::from_propsets(
                queries
                    .iter()
                    .map(|q| PropSet::from_ids(q.iter().copied()))
                    .collect(),
                seed_weights.clone(),
            )
            .expect("valid instance");
            // Random relabeling π and π-transported weights.
            let mut perm: Vec<u32> = (0..n_props).collect();
            perm.shuffle(&mut rng);
            let inv: Vec<u32> = {
                let mut inv = vec![0u32; n_props as usize];
                for (i, &p) in perm.iter().enumerate() {
                    inv[p as usize] = u32_of(i);
                }
                inv
            };
            let permuted_queries: Vec<PropSet> = queries
                .iter()
                .map(|q| PropSet::from_ids(q.iter().map(|p| PropId(perm[p.index()]))))
                .collect();
            let back =
                move |s: &PropSet| PropSet::from_ids(s.iter().map(|p| PropId(inv[p.index()])));
            let transported = crate::Weights::custom(move |s| seed_weights.weight(&back(s)));
            let permuted =
                Instance::from_propsets(permuted_queries, transported).expect("valid instance");

            let a = canonicalize_instance(&instance, DEFAULT_BUDGET);
            let b = canonicalize_instance(&permuted, DEFAULT_BUDGET);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.fingerprint(), b.fingerprint(), "case {case}");
                    // Both relabelings are bijections over the same id count.
                    assert_eq!(a.num_props(), b.num_props());
                }
                (None, None) => {} // budget abort must be symmetric
                _ => panic!("case {case}: budget abort was not isomorphism-invariant"),
            }
        }
    }

    #[test]
    fn covered_masks_and_weights_change_the_fingerprint() {
        let instance = example_instance(&[0, 1, 2, 3]);
        let queries: Vec<(&Query, u32)> = instance.queries().iter().map(|q| (q, 0u32)).collect();
        let kp = instance.max_query_len();
        let w =
            |qi: usize, mask: u32| instance.weight(&instance.queries()[qi].subset_by_mask(mask));
        let base = canonicalize(&queries, kp, DEFAULT_BUDGET, w).expect("canonicalizes");

        // Mark one property of query 0 as covered.
        let covered: Vec<(&Query, u32)> = instance
            .queries()
            .iter()
            .enumerate()
            .map(|(i, q)| (q, u32::from(i == 0)))
            .collect();
        let c = canonicalize(&covered, kp, DEFAULT_BUDGET, w).expect("canonicalizes");
        assert_ne!(base.fingerprint(), c.fingerprint());

        // Bump one classifier weight.
        let w2 = |qi: usize, mask: u32| {
            let w = w(qi, mask);
            if qi == 0 && mask == 0b1 {
                w.saturating_add(crate::Weight::new(1))
            } else {
                w
            }
        };
        let bumped = canonicalize(&queries, kp, DEFAULT_BUDGET, w2).expect("canonicalizes");
        assert_ne!(base.fingerprint(), bumped.fingerprint());

        // Duplicate queries are part of the form.
        let doubled: Vec<(&Query, u32)> = instance
            .queries()
            .iter()
            .chain(instance.queries().iter())
            .map(|q| (q, 0u32))
            .collect();
        let d = canonicalize(&doubled, kp, DEFAULT_BUDGET, |qi, mask| {
            w(qi % instance.num_queries(), mask)
        })
        .expect("canonicalizes");
        assert_ne!(base.fingerprint(), d.fingerprint());
    }

    #[test]
    fn remap_tables_are_inverse_bijections() {
        let instance = example_instance(&[4, 9, 2, 7]);
        let canon = canonicalize_instance(&instance, DEFAULT_BUDGET).expect("canonicalizes");
        assert_eq!(canon.num_props(), 4);
        for c in 0..4u32 {
            let p = canon.original_of(c).expect("in range");
            assert_eq!(canon.canonical_of(p), Some(c));
        }
        assert_eq!(canon.original_of(4), None);
        assert_eq!(canon.canonical_of(PropId(1000)), None);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let instance = example_instance(&[0, 1, 2, 3]);
        assert!(canonicalize_instance(&instance, 3).is_none());
    }
}
