//! Multi-valued classifiers (§5.3).
//!
//! Properties often encode `attribute = value` pairs (e.g. `color = red`,
//! `color = blue`). A *multi-valued* classifier decides the value of an
//! attribute and therefore acts as a binary classifier for every property of
//! that attribute.
//!
//! Two modes are supported, mirroring the paper:
//!
//! 1. **Only multi-valued classifiers**: merging every property into its
//!    attribute yields a *new MC³ instance over attributes* obeying exactly
//!    the same model — [`merge_to_attributes`].
//! 2. **Mixed binary + multi-valued**: multi-valued classifiers are added as
//!    extra sets in the Weighted Set Cover reduction, covering all elements
//!    whose property belongs to the attribute. The [`MultiValuedClassifier`]
//!    descriptor defined here is consumed by `mc3-solver`'s extended
//!    reduction.

use crate::cast::u32_of;
use crate::error::Result;
use crate::fxhash::FxHashMap;
use crate::instance::Instance;
use crate::prop::PropId;
use crate::propset::{PropSet, Query};
use crate::weight::Weight;
use crate::weights::Weights;
use std::fmt;

/// Dense id of an attribute (e.g. "color", "team", "brand").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttributeId(pub u32);

impl AttributeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Maps properties to the attribute whose value they test.
///
/// The attributes induce an equivalence relation over the properties (§5.3).
/// Properties without an assignment are treated as their own singleton
/// attribute by [`AttributeSchema::attribute_of`].
#[derive(Debug, Clone, Default)]
pub struct AttributeSchema {
    map: FxHashMap<PropId, AttributeId>,
    names: Vec<String>,
    name_ids: FxHashMap<String, AttributeId>,
}

impl AttributeSchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute name.
    pub fn attribute(&mut self, name: impl AsRef<str>) -> AttributeId {
        let name = name.as_ref();
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = AttributeId(u32_of(self.names.len()));
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    /// Assigns `prop` to `attr`.
    pub fn assign(&mut self, prop: PropId, attr: AttributeId) -> &mut Self {
        self.map.insert(prop, attr);
        self
    }

    /// The attribute of `prop`, if assigned.
    pub fn attribute_of(&self, prop: PropId) -> Option<AttributeId> {
        self.map.get(&prop).copied()
    }

    /// Attribute name lookup.
    pub fn name(&self, attr: AttributeId) -> Option<&str> {
        self.names.get(attr.index()).map(String::as_str)
    }

    /// Number of interned attributes.
    pub fn num_attributes(&self) -> usize {
        self.names.len()
    }

    /// The properties assigned to `attr`.
    pub fn properties_of(&self, attr: AttributeId) -> Vec<PropId> {
        let mut v: Vec<PropId> = self
            .map
            .iter()
            .filter(|&(_, &a)| a == attr)
            .map(|(&p, _)| p)
            .collect();
        v.sort_unstable();
        v
    }
}

/// A multi-valued classifier for the *mixed* setting: it decides attribute
/// `attribute` and thereby covers every property of that attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiValuedClassifier {
    /// The attribute this classifier decides.
    pub attribute: AttributeId,
    /// Its construction cost.
    pub cost: Weight,
}

/// Transforms an instance into the attribute-level instance of the
/// "only multi-valued classifiers" setting (§5.3): every property is
/// replaced by its attribute (unassigned properties become fresh singleton
/// attributes), queries are re-canonicalized and deduplicated, and the
/// caller-supplied `weights` (external cost estimations for the multi-valued
/// classifiers) take over.
///
/// Returns the transformed instance together with the property → attribute
/// property-id mapping used (attribute ids become the new property ids).
pub fn merge_to_attributes(
    instance: &Instance,
    schema: &AttributeSchema,
    weights: Weights,
) -> Result<(Instance, FxHashMap<PropId, PropId>)> {
    let mut mapping: FxHashMap<PropId, PropId> = FxHashMap::default();
    let mut next_fresh = u32_of(schema.num_attributes());
    let mut queries: Vec<Query> = Vec::with_capacity(instance.num_queries());
    for q in instance.queries() {
        let mut ids: Vec<PropId> = Vec::with_capacity(q.len());
        for p in q.iter() {
            let mapped = *mapping
                .entry(p)
                .or_insert_with(|| match schema.attribute_of(p) {
                    Some(a) => PropId(a.0),
                    None => {
                        let id = PropId(next_fresh);
                        next_fresh += 1;
                        id
                    }
                });
            ids.push(mapped);
        }
        queries.push(PropSet::from_ids(ids));
    }
    let transformed = Instance::from_propsets(queries, weights)?;
    Ok((transformed, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightsBuilder;

    #[test]
    fn schema_assignment_roundtrip() {
        let mut s = AttributeSchema::new();
        let color = s.attribute("color");
        assert_eq!(s.attribute("color"), color);
        s.assign(PropId(3), color).assign(PropId(7), color);
        assert_eq!(s.attribute_of(PropId(3)), Some(color));
        assert_eq!(s.attribute_of(PropId(9)), None);
        assert_eq!(s.properties_of(color), vec![PropId(3), PropId(7)]);
        assert_eq!(s.name(color), Some("color"));
        assert_eq!(s.num_attributes(), 1);
    }

    #[test]
    fn soccer_shirt_merge_matches_paper() {
        // §5.3: q1 = {juventus, white, adidas}, q2 = {chelsea, adidas};
        // attributes team/color/brand collapse q1 → tcb, q2 → tb.
        let (j, w, a, c) = (PropId(0), PropId(1), PropId(2), PropId(3));
        let instance = Instance::new(
            vec![vec![j.0, w.0, a.0], vec![c.0, a.0]],
            Weights::uniform(1u64),
        )
        .unwrap();
        let mut schema = AttributeSchema::new();
        let team = schema.attribute("team");
        let color = schema.attribute("color");
        let brand = schema.attribute("brand");
        schema.assign(j, team).assign(c, team);
        schema.assign(w, color);
        schema.assign(a, brand);
        let weights = WeightsBuilder::new().default_weight(Weight::new(1)).build();
        let (merged, mapping) = merge_to_attributes(&instance, &schema, weights).unwrap();
        assert_eq!(merged.num_queries(), 2);
        assert_eq!(merged.num_properties(), 3); // team, color, brand
        assert_eq!(merged.max_query_len(), 3); // tcb
        assert_eq!(mapping[&j], mapping[&c]); // same team attribute
        assert_ne!(mapping[&j], mapping[&w]);
    }

    #[test]
    fn unassigned_properties_become_fresh_attributes() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let mut schema = AttributeSchema::new();
        let attr = schema.attribute("only");
        schema.assign(PropId(0), attr);
        let (merged, mapping) =
            merge_to_attributes(&instance, &schema, Weights::uniform(1u64)).unwrap();
        assert_eq!(merged.num_properties(), 2);
        assert_ne!(mapping[&PropId(0)], mapping[&PropId(1)]);
    }

    #[test]
    fn merging_can_collapse_queries() {
        // Two queries over different values of the same attribute collapse.
        let mut schema = AttributeSchema::new();
        let color = schema.attribute("color");
        schema.assign(PropId(0), color).assign(PropId(1), color);
        let instance = Instance::new(vec![vec![0u32], vec![1u32]], Weights::uniform(1u64)).unwrap();
        let (merged, _) = merge_to_attributes(&instance, &schema, Weights::uniform(1u64)).unwrap();
        assert_eq!(merged.num_queries(), 1);
        assert_eq!(merged.max_query_len(), 1);
    }
}
