//! Solutions: sets of classifiers selected for construction.

use crate::cover;
use crate::error::{Mc3Error, Result};
use crate::instance::Instance;
use crate::propset::Classifier;
use crate::universe::{ClassifierId, ClassifierUniverse};
use crate::weight::Weight;

/// A candidate MC³ solution: a set of classifiers plus its total
/// construction cost `W(S) = Σ_{c∈S} W(c)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    classifiers: Vec<Classifier>,
    cost: Weight,
}

impl Solution {
    /// The empty solution (valid only for empty instances).
    pub fn empty() -> Solution {
        Solution {
            classifiers: Vec::new(),
            cost: Weight::ZERO,
        }
    }

    /// Builds a solution from classifiers, computing the cost under
    /// `instance`'s weight function. Deduplicates.
    pub fn new(instance: &Instance, classifiers: Vec<Classifier>) -> Result<Solution> {
        let mut classifiers = classifiers;
        classifiers.sort_unstable();
        classifiers.dedup();
        let mut cost = Weight::ZERO;
        for c in &classifiers {
            let w = instance.weight(c);
            cost = cost
                .checked_add(w)
                .ok_or(if w.is_infinite() || cost.is_infinite() {
                    Mc3Error::Internal(format!("solution selects infinite-weight classifier {c}"))
                } else {
                    Mc3Error::CostOverflow
                })?;
        }
        Ok(Solution { classifiers, cost })
    }

    /// Builds a solution from dense universe ids.
    pub fn from_ids(
        universe: &ClassifierUniverse,
        ids: impl IntoIterator<Item = ClassifierId>,
    ) -> Solution {
        let mut ids: Vec<ClassifierId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut cost = Weight::ZERO;
        let mut classifiers = Vec::with_capacity(ids.len());
        for id in ids {
            cost = cost.saturating_add(universe.weight(id));
            classifiers.push(universe.classifier(id).clone());
        }
        classifiers.sort_unstable();
        Solution { classifiers, cost }
    }

    /// Builds a solution with a pre-computed cost (solver internal; the cost
    /// is trusted). `classifiers` are canonicalized.
    pub fn with_cost(mut classifiers: Vec<Classifier>, cost: Weight) -> Solution {
        classifiers.sort_unstable();
        classifiers.dedup();
        Solution { classifiers, cost }
    }

    /// The selected classifiers, in canonical order.
    #[inline]
    pub fn classifiers(&self) -> &[Classifier] {
        &self.classifiers
    }

    /// Total construction cost.
    #[inline]
    pub fn cost(&self) -> Weight {
        self.cost
    }

    /// Number of selected classifiers.
    #[inline]
    pub fn len(&self) -> usize {
        self.classifiers.len()
    }

    /// Whether no classifier is selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classifiers.is_empty()
    }

    /// Histogram of selected classifier lengths: `hist[l]` = number of
    /// selected classifiers testing `l` properties (index 0 unused).
    pub fn length_histogram(&self) -> Vec<usize> {
        let max = self
            .classifiers
            .iter()
            .map(Classifier::len)
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for c in &self.classifiers {
            hist[c.len()] += 1;
        }
        hist
    }

    /// Verifies that this solution covers every query of `instance` and that
    /// the recorded cost matches the weight function.
    pub fn verify(&self, instance: &Instance) -> Result<()> {
        if let Some(qi) = cover::first_uncovered(instance, &self.classifiers) {
            return Err(Mc3Error::Uncoverable { query_index: qi });
        }
        let recomputed: Weight = self.classifiers.iter().map(|c| instance.weight(c)).sum();
        if recomputed != self.cost {
            return Err(Mc3Error::Internal(format!(
                "solution cost mismatch: recorded {} but weights sum to {}",
                self.cost, recomputed
            )));
        }
        Ok(())
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Solution(cost={}, classifiers=[", self.cost)?;
        for (i, c) in self.classifiers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propset::PropSet;
    use crate::weights::{Weights, WeightsBuilder};

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn cost_is_sum_of_weights() {
        let w = WeightsBuilder::new()
            .classifier([0u32], 2u64)
            .classifier([1u32], 3u64)
            .build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let sol = Solution::new(&instance, vec![ps(&[0]), ps(&[1])]).unwrap();
        assert_eq!(sol.cost(), Weight::new(5));
        sol.verify(&instance).unwrap();
    }

    #[test]
    fn verify_rejects_non_cover() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let sol = Solution::new(&instance, vec![ps(&[0])]).unwrap();
        assert_eq!(
            sol.verify(&instance),
            Err(Mc3Error::Uncoverable { query_index: 0 })
        );
    }

    #[test]
    fn new_rejects_infinite_classifier() {
        let w = WeightsBuilder::new().classifier([0u32], 1u64).build();
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let err = Solution::new(&instance, vec![ps(&[1])]).unwrap_err();
        assert!(matches!(err, Mc3Error::Internal(_)));
    }

    #[test]
    fn dedup_classifiers() {
        let instance = Instance::new(vec![vec![0u32]], Weights::uniform(4u64)).unwrap();
        let sol = Solution::new(&instance, vec![ps(&[0]), ps(&[0])]).unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.cost(), Weight::new(4));
    }

    #[test]
    fn from_ids_builds_from_universe() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(2u64)).unwrap();
        let u = crate::universe::ClassifierUniverse::build(&instance);
        let x = u.id_of(&ps(&[0])).unwrap();
        let y = u.id_of(&ps(&[1])).unwrap();
        let sol = Solution::from_ids(&u, [x, y, x]);
        assert_eq!(sol.len(), 2);
        assert_eq!(sol.cost(), Weight::new(4));
        sol.verify(&instance).unwrap();
    }

    #[test]
    fn display_and_histogram() {
        let instance = Instance::new(vec![vec![0u32, 1, 2]], Weights::uniform(1u64)).unwrap();
        let sol = Solution::new(&instance, vec![ps(&[0, 1]), ps(&[2])]).unwrap();
        assert_eq!(sol.length_histogram(), vec![0, 1, 1]);
        let rendered = sol.to_string();
        assert!(rendered.contains("cost=2"));
        assert!(rendered.contains("{p2}"));
        assert_eq!(Solution::empty().length_histogram(), vec![0]);
    }

    #[test]
    fn empty_solution_covers_empty_instance() {
        let instance = Instance::new(Vec::<Vec<u32>>::new(), Weights::uniform(1u64)).unwrap();
        Solution::empty().verify(&instance).unwrap();
    }
}
