//! Minimal JSON reading/writing for dataset and solution files.
//!
//! The workspace builds offline, so instead of `serde`/`serde_json` the IO
//! layers (`mc3-workload` datasets, `mc3-cli` solutions) hand-roll their
//! (de)serialization over this small document model: a [`Json`] value enum,
//! a recursive-descent [`parse`] and compact/pretty writers. The dialect is
//! standard JSON; numbers are kept as `i128` when integral so `u64` costs
//! and seeds round-trip exactly (no f64 mantissa loss).
//!
//! # Example
//!
//! ```
//! use mc3_core::json::{parse, Json};
//!
//! let v = parse(r#"{"name":"tiny","queries":[[0,1]],"cost":null}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("tiny"));
//! assert!(v.get("cost").unwrap().is_null());
//! let back = v.to_string();
//! assert_eq!(parse(&back).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects use a `BTreeMap` so serialization is canonical (sorted keys) and
/// diffs of generated files stay stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number. `i128` losslessly holds both `i64` and `u64`.
    Int(i128),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with canonically sorted keys.
    Object(BTreeMap<String, Json>),
}

/// A JSON syntax or shape error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `u32`, if integral and in range.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Int(i) => u32::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// `Some(v)` ↦ `v`, `None` ↦ `null`.
    pub fn opt_u64(v: Option<u64>) -> Json {
        match v {
            Some(v) => Json::Int(v as i128),
            None => Json::Null,
        }
    }

    /// Writes compact single-line JSON.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Writes pretty two-space-indented JSON.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    // JSON has no Inf/NaN; `null` is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Object(map) => {
                let entries: Vec<_> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compact form; `Json::to_string` (inherent) is the same writer.
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to span the full input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str so byte
                    // boundaries are guaranteed valid.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            p.pos += 1; // past 'u'
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_values_roundtrip_exactly() {
        let big = u64::MAX - 1;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string(), big.to_string());
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"b":[1,2,[3]],"a":{"x":null,"y":"z\n\"q\""},"c":true}"#;
        let v = parse(src).unwrap();
        let compact = v.to_string();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn object_access_helpers() {
        let v = parse(r#"{"n":3,"s":"x","b":false,"a":[1],"z":null}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u32), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn negative_numbers_do_not_cast_to_unsigned() {
        let v = parse("-1").unwrap();
        assert_eq!(v.as_u64(), None);
        assert_eq!(v.as_f64(), Some(-1.0));
    }
}
