//! Deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace builds and tests fully offline, so instead of depending on
//! the `rand` crate we ship a small xoshiro256++ generator (Blackman &
//! Vigna) seeded through SplitMix64. The API mirrors the subset of `rand`
//! the repo uses — [`StdRng::seed_from_u64`], [`StdRng::gen_range`],
//! [`StdRng::gen_bool`], [`StdRng::gen`], and the [`SliceRandom`] helpers —
//! so call sites read identically to their `rand` counterparts.
//!
//! The generator is *not* cryptographic. It is used only for workload
//! synthesis and randomized testing, where determinism (same seed ⇒ same
//! stream on every platform) is the property that matters.
//!
//! # Example
//!
//! ```
//! use mc3_core::rng::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! // Same seed, same stream:
//! assert_eq!(
//!     StdRng::seed_from_u64(7).gen_range(0..1000u64),
//!     StdRng::seed_from_u64(7).gen_range(0..1000u64),
//! );
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the standard 64-bit finalizer used to expand a single
/// seed word into a full generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// Named `StdRng` so the randomized tests and workload generators read the
/// same as they would against the `rand` crate.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next value in `[0, bound)` without modulo bias (Lemire's
    /// widening-multiply rejection method). `bound` must be non-zero.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded_u64 requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value from `range` (half-open or inclusive integer ranges).
    ///
    /// Panics on empty ranges, matching `rand`.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        // 53 random mantissa bits, the full precision of an f64 in [0, 1).
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random value of `T` (`u64`, `u32`, `bool`, or `f64`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait FromRng {
    /// Draws a uniform value from `rng`.
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl FromRng for u64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f64 {
        rng.gen_f64()
    }
}

/// Integer range types accepted by [`StdRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// Random helpers on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;

    /// Shuffles in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.bounded_u64(self.len() as u64) as usize;
            self.get(i)
        }
    }

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// One-stop import mirroring `rand::prelude::*`.
pub mod prelude {
    pub use super::{FromRng, SampleRange, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=6u32);
            assert!((1..=6).contains(&y));
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac = {frac}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn choose_is_uniformish_and_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[(*items.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "counts = {counts:?}");
    }

    #[test]
    fn gen_produces_each_supported_type() {
        let mut rng = StdRng::seed_from_u64(8);
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
