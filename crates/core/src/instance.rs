//! The MC³ problem instance `⟨Q, W⟩`.

use crate::error::{Mc3Error, Result};
use crate::fxhash::FxHashSet;
use crate::prop::PropId;
use crate::propset::{PropSet, Query};
use crate::weight::Weight;
use crate::weights::Weights;
use crate::MAX_QUERY_LEN;

/// An MC³ instance: a set of distinct conjunctive queries plus a weight
/// function over their classifier universe.
///
/// Queries are deduplicated and stored in canonical form. The paper assumes
/// `P` only includes properties appearing in at least one query; this holds
/// by construction here because the instance derives its property set from
/// the queries themselves.
///
/// # Example
///
/// ```
/// use mc3_core::{Instance, Weights};
///
/// let queries = vec![vec![0u32, 1], vec![1u32, 2], vec![0u32, 1]]; // dup removed
/// let instance = Instance::new(queries, Weights::uniform(1u64)).unwrap();
/// assert_eq!(instance.num_queries(), 2);
/// assert_eq!(instance.max_query_len(), 2);
/// assert_eq!(instance.num_properties(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Instance {
    queries: Vec<Query>,
    weights: Weights,
    max_len: usize,
    num_properties: usize,
}

impl Instance {
    /// Builds an instance from raw queries (any iterator of property-id
    /// collections) and a weight function.
    ///
    /// Validates that every query is non-empty and within
    /// [`MAX_QUERY_LEN`], canonicalizes and deduplicates.
    pub fn new<Q, I, T>(queries: Q, weights: Weights) -> Result<Instance>
    where
        Q: IntoIterator<Item = I>,
        I: IntoIterator<Item = T>,
        T: Into<PropId>,
    {
        let sets: Vec<PropSet> = queries.into_iter().map(PropSet::from_ids).collect();
        Self::from_propsets(sets, weights)
    }

    /// Builds an instance from already-canonical [`PropSet`] queries.
    pub fn from_propsets(queries: Vec<Query>, weights: Weights) -> Result<Instance> {
        for (index, q) in queries.iter().enumerate() {
            if q.is_empty() {
                return Err(Mc3Error::EmptyQuery { index });
            }
            if q.len() > MAX_QUERY_LEN {
                return Err(Mc3Error::QueryTooLong {
                    index,
                    len: q.len(),
                });
            }
        }
        let mut queries = queries;
        queries.sort_unstable();
        queries.dedup();
        let max_len = queries.iter().map(PropSet::len).max().unwrap_or(0);
        let props: FxHashSet<PropId> = queries.iter().flat_map(PropSet::iter).collect();
        Ok(Instance {
            queries,
            weights,
            max_len,
            num_properties: props.len(),
        })
    }

    /// The distinct queries, in canonical (sorted) order.
    #[inline]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of distinct queries (`n` in the paper).
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Maximal query length (`k` in the paper).
    #[inline]
    pub fn max_query_len(&self) -> usize {
        self.max_len
    }

    /// Number of distinct properties appearing in queries.
    #[inline]
    pub fn num_properties(&self) -> usize {
        self.num_properties
    }

    /// The weight function.
    #[inline]
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Cost of one classifier under this instance's weight function.
    #[inline]
    pub fn weight(&self, classifier: &PropSet) -> Weight {
        self.weights.weight(classifier)
    }

    /// Whether every query has length ≤ 2 (the PTIME special case of §4).
    pub fn is_short(&self) -> bool {
        self.max_len <= 2
    }

    /// A sub-instance restricted to the queries at `indices`
    /// (used by the paper's varying-cardinality experiments, §6.1).
    pub fn restrict_to(&self, indices: &[usize]) -> Result<Instance> {
        let queries: Vec<Query> = indices.iter().map(|&i| self.queries[i].clone()).collect();
        Instance::from_propsets(queries, self.weights.clone())
    }

    /// A sub-instance containing only queries satisfying `pred`.
    pub fn filter_queries(&self, pred: impl Fn(&Query) -> bool) -> Result<Instance> {
        let queries: Vec<Query> = self.queries.iter().filter(|q| pred(q)).cloned().collect();
        Instance::from_propsets(queries, self.weights.clone())
    }

    /// Histogram of query lengths: `hist[l]` = number of queries of length
    /// `l` (index 0 unused).
    pub fn length_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_len + 1];
        for q in &self.queries {
            hist[q.len()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> Vec<u32> {
        ids.to_vec()
    }

    #[test]
    fn dedup_and_canonicalize() {
        let inst = Instance::new(
            vec![q(&[2, 1]), q(&[1, 2]), q(&[3])],
            Weights::uniform(1u64),
        )
        .unwrap();
        assert_eq!(inst.num_queries(), 2);
        assert_eq!(inst.max_query_len(), 2);
        assert_eq!(inst.num_properties(), 3);
    }

    #[test]
    fn rejects_empty_query() {
        let err = Instance::new(vec![q(&[1]), q(&[])], Weights::uniform(1u64)).unwrap_err();
        assert_eq!(err, Mc3Error::EmptyQuery { index: 1 });
    }

    #[test]
    fn rejects_too_long_query() {
        let long: Vec<u32> = (0..40).collect();
        let err = Instance::new(vec![long], Weights::uniform(1u64)).unwrap_err();
        assert!(matches!(err, Mc3Error::QueryTooLong { index: 0, len: 40 }));
    }

    #[test]
    fn restrict_to_subset() {
        let inst = Instance::new(
            vec![q(&[1]), q(&[2, 3]), q(&[4, 5, 6])],
            Weights::uniform(1u64),
        )
        .unwrap();
        let sub = inst.restrict_to(&[0, 2]).unwrap();
        assert_eq!(sub.num_queries(), 2);
        assert_eq!(sub.max_query_len(), 3);
    }

    #[test]
    fn filter_short_queries() {
        let inst = Instance::new(
            vec![q(&[1]), q(&[2, 3]), q(&[4, 5, 6])],
            Weights::uniform(1u64),
        )
        .unwrap();
        let short = inst.filter_queries(|x| x.len() <= 2).unwrap();
        assert!(short.is_short());
        assert_eq!(short.num_queries(), 2);
    }

    #[test]
    fn length_histogram_counts() {
        let inst = Instance::new(
            vec![q(&[1]), q(&[2, 3]), q(&[4, 5]), q(&[4, 5, 6])],
            Weights::uniform(1u64),
        )
        .unwrap();
        assert_eq!(inst.length_histogram(), vec![0, 1, 2, 1]);
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::new(Vec::<Vec<u32>>::new(), Weights::uniform(1u64)).unwrap();
        assert_eq!(inst.num_queries(), 0);
        assert_eq!(inst.max_query_len(), 0);
        assert!(inst.is_short());
    }
}
