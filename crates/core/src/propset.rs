//! Canonical property sets — the common representation of queries and
//! classifiers.
//!
//! A [`PropSet`] is an immutable, sorted, duplicate-free sequence of
//! [`PropId`]s. Sortedness makes subset tests linear merges, `Eq`/`Hash`
//! structural, and the ordering total (lexicographic), which keeps every
//! algorithm in the workspace deterministic.

use crate::prop::PropId;
use std::fmt;

/// A query `q ⊆ P`: the set of properties a conjunctive search query tests.
pub type Query = PropSet;

/// A binary classifier: a non-empty property subset whose conjunction the
/// classifier decides.
pub type Classifier = PropSet;

/// An immutable, canonically sorted set of properties.
///
/// # Example
///
/// ```
/// use mc3_core::{PropId, PropSet};
///
/// let a = PropSet::from_ids([3u32, 1, 2, 1]);
/// assert_eq!(a.len(), 3); // duplicates removed
/// let b = PropSet::from_ids([1u32, 2]);
/// assert!(b.is_subset_of(&a));
/// assert_eq!(a.union(&b), a);
/// assert!(a.contains(PropId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropSet(Box<[PropId]>);

impl PropSet {
    /// The empty set.
    pub fn empty() -> Self {
        PropSet(Box::new([]))
    }

    /// A singleton set.
    pub fn singleton(p: PropId) -> Self {
        PropSet(Box::new([p]))
    }

    /// Builds a set from any iterator of ids, sorting and deduplicating.
    pub fn from_ids<I, T>(ids: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<PropId>,
    {
        let mut v: Vec<PropId> = ids.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        PropSet(v.into_boxed_slice())
    }

    /// Builds a set from a vector that is **already sorted and
    /// duplicate-free**; debug-asserts canonicity.
    pub fn from_sorted(v: Vec<PropId>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "PropSet input not canonical"
        );
        PropSet(v.into_boxed_slice())
    }

    /// Number of properties (the classifier/query *length* of the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the set is a singleton (length 1).
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.0.len() == 1
    }

    /// Sorted slice of members.
    #[inline]
    pub fn ids(&self) -> &[PropId] {
        &self.0
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PropId> + '_ {
        self.0.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, p: PropId) -> bool {
        self.0.binary_search(&p).is_ok()
    }

    /// Whether `self ⊆ other` (linear merge).
    pub fn is_subset_of(&self, other: &PropSet) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut it = other.0.iter();
        'outer: for p in self.0.iter() {
            for q in it.by_ref() {
                match q.cmp(p) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether the two sets share at least one property.
    pub fn intersects(&self, other: &PropSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Set union (sorted merge).
    pub fn union(&self, other: &PropSet) -> PropSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        PropSet(out.into_boxed_slice())
    }

    /// Set difference `self \ other` (sorted merge).
    pub fn difference(&self, other: &PropSet) -> PropSet {
        let mut out = Vec::with_capacity(self.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() {
            if j >= other.0.len() {
                out.extend_from_slice(&self.0[i..]);
                break;
            }
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        PropSet(out.into_boxed_slice())
    }

    /// Set intersection (sorted merge).
    pub fn intersection(&self, other: &PropSet) -> PropSet {
        let mut out = Vec::with_capacity(self.0.len().min(other.0.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PropSet(out.into_boxed_slice())
    }

    /// The subset of `self` selected by `mask`, where bit `i` refers to the
    /// `i`-th smallest member. Used to move between the global representation
    /// and per-query local bitmasks.
    pub fn subset_by_mask(&self, mask: u32) -> PropSet {
        debug_assert!(self.0.len() <= 32);
        let v: Vec<PropId> = self
            .0
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        PropSet(v.into_boxed_slice())
    }

    /// The local bitmask of `other` relative to `self`, if `other ⊆ self`.
    pub fn mask_of(&self, other: &PropSet) -> Option<u32> {
        debug_assert!(self.0.len() <= 32);
        let mut mask = 0u32;
        for p in other.iter() {
            match self.0.binary_search(&p) {
                Ok(i) => mask |= 1 << i,
                Err(_) => return None,
            }
        }
        Some(mask)
    }
}

impl fmt::Display for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl<T: Into<PropId>> FromIterator<T> for PropSet {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PropSet::from_ids(iter)
    }
}

impl From<Vec<PropId>> for PropSet {
    fn from(v: Vec<PropId>) -> Self {
        PropSet::from_ids(v)
    }
}

impl<'a> IntoIterator for &'a PropSet {
    type Item = PropId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, PropId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ids: &[u32]) -> PropSet {
        PropSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = ps(&[5, 1, 3, 1, 5]);
        assert_eq!(s.ids(), &[PropId(1), PropId(3), PropId(5)]);
    }

    #[test]
    fn subset_tests() {
        let big = ps(&[1, 2, 3, 4]);
        assert!(ps(&[]).is_subset_of(&big));
        assert!(ps(&[2, 4]).is_subset_of(&big));
        assert!(big.is_subset_of(&big));
        assert!(!ps(&[2, 5]).is_subset_of(&big));
        assert!(!big.is_subset_of(&ps(&[1, 2, 3])));
    }

    #[test]
    fn union_difference_intersection() {
        let a = ps(&[1, 3, 5]);
        let b = ps(&[2, 3, 6]);
        assert_eq!(a.union(&b), ps(&[1, 2, 3, 5, 6]));
        assert_eq!(a.difference(&b), ps(&[1, 5]));
        assert_eq!(a.intersection(&b), ps(&[3]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&ps(&[2, 6])));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = ps(&[4, 7]);
        assert_eq!(a.union(&PropSet::empty()), a);
        assert_eq!(PropSet::empty().union(&a), a);
    }

    #[test]
    fn masks_roundtrip() {
        let q = ps(&[10, 20, 30, 40]);
        let c = ps(&[20, 40]);
        let mask = q.mask_of(&c).unwrap();
        assert_eq!(mask, 0b1010);
        assert_eq!(q.subset_by_mask(mask), c);
        assert_eq!(q.mask_of(&ps(&[20, 99])), None);
        assert_eq!(q.mask_of(&q), Some(0b1111));
        assert_eq!(q.subset_by_mask(0), PropSet::empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(ps(&[1]) < ps(&[1, 2]));
        assert!(ps(&[1, 2]) < ps(&[2]));
    }

    #[test]
    fn display_renders_ids() {
        assert_eq!(ps(&[2, 1]).to_string(), "{p1,p2}");
        assert_eq!(PropSet::empty().to_string(), "{}");
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = ps(&[1, 4, 9, 16]);
        assert!(s.contains(PropId(9)));
        assert!(!s.contains(PropId(10)));
    }
}
