//! Classifier construction costs.
//!
//! The paper's weight function maps classifiers to `[0, ∞)`, with `∞` used
//! for classifiers that are pruned or infeasible (not enough training data,
//! unknown cost, …). All published datasets use integer costs (1–63 and
//! uniform `[1, 50]`), so [`Weight`] wraps a `u64` with an explicit infinity
//! sentinel; fractional costs can be scaled to integers by the caller.
//! Integer weights keep Max-Flow, the greedy ratio rule and all invariants
//! exact — no floating point on any hot path.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

/// A non-negative classifier cost, or infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(u64);

impl Weight {
    /// Zero cost (e.g. a property already recorded in the database, §2.1).
    pub const ZERO: Weight = Weight(0);
    /// The `∞` sentinel: a classifier that must never be selected.
    pub const INFINITE: Weight = Weight(u64::MAX);
    /// Largest representable finite weight.
    pub const MAX_FINITE: Weight = Weight(u64::MAX - 1);

    /// A finite weight. Panics if `v == u64::MAX` (reserved for infinity).
    #[inline]
    pub fn new(v: u64) -> Weight {
        assert_ne!(v, u64::MAX, "u64::MAX is reserved for Weight::INFINITE");
        Weight(v)
    }

    /// Whether this is the infinity sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Whether this weight is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// Whether this weight is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The raw finite value; `None` if infinite.
    #[inline]
    pub fn finite(self) -> Option<u64> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0)
        }
    }

    /// The raw value, treating infinity as `u64::MAX`.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition: `∞` absorbs, finite sums saturate at
    /// [`Weight::MAX_FINITE`].
    #[inline]
    pub fn saturating_add(self, rhs: Weight) -> Weight {
        if self.is_infinite() || rhs.is_infinite() {
            Weight::INFINITE
        } else {
            Weight(self.0.saturating_add(rhs.0).min(u64::MAX - 1))
        }
    }

    /// Checked finite addition; `None` on overflow or if either side is `∞`.
    #[inline]
    pub fn checked_add(self, rhs: Weight) -> Option<Weight> {
        if self.is_infinite() || rhs.is_infinite() {
            return None;
        }
        let sum = self.0.checked_add(rhs.0)?;
        if sum == u64::MAX {
            None
        } else {
            Some(Weight(sum))
        }
    }

    /// `self` as `f64` (`∞` maps to `f64::INFINITY`); for LP interop only.
    #[inline]
    pub fn to_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            self.0 as f64
        }
    }
}

impl Add for Weight {
    type Output = Weight;

    /// Saturating by design: summing solution costs must never wrap.
    fn add(self, rhs: Weight) -> Weight {
        self.saturating_add(rhs)
    }
}

impl Sum for Weight {
    fn sum<I: Iterator<Item = Weight>>(iter: I) -> Weight {
        iter.fold(Weight::ZERO, Weight::saturating_add)
    }
}

impl From<u64> for Weight {
    fn from(v: u64) -> Self {
        Weight::new(v)
    }
}

impl From<u32> for Weight {
    fn from(v: u32) -> Self {
        Weight(v as u64)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_absorbs_addition() {
        assert_eq!(Weight::INFINITE + Weight::new(5), Weight::INFINITE);
        assert_eq!(Weight::new(5) + Weight::INFINITE, Weight::INFINITE);
        assert!(Weight::INFINITE.is_infinite());
    }

    #[test]
    fn finite_addition() {
        assert_eq!(Weight::new(2) + Weight::new(3), Weight::new(5));
        assert_eq!(
            Weight::new(2).checked_add(Weight::new(3)),
            Some(Weight::new(5))
        );
        assert_eq!(Weight::MAX_FINITE.checked_add(Weight::new(1)), None);
        assert_eq!(Weight::INFINITE.checked_add(Weight::new(1)), None);
    }

    #[test]
    fn saturating_add_stays_finite() {
        let w = Weight::MAX_FINITE.saturating_add(Weight::MAX_FINITE);
        assert!(w.is_finite());
        assert_eq!(w, Weight::MAX_FINITE);
    }

    #[test]
    fn sum_of_weights() {
        let total: Weight = [1u64, 2, 3].into_iter().map(Weight::new).sum();
        assert_eq!(total, Weight::new(6));
        let total: Weight = [Weight::new(1), Weight::INFINITE].into_iter().sum();
        assert!(total.is_infinite());
    }

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Weight::new(1_000_000) < Weight::INFINITE);
        assert!(Weight::ZERO < Weight::new(1));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_sentinel() {
        let _ = Weight::new(u64::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Weight::new(42).to_string(), "42");
        assert_eq!(Weight::INFINITE.to_string(), "∞");
    }
}
