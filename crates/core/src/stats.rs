//! Instance statistics and the paper's granular parameters (`n`, `k`, `I`,
//! `n̂`, `m̂`, `f`, `Δ`) plus the Theorem 5.3 approximation guarantee.

use crate::instance::Instance;
use crate::universe::ClassifierUniverse;
use std::fmt;

/// Summary parameters of an MC³ instance (cf. §2.1 and §5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of distinct queries `n`.
    pub num_queries: usize,
    /// Number of distinct properties `|P|`.
    pub num_properties: usize,
    /// Maximal query length `k`.
    pub max_query_len: usize,
    /// Size of the classifier universe `m̂ = |C_Q|` (bounded by `n·2^(k−1)`).
    pub num_classifiers: usize,
    /// Instance incidence `I = max_S I(S)`.
    pub max_incidence: u32,
    /// Sum of query lengths `n̂ = Σ_q |q|` — the number of WSC elements.
    pub sum_query_lens: usize,
    /// `hist[l]` = number of queries of length `l`.
    pub length_histogram: Vec<usize>,
    /// Classifier-length bound `k'` the universe was built with.
    pub max_classifier_len: usize,
}

impl InstanceStats {
    /// Gathers statistics for `instance`, enumerating its full universe.
    pub fn gather(instance: &Instance) -> InstanceStats {
        let universe = ClassifierUniverse::build(instance);
        Self::gather_with_universe(instance, &universe)
    }

    /// Gathers statistics against an already-built universe.
    pub fn gather_with_universe(
        instance: &Instance,
        universe: &ClassifierUniverse,
    ) -> InstanceStats {
        InstanceStats {
            num_queries: instance.num_queries(),
            num_properties: instance.num_properties(),
            max_query_len: instance.max_query_len(),
            num_classifiers: universe.len(),
            max_incidence: universe.max_incidence(),
            sum_query_lens: instance.queries().iter().map(|q| q.len()).sum(),
            length_histogram: instance.length_histogram(),
            max_classifier_len: universe.max_classifier_len(),
        }
    }

    /// Fraction of queries of length ≤ 2 (the paper reports 95 % for
    /// BestBuy and 96 % for the fashion category).
    pub fn short_query_fraction(&self) -> f64 {
        if self.num_queries == 0 {
            return 1.0;
        }
        let short: usize = self.length_histogram.iter().take(3).sum();
        short as f64 / self.num_queries as f64
    }

    /// The WSC frequency bound after the §5.2 reduction:
    /// `f ≤ Σ_{i=0}^{k'−1} C(k−1, i)`, which is `2^(k−1)` for `k' = k` and
    /// `k` for `k' = 2` (§5.3, "Bounded classifiers").
    pub fn wsc_frequency_bound(&self) -> u64 {
        let k = self.max_query_len as u64;
        let kp = self.max_classifier_len as u64;
        if k == 0 {
            return 0;
        }
        (0..kp.min(k)).map(|i| binomial(k - 1, i)).sum()
    }

    /// The WSC degree bound `Δ ≤ (k'−1)·I` — with the convention that for
    /// `k' = 1` (singletons only) each set covers `I(S)` elements, i.e. the
    /// bound is `I`.
    pub fn wsc_degree_bound(&self) -> u64 {
        let kp = self.max_classifier_len.max(1) as u64;
        kp.max(2).saturating_sub(1) * self.max_incidence as u64
    }

    /// Theorem 5.3 guarantee for Algorithm 3:
    /// `min{ln I + ln(k−1) + 1, 2^(k−1)}` (adapted to the bounded-universe
    /// parameters when `k' < k`).
    pub fn approximation_guarantee(&self) -> f64 {
        let delta = self.wsc_degree_bound().max(1) as f64;
        let greedy = delta.ln() + 1.0;
        let f = self.wsc_frequency_bound().max(1) as f64;
        greedy.min(f)
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1u128;
    let mut den = 1u128;
    for i in 0..k {
        num *= (n - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den) as u64
}

impl fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} |P|={} k={} m̂={} I={} n̂={} short={:.1}%",
            self.num_queries,
            self.num_properties,
            self.max_query_len,
            self.num_classifiers,
            self.max_incidence,
            self.sum_query_lens,
            100.0 * self.short_query_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Weights;

    #[test]
    fn gather_counts_parameters() {
        let instance = Instance::new(
            vec![vec![0u32, 1], vec![1u32, 2], vec![0u32, 1, 2]],
            Weights::uniform(1u64),
        )
        .unwrap();
        let s = InstanceStats::gather(&instance);
        assert_eq!(s.num_queries, 3);
        assert_eq!(s.num_properties, 3);
        assert_eq!(s.max_query_len, 3);
        assert_eq!(s.sum_query_lens, 7);
        // C_Q = all subsets of {0,1,2} (query 3 generates all 7) = 7
        assert_eq!(s.num_classifiers, 7);
        // property 1 appears in 3 queries → I = 3
        assert_eq!(s.max_incidence, 3);
        assert!((s.short_query_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_bound_matches_closed_forms() {
        // k' = k: f = 2^(k-1)
        let instance = Instance::new(vec![vec![0u32, 1, 2, 3]], Weights::uniform(1u64)).unwrap();
        let s = InstanceStats::gather(&instance);
        assert_eq!(s.wsc_frequency_bound(), 8); // 2^3
                                                // k' = 2: f = k (C(k-1,0) + C(k-1,1) = 1 + (k-1))
        let u = ClassifierUniverse::build_bounded(&instance, 2);
        let s2 = InstanceStats::gather_with_universe(&instance, &u);
        assert_eq!(s2.wsc_frequency_bound(), 4);
    }

    #[test]
    fn guarantee_is_min_of_two_bounds() {
        let instance = Instance::new(vec![vec![0u32, 1]], Weights::uniform(1u64)).unwrap();
        let s = InstanceStats::gather(&instance);
        // k=2: f = 2, Δ = 1·1 = 1 → greedy bound = ln 1 + 1 = 1
        assert!((s.approximation_guarantee() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
    }

    #[test]
    fn empty_instance_stats() {
        let instance = Instance::new(Vec::<Vec<u32>>::new(), Weights::uniform(1u64)).unwrap();
        let s = InstanceStats::gather(&instance);
        assert_eq!(s.num_queries, 0);
        assert_eq!(s.short_query_fraction(), 1.0);
        assert_eq!(s.wsc_frequency_bound(), 0);
    }
}
