//! The classifier universe `C_Q` in dense, indexed form.
//!
//! For every query `q`, every non-empty subset of `q` is a relevant
//! classifier (§2.1). The universe deduplicates classifiers shared between
//! queries, assigns dense [`ClassifierId`]s, materializes their weights once,
//! computes incidences `I(S) = |Q_S|`, and keeps a per-query table mapping
//! each *local bitmask* (bit `i` ⇔ the `i`-th smallest property of the
//! query) to the global classifier id. All solver hot paths work on these
//! masks and ids rather than on property sets.
//!
//! The optional `max_classifier_len` bound implements the paper's "bounded
//! classifiers" variant (§5.3): only classifiers of length ≤ `k'` are
//! considered.

use crate::cast::u32_of;
use crate::error::{Mc3Error, Result};
use crate::fxhash::FxHashMap;
use crate::instance::Instance;
use crate::propset::{Classifier, PropSet};
use crate::weight::Weight;
use std::fmt;

/// Dense id of a classifier within a [`ClassifierUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassifierId(pub u32);

impl ClassifierId {
    /// Sentinel meaning "no classifier" (used in mask tables at slot 0 and
    /// for masks excluded by a length bound).
    pub const NONE: ClassifierId = ClassifierId(u32::MAX);

    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`ClassifierId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for ClassifierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "c∅")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

/// Per-query view: the query's length and its mask → classifier-id table.
#[derive(Debug, Clone)]
pub struct QueryLocal {
    /// Query length `ℓ`.
    pub len: usize,
    /// `table[m]` is the classifier id of the subset with local mask `m`
    /// (`1 ≤ m < 2^ℓ`); `table[0]` and masks excluded by a length bound hold
    /// [`ClassifierId::NONE`].
    pub table: Vec<ClassifierId>,
}

impl QueryLocal {
    /// The classifier id for local mask `m`, if in the universe.
    #[inline]
    pub fn id(&self, mask: u32) -> ClassifierId {
        self.table[mask as usize]
    }

    /// The full-query mask `2^ℓ − 1`.
    #[inline]
    pub fn full_mask(&self) -> u32 {
        u32_of((1u64 << self.len) - 1)
    }
}

/// The deduplicated classifier universe of an instance.
#[derive(Debug, Clone)]
pub struct ClassifierUniverse {
    classifiers: Vec<Classifier>,
    weights: Vec<Weight>,
    incidence: Vec<u32>,
    index: FxHashMap<Classifier, ClassifierId>,
    per_query: Vec<QueryLocal>,
    max_classifier_len: usize,
}

impl ClassifierUniverse {
    /// Enumerates `C_Q` for `instance`, considering all subset lengths.
    pub fn build(instance: &Instance) -> ClassifierUniverse {
        Self::build_bounded(instance, instance.max_query_len().max(1))
    }

    /// Enumerates the bounded universe: only classifiers of length ≤
    /// `max_classifier_len` (`k'` of §5.3). A bound of 0 is clamped to 1
    /// because singleton classifiers are always needed for coverability.
    pub fn build_bounded(instance: &Instance, max_classifier_len: usize) -> ClassifierUniverse {
        let kp = max_classifier_len.max(1);
        let mut classifiers: Vec<Classifier> = Vec::new();
        let mut weights: Vec<Weight> = Vec::new();
        let mut incidence: Vec<u32> = Vec::new();
        let mut index: FxHashMap<Classifier, ClassifierId> = FxHashMap::default();
        let mut per_query: Vec<QueryLocal> = Vec::with_capacity(instance.num_queries());

        for q in instance.queries() {
            let len = q.len();
            let full = (1u64 << len) as usize;
            let mut table = vec![ClassifierId::NONE; full];
            for mask in 1..u32_of(full) {
                if (mask.count_ones() as usize) > kp {
                    continue;
                }
                let subset = q.subset_by_mask(mask);
                let id = match index.get(&subset) {
                    Some(&id) => id,
                    None => {
                        let id = ClassifierId(u32_of(classifiers.len()));
                        weights.push(instance.weight(&subset));
                        classifiers.push(subset.clone());
                        incidence.push(0);
                        index.insert(subset, id);
                        id
                    }
                };
                // Incidence counts queries that *include* S; each (q, S ⊆ q)
                // pair is visited exactly once here. Infinite-weight
                // classifiers have I(S) = 0 by definition (§5).
                if weights[id.index()].is_finite() {
                    incidence[id.index()] += 1;
                }
                table[mask as usize] = id;
            }
            per_query.push(QueryLocal { len, table });
        }

        ClassifierUniverse {
            classifiers,
            weights,
            incidence,
            index,
            per_query,
            max_classifier_len: kp,
        }
    }

    /// Number of distinct classifiers (`m̂` of §5.2).
    #[inline]
    pub fn len(&self) -> usize {
        self.classifiers.len()
    }

    /// Whether the universe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classifiers.is_empty()
    }

    /// The classifier with dense id `id`.
    #[inline]
    pub fn classifier(&self, id: ClassifierId) -> &Classifier {
        &self.classifiers[id.index()]
    }

    /// The materialized weight of `id`.
    #[inline]
    pub fn weight(&self, id: ClassifierId) -> Weight {
        self.weights[id.index()]
    }

    /// All materialized weights, indexed by classifier id.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Overrides the materialized weight of one classifier.
    ///
    /// Used by incremental planning: classifiers that are already built
    /// cost nothing to "construct" again, so their weight is zeroed before
    /// solving. The override is local to this universe — the instance's
    /// weight function is untouched.
    pub fn override_weight(&mut self, id: ClassifierId, weight: Weight) {
        let was_finite = self.weights[id.index()].is_finite();
        self.weights[id.index()] = weight;
        // keep the incidence convention (I(S) = 0 for infinite weights)
        if was_finite && weight.is_infinite() {
            self.incidence[id.index()] = 0;
        }
    }

    /// Incidence `I(S)`: the number of queries whose property set includes
    /// `S` (0 for infinite-weight classifiers).
    #[inline]
    pub fn incidence(&self, id: ClassifierId) -> u32 {
        self.incidence[id.index()]
    }

    /// The instance incidence `I = max_S I(S)` (§5).
    pub fn max_incidence(&self) -> u32 {
        self.incidence.iter().copied().max().unwrap_or(0)
    }

    /// Looks up a classifier's dense id.
    pub fn id_of(&self, classifier: &PropSet) -> Option<ClassifierId> {
        self.index.get(classifier).copied()
    }

    /// Looks up a classifier's dense id, erroring if outside `C_Q`.
    pub fn require_id(&self, classifier: &PropSet) -> Result<ClassifierId> {
        self.id_of(classifier)
            .ok_or_else(|| Mc3Error::ClassifierOutsideUniverse {
                classifier: classifier.to_string(),
            })
    }

    /// Per-query local view (parallel to `instance.queries()`).
    #[inline]
    pub fn query_local(&self, query_idx: usize) -> &QueryLocal {
        &self.per_query[query_idx]
    }

    /// Number of queries the universe was built from.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.per_query.len()
    }

    /// The classifier-length bound `k'` in effect.
    #[inline]
    pub fn max_classifier_len(&self) -> usize {
        self.max_classifier_len
    }

    /// Iterates `(id, classifier)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassifierId, &Classifier)> {
        self.classifiers
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassifierId(u32_of(i)), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::Weights;

    fn inst(queries: Vec<Vec<u32>>) -> Instance {
        Instance::new(queries, Weights::uniform(1u64)).unwrap()
    }

    #[test]
    fn paper_example_universe() {
        // P = {x,y,z,u}, Q = {xy, zu} → C_Q = {X, Y, Z, U, XY, ZU} (§2.1)
        let instance = inst(vec![vec![0, 1], vec![2, 3]]);
        let u = ClassifierUniverse::build(&instance);
        assert_eq!(u.len(), 6);
        assert!(
            u.id_of(&PropSet::from_ids([0u32, 2])).is_none(),
            "XZ must not exist"
        );
        assert!(u.id_of(&PropSet::from_ids([0u32, 1])).is_some());
    }

    #[test]
    fn shared_classifiers_deduplicate_and_count_incidence() {
        // Q = {xy, yz}: I(y) = 2, everything else 1 (example of §5)
        let instance = inst(vec![vec![0, 1], vec![1, 2]]);
        let u = ClassifierUniverse::build(&instance);
        let y = u.id_of(&PropSet::from_ids([1u32])).unwrap();
        assert_eq!(u.incidence(y), 2);
        let x = u.id_of(&PropSet::from_ids([0u32])).unwrap();
        assert_eq!(u.incidence(x), 1);
        let xy = u.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        assert_eq!(u.incidence(xy), 1);
        assert_eq!(u.max_incidence(), 2);
        // X, Y, Z, XY, YZ
        assert_eq!(u.len(), 5);
    }

    #[test]
    fn infinite_weight_classifiers_have_zero_incidence() {
        let w = crate::weights::WeightsBuilder::new()
            .classifier([0u32], 1u64)
            .classifier([1u32], 1u64)
            .build(); // XY absent → infinite
        let instance = Instance::new(vec![vec![0u32, 1]], w).unwrap();
        let u = ClassifierUniverse::build(&instance);
        let xy = u.id_of(&PropSet::from_ids([0u32, 1])).unwrap();
        assert!(u.weight(xy).is_infinite());
        assert_eq!(u.incidence(xy), 0);
        assert_eq!(u.max_incidence(), 1);
    }

    #[test]
    fn mask_table_maps_local_masks_to_ids() {
        let instance = inst(vec![vec![10, 20, 30]]);
        let u = ClassifierUniverse::build(&instance);
        let local = u.query_local(0);
        assert_eq!(local.len, 3);
        assert_eq!(local.full_mask(), 0b111);
        assert!(local.id(0).is_none());
        // mask 0b101 → {10, 30}
        let id = local.id(0b101);
        assert_eq!(u.classifier(id), &PropSet::from_ids([10u32, 30]));
        // 2^3 - 1 = 7 classifiers
        assert_eq!(u.len(), 7);
    }

    #[test]
    fn bounded_universe_excludes_long_classifiers() {
        let instance = inst(vec![vec![0, 1, 2]]);
        let u = ClassifierUniverse::build_bounded(&instance, 2);
        // singletons + pairs only: 3 + 3
        assert_eq!(u.len(), 6);
        let local = u.query_local(0);
        assert!(local.id(0b111).is_none());
        assert!(!local.id(0b011).is_none());
        assert_eq!(u.max_classifier_len(), 2);
    }

    #[test]
    fn require_id_errors_outside_universe() {
        let instance = inst(vec![vec![0, 1]]);
        let u = ClassifierUniverse::build(&instance);
        let err = u.require_id(&PropSet::from_ids([5u32])).unwrap_err();
        assert!(matches!(err, Mc3Error::ClassifierOutsideUniverse { .. }));
    }

    #[test]
    fn universe_size_bound_matches_paper() {
        // n disjoint queries of length k: |C_Q| = n(2^k - 1)
        let instance = inst(vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]]);
        let u = ClassifierUniverse::build(&instance);
        assert_eq!(u.len(), 3 * 7);
    }
}
