//! Parsing textual conjunctive queries into instances.
//!
//! The paper's pipeline translates free-text searches into SQL-like
//! conjunctions (`team = 'Juventus' AND color = 'White'`, §1). This module
//! provides the equivalent entry point for building instances from
//! human-readable query lists: one query per line, properties separated by
//! `AND` (case-insensitive) or `&`, with `#` comments and blank lines
//! ignored. Property names are interned verbatim (whitespace-trimmed), so
//! `brand=Adidas` and `brand = Adidas` can be normalized by the caller if
//! needed.
//!
//! ```
//! use mc3_core::parse::parse_queries;
//!
//! let text = "team=Juventus AND color=White AND brand=Adidas\n\
//!             team=Chelsea AND brand=Adidas   # a comment\n\
//!             brand=Adidas";
//! let (queries, interner) = parse_queries(text).unwrap();
//! assert_eq!(queries.len(), 3);
//! assert_eq!(interner.len(), 4);
//! ```

use crate::error::{Mc3Error, Result};
use crate::prop::{PropId, PropertyInterner};
use crate::propset::{PropSet, Query};

/// Splits one query line into property names.
fn split_properties(line: &str) -> Vec<&str> {
    // accept "AND" (any case, token-delimited) and "&" as separators
    let mut parts: Vec<&str> = Vec::new();
    for chunk in line.split('&') {
        let mut rest = chunk;
        loop {
            let lower = rest.to_ascii_lowercase();
            if let Some(pos) = find_and_token(&lower) {
                parts.push(rest[..pos].trim());
                rest = &rest[pos + 3..];
            } else {
                parts.push(rest.trim());
                break;
            }
        }
    }
    parts.into_iter().filter(|p| !p.is_empty()).collect()
}

/// Finds a token-delimited `and` in a lower-cased string.
fn find_and_token(lower: &str) -> Option<usize> {
    let bytes = lower.as_bytes();
    let mut start = 0;
    while let Some(pos) = lower[start..].find("and") {
        let i = start + pos;
        let before_ok = i == 0 || bytes[i - 1].is_ascii_whitespace();
        let after = i + 3;
        let after_ok = after >= bytes.len() || bytes[after].is_ascii_whitespace();
        if before_ok && after_ok {
            return Some(i);
        }
        start = i + 3;
    }
    None
}

/// Parses a multi-line query-load description. Returns canonical queries
/// (duplicates retained — deduplication happens in
/// [`crate::instance::Instance`]) and the interner mapping names to ids.
pub fn parse_queries(text: &str) -> Result<(Vec<Query>, PropertyInterner)> {
    let mut interner = PropertyInterner::new();
    let mut queries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let names = split_properties(line);
        if names.is_empty() {
            return Err(Mc3Error::EmptyQuery { index: lineno });
        }
        let ids: Vec<PropId> = names.into_iter().map(|n| interner.intern(n)).collect();
        let query = PropSet::from_ids(ids.iter().map(|p| p.0));
        if query.len() > crate::MAX_QUERY_LEN {
            return Err(Mc3Error::QueryTooLong {
                index: lineno,
                len: query.len(),
            });
        }
        queries.push(query);
    }
    Ok((queries, interner))
}

/// Renders a query back to text using `interner` (properties joined with
/// `" AND "`); unknown ids render as `p<id>`.
pub fn render_query(query: &Query, interner: &PropertyInterner) -> String {
    query
        .iter()
        .map(|p| {
            interner
                .name(p)
                .map(str::to_owned)
                .unwrap_or_else(|| p.to_string())
        })
        .collect::<Vec<_>>()
        .join(" AND ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_queries() {
        let (queries, it) = parse_queries(
            "team=Juventus AND color=White AND brand=Adidas\nteam=Chelsea AND brand=Adidas",
        )
        .unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].len(), 3);
        assert_eq!(queries[1].len(), 2);
        assert_eq!(it.len(), 4);
        // shared property gets one id
        let adidas = it.get("brand=Adidas").unwrap();
        assert!(queries[0].contains(adidas));
        assert!(queries[1].contains(adidas));
    }

    #[test]
    fn separators_and_case() {
        let (queries, _) = parse_queries("a AND b\nc and d\ne & f\ng AnD h").unwrap();
        assert!(queries.iter().all(|q| q.len() == 2));
    }

    #[test]
    fn and_inside_words_is_not_a_separator() {
        let (queries, it) = parse_queries("brand=android AND color=sand").unwrap();
        assert_eq!(queries[0].len(), 2);
        assert!(it.get("brand=android").is_some());
        assert!(it.get("color=sand").is_some());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let (queries, _) =
            parse_queries("# header\n\na AND b # trailing comment\n\n   \nc").unwrap();
        assert_eq!(queries.len(), 2);
    }

    #[test]
    fn duplicate_properties_in_one_query_collapse() {
        let (queries, _) = parse_queries("x AND x AND y").unwrap();
        assert_eq!(queries[0].len(), 2);
    }

    #[test]
    fn comment_only_payload_line_errors() {
        // the line has content that reduces to nothing after the comment
        let err = parse_queries("and").unwrap_err();
        assert!(matches!(err, Mc3Error::EmptyQuery { index: 0 }));
    }

    #[test]
    fn roundtrip_rendering() {
        let (queries, it) = parse_queries("team=Juventus AND brand=Adidas").unwrap();
        let rendered = render_query(&queries[0], &it);
        // canonical order is by id (intern order)
        assert_eq!(rendered, "team=Juventus AND brand=Adidas");
    }

    #[test]
    fn whitespace_is_trimmed() {
        let (_, it) = parse_queries("  spaced name   AND  other  ").unwrap();
        assert!(it.get("spaced name").is_some());
        assert!(it.get("other").is_some());
    }
}
