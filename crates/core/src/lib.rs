#![warn(missing_docs)]

//! Core data model for the **MC³** problem — *Minimization of Classifier
//! Construction Cost for Search Queries* (Gershtein, Milo, Morami,
//! Novgorodov; SIGMOD 2020).
//!
//! The model follows Section 2 of the paper:
//!
//! * a universe of **properties** `P` ([`PropId`], interned via
//!   [`PropertyInterner`]);
//! * **queries** `q ⊆ P` ([`Query`]) — conjunctive search queries, each a set
//!   of properties;
//! * **classifiers** ([`Classifier`]) — non-empty subsets of some query; a
//!   classifier tests whether an item satisfies *all* of its properties;
//! * the **classifier universe** `C_Q = ⋃_{q∈Q} (2^q \ ∅)`
//!   ([`ClassifierUniverse`]);
//! * a **weight function** `W : C_Q → [0, ∞]` ([`Weights`], [`Weight`]);
//! * an **instance** `⟨Q, W⟩` ([`Instance`]) and a **solution** — a set of
//!   classifiers covering every query ([`Solution`]).
//!
//! A query `q` is *covered* by a classifier set `S` iff there is `T ⊆ S` with
//! `⋃T = q`; equivalently, the union of all members of `S` that are subsets
//! of `q` equals `q` (see [`cover`]).
//!
//! # Example
//!
//! Example 1.1 of the paper (soccer shirts): two queries
//! `{juventus, white, adidas}` and `{chelsea, adidas}`, with the optimal
//! solution `{AC, AJ, W}` of cost `7N`:
//!
//! ```
//! use mc3_core::{Instance, PropertyInterner, Weight, WeightsBuilder};
//!
//! let mut props = PropertyInterner::new();
//! let (j, w, a, c) = (
//!     props.intern("team=Juventus"),
//!     props.intern("color=White"),
//!     props.intern("brand=Adidas"),
//!     props.intern("team=Chelsea"),
//! );
//! let queries = vec![vec![j, w, a], vec![c, a]];
//! let weights = WeightsBuilder::new()
//!     .classifier([c], 5u64)
//!     .classifier([a], 5u64)
//!     .classifier([j], 5u64)
//!     .classifier([w], 1u64)
//!     .classifier([a, c], 3u64)
//!     .classifier([a, w], 5u64)
//!     .classifier([a, j], 3u64)
//!     .classifier([j, w], 4u64)
//!     .classifier([j, a, w], 5u64)
//!     .build();
//! let instance = Instance::new(queries, weights).unwrap();
//! assert_eq!(instance.num_queries(), 2);
//! assert_eq!(instance.max_query_len(), 3);
//! ```

pub mod canon;
pub mod cast;
pub mod certificate;
pub mod cover;
pub mod error;
pub mod fxhash;
pub mod instance;
pub mod json;
pub mod multivalued;
pub mod parse;
pub mod prop;
pub mod propset;
pub mod rng;
pub mod solution;
pub mod stats;
pub mod universe;
pub mod weight;
pub mod weights;

pub use canon::{canonicalize, canonicalize_instance, stable_hash128, Canonical, StableHasher};
pub use cast::{i64_of, u16_of, u32_of, u8_of};
pub use certificate::{Certificate, CoverWitness};
pub use cover::{covered, covering_subset, is_cover};
pub use error::{Mc3Error, Result};
pub use fxhash::{FxHashMap, FxHashSet};
pub use instance::Instance;
pub use multivalued::{merge_to_attributes, AttributeId, AttributeSchema, MultiValuedClassifier};
pub use parse::{parse_queries, render_query};
pub use prop::{PropId, PropertyInterner};
pub use propset::{Classifier, PropSet, Query};
pub use solution::Solution;
pub use stats::InstanceStats;
pub use universe::{ClassifierId, ClassifierUniverse};
pub use weight::Weight;
pub use weights::{Weights, WeightsBuilder};

/// Maximum supported query length.
///
/// Per-query algorithmic work (subset enumeration, decomposition pruning,
/// per-query covering DP) uses `u32` bitmasks over the query's own
/// properties, so queries are limited to 16 properties. The paper notes that
/// in practice `k` "rarely even exceeds 5" and its synthetic workload caps
/// query length at 10.
pub const MAX_QUERY_LEN: usize = 16;
