//! Interned properties.
//!
//! The paper's property universe `P` contains opaque atomic properties such
//! as `team = Juventus` or `color = White`. We intern property names to dense
//! `u32` ids so that queries and classifiers are small integer sets.

use crate::cast::u32_of;
use crate::fxhash::FxHashMap;
use std::fmt;

/// A dense, interned property identifier.
///
/// Ids are assigned consecutively from 0 by [`PropertyInterner::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropId(pub u32);

impl PropId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PropId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PropId {
    #[inline]
    fn from(v: u32) -> Self {
        PropId(v)
    }
}

/// Bidirectional map between human-readable property names and [`PropId`]s.
///
/// # Example
///
/// ```
/// use mc3_core::PropertyInterner;
///
/// let mut interner = PropertyInterner::new();
/// let red = interner.intern("color=Red");
/// assert_eq!(interner.intern("color=Red"), red); // idempotent
/// assert_eq!(interner.name(red), Some("color=Red"));
/// assert_eq!(interner.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PropertyInterner {
    names: Vec<String>,
    ids: FxHashMap<String, PropId>,
}

impl PropertyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing id if already present.
    pub fn intern(&mut self, name: impl AsRef<str>) -> PropId {
        let name = name.as_ref();
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        // audit:allow(no-unwrap-in-lib) capacity invariant: ids are u32 by design
        let id = PropId(u32::try_from(self.names.len()).expect("more than u32::MAX properties"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: impl AsRef<str>) -> Option<PropId> {
        self.ids.get(name.as_ref()).copied()
    }

    /// The name of `id`, if `id` was produced by this interner.
    pub fn name(&self, id: PropId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned properties.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no property has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PropId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PropId(u32_of(i)), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut it = PropertyInterner::new();
        assert_eq!(it.intern("a"), PropId(0));
        assert_eq!(it.intern("b"), PropId(1));
        assert_eq!(it.intern("a"), PropId(0));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn name_roundtrip() {
        let mut it = PropertyInterner::new();
        let id = it.intern("brand=Adidas");
        assert_eq!(it.name(id), Some("brand=Adidas"));
        assert_eq!(it.get("brand=Adidas"), Some(id));
        assert_eq!(it.get("missing"), None);
        assert_eq!(it.name(PropId(99)), None);
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut it = PropertyInterner::new();
        it.intern("x");
        it.intern("y");
        it.intern("z");
        let collected: Vec<_> = it.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(
            collected,
            vec![
                (0, "x".to_owned()),
                (1, "y".to_owned()),
                (2, "z".to_owned())
            ]
        );
    }

    #[test]
    fn empty_interner() {
        let it = PropertyInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(PropId(7).to_string(), "p7");
    }
}
