//! Pipeline-level properties on medium random instances (no exact
//! reference needed): refinement monotonicity, bounded-universe validity,
//! Short-First consistency, and prebuilt-inventory accounting.

use mc3_core::{is_cover, Instance, Weights};
use mc3_solver::{Algorithm, Mc3Solver};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    let query = prop::collection::vec(0..30u32, 1..5);
    (prop::collection::vec(query, 1..40), any::<u64>()).prop_map(|(queries, seed)| {
        Instance::new(queries, Weights::seeded(seed, 1, 40)).expect("valid instance")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn refinement_never_raises_the_cost(instance in arb_instance()) {
        let raw = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .without_refinement()
            .solve(&instance)
            .unwrap();
        let refined = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve(&instance)
            .unwrap();
        raw.verify(&instance).unwrap();
        refined.verify(&instance).unwrap();
        prop_assert!(refined.cost() <= raw.cost());
    }

    #[test]
    fn short_first_and_general_both_cover(instance in arb_instance()) {
        for alg in [Algorithm::General, Algorithm::ShortFirst, Algorithm::Auto] {
            let sol = Mc3Solver::new().algorithm(alg).solve(&instance).unwrap();
            sol.verify(&instance).unwrap();
        }
    }

    #[test]
    fn prebuilt_marginal_cost_is_bounded_by_fresh_cost(instance in arb_instance()) {
        // building on top of any inventory can never cost more than
        // starting from scratch
        let fresh = Mc3Solver::new().solve(&instance).unwrap();
        // reuse half of the fresh solution as the inventory
        let inventory: Vec<_> = fresh
            .classifiers()
            .iter()
            .step_by(2)
            .cloned()
            .collect();
        let report = Mc3Solver::new()
            .prebuilt(inventory.clone())
            .solve_report(&instance)
            .unwrap();
        prop_assert!(is_cover(&instance, &report.full_cover()));
        prop_assert!(
            report.solution.cost() <= fresh.cost(),
            "marginal {} > fresh {}",
            report.solution.cost(),
            fresh.cost()
        );
        // everything reported as used inventory really is inventory
        for c in &report.prebuilt_used {
            prop_assert!(inventory.contains(c));
        }
    }

    #[test]
    fn bounded_universe_solutions_respect_the_bound(instance in arb_instance(), kp in 1..4usize) {
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(kp)
            .solve(&instance)
            .unwrap();
        sol.verify(&instance).unwrap();
        prop_assert!(sol.classifiers().iter().all(|c| c.len() <= kp));
    }

    #[test]
    fn reports_are_self_consistent(instance in arb_instance()) {
        let report = Mc3Solver::new().solve_report(&instance).unwrap();
        prop_assert_eq!(report.instance_stats.num_queries, instance.num_queries());
        prop_assert!(report.timings.total >= report.timings.preprocess);
        // recorded solution cost equals the weight-function sum
        let recomputed: mc3_core::Weight = report
            .solution
            .classifiers()
            .iter()
            .map(|c| instance.weight(c))
            .sum();
        prop_assert_eq!(recomputed, report.solution.cost());
    }
}
