//! Pipeline-level properties on medium random instances (no exact
//! reference needed): refinement monotonicity, bounded-universe validity,
//! Short-First consistency, and prebuilt-inventory accounting.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! each test replays deterministic random cases from
//! [`mc3_core::rng::StdRng`], printing the seed on failure.

use mc3_core::rng::prelude::*;
use mc3_core::{is_cover, Instance, Weights};
use mc3_solver::{Algorithm, Mc3Solver};

const CASES: u64 = 48;

fn rand_instance(rng: &mut StdRng) -> Instance {
    let nq = rng.gen_range(1..40usize);
    let queries: Vec<Vec<u32>> = (0..nq)
        .map(|_| {
            let len = rng.gen_range(1..5usize);
            (0..len).map(|_| rng.gen_range(0..30u32)).collect()
        })
        .collect();
    let wseed = rng.gen::<u64>();
    Instance::new(queries, Weights::seeded(wseed, 1, 40)).expect("valid instance")
}

#[test]
fn refinement_never_raises_the_cost() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let raw = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .without_refinement()
            .solve(&instance)
            .expect("solvable");
        let refined = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .solve(&instance)
            .expect("solvable");
        raw.verify(&instance).expect("raw cover");
        refined.verify(&instance).expect("refined cover");
        assert!(
            refined.cost() <= raw.cost(),
            "refinement raised cost, seed {seed}"
        );
    }
}

#[test]
fn short_first_and_general_both_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        for alg in [Algorithm::General, Algorithm::ShortFirst, Algorithm::Auto] {
            let sol = Mc3Solver::new()
                .algorithm(alg)
                .solve(&instance)
                .expect("solvable");
            sol.verify(&instance).expect("valid cover");
        }
    }
}

#[test]
fn prebuilt_marginal_cost_is_bounded_by_fresh_cost() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        // building on top of any inventory can never cost more than
        // starting from scratch
        let fresh = Mc3Solver::new().solve(&instance).expect("solvable");
        // reuse half of the fresh solution as the inventory
        let inventory: Vec<_> = fresh.classifiers().iter().step_by(2).cloned().collect();
        let report = Mc3Solver::new()
            .prebuilt(inventory.clone())
            .solve_report(&instance)
            .expect("solvable");
        assert!(
            is_cover(&instance, &report.full_cover()),
            "not a cover, seed {seed}"
        );
        assert!(
            report.solution.cost() <= fresh.cost(),
            "marginal {} > fresh {}, seed {seed}",
            report.solution.cost(),
            fresh.cost()
        );
        // everything reported as used inventory really is inventory
        for c in &report.prebuilt_used {
            assert!(inventory.contains(c), "phantom inventory use, seed {seed}");
        }
    }
}

#[test]
fn bounded_universe_solutions_respect_the_bound() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let kp = rng.gen_range(1..4usize);
        let sol = Mc3Solver::new()
            .algorithm(Algorithm::General)
            .max_classifier_len(kp)
            .solve(&instance)
            .expect("solvable");
        sol.verify(&instance).expect("valid cover");
        assert!(
            sol.classifiers().iter().all(|c| c.len() <= kp),
            "classifier over bound, seed {seed}"
        );
    }
}

#[test]
fn reports_are_self_consistent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = rand_instance(&mut rng);
        let report = Mc3Solver::new().solve_report(&instance).expect("solvable");
        assert_eq!(
            report.instance_stats.num_queries,
            instance.num_queries(),
            "query count, seed {seed}"
        );
        assert!(
            report.timings.total >= report.timings.preprocess,
            "timings, seed {seed}"
        );
        // recorded solution cost equals the weight-function sum
        let recomputed: mc3_core::Weight = report
            .solution
            .classifiers()
            .iter()
            .map(|c| instance.weight(c))
            .sum();
        assert_eq!(
            recomputed,
            report.solution.cost(),
            "cost mismatch, seed {seed}"
        );
    }
}
