//! Cache correctness properties over a 200-instance seeded corpus:
//!
//! * **cache-on ≡ cache-off** — solving with a fresh `SolveCache` is
//!   byte-identical to solving without one (first touch always misses
//!   and returns the uncached result), and re-solving the same instance
//!   against the warm cache reproduces the same cost with a valid cover
//!   served from the hit path;
//! * **relabel-invariance** — for a random property/query permutation
//!   `π`, solving `π(I)` against a cache warmed by `I` answers every
//!   component from the cache (the canonical fingerprints agree) and
//!   yields the cost of `solve(I)` with a remap-consistent, verifying
//!   solution.

use mc3_core::rng::prelude::*;
use mc3_core::{Instance, PropId, PropSet, Weights};
use mc3_solver::{Algorithm, Mc3Solver, SolveCache};
use std::sync::Arc;

const CASES: u64 = 200;

/// A small random instance: up to 12 properties, up to 8 queries of
/// length 1..=4, seeded weights.
fn random_instance(seed: u64) -> (Vec<Vec<u32>>, Instance) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let n_props = rng.gen_range(4..=12u32);
    let n_queries = rng.gen_range(2..=8usize);
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let len = rng.gen_range(1..=4usize);
        let mut ids: Vec<u32> = (0..n_props).collect();
        ids.shuffle(&mut rng);
        let mut q = ids[..len.min(ids.len())].to_vec();
        q.sort_unstable();
        queries.push(q);
    }
    let instance =
        Instance::new(queries.clone(), Weights::seeded(seed, 1, 30)).expect("valid instance");
    (queries, instance)
}

fn solver(cache: Option<&Arc<SolveCache>>) -> Mc3Solver {
    let s = Mc3Solver::new()
        .algorithm(Algorithm::General)
        .without_preprocessing();
    match cache {
        Some(c) => s.cache(Arc::clone(c)),
        None => s,
    }
}

#[test]
fn cache_on_equals_cache_off() {
    for seed in 0..CASES {
        let (_, instance) = random_instance(seed);
        let cold = solver(None).solve(&instance).expect("uncached solve");
        cold.verify(&instance).expect("uncached cover");

        let cache = Arc::new(SolveCache::with_capacity_mb(8));
        let first = solver(Some(&cache)).solve(&instance).expect("cached solve");
        assert_eq!(
            cold.classifiers(),
            first.classifiers(),
            "seed {seed}: a fresh cache must not change the solution"
        );
        assert_eq!(cold.cost(), first.cost(), "seed {seed}");

        let stats = cache.stats();
        assert_eq!(stats.hits, 0, "seed {seed}: fresh cache cannot hit");
        assert!(stats.misses > 0, "seed {seed}: components must consult");

        let warm = solver(Some(&cache)).solve(&instance).expect("warm solve");
        warm.verify(&instance).expect("seed {seed}: warm cover");
        assert_eq!(cold.cost(), warm.cost(), "seed {seed}: warm cost drifted");
        assert!(
            cache.stats().hits > 0,
            "seed {seed}: identical re-solve must hit"
        );
    }
}

#[test]
fn relabeled_instances_are_served_from_the_cache() {
    let mut perm_rng = StdRng::seed_from_u64(0xF1_CA);
    for seed in 0..CASES {
        let (queries, instance) = random_instance(seed);
        let n_props = 1 + queries
            .iter()
            .flat_map(|q| q.iter().copied())
            .max()
            .unwrap_or(0);

        // π: a random property relabeling plus a query-order shuffle,
        // with weights transported so π(I) is isomorphic to I.
        let mut perm: Vec<u32> = (0..n_props).collect();
        perm.shuffle(&mut perm_rng);
        let inv = {
            let mut inv = vec![0u32; n_props as usize];
            for (i, &p) in perm.iter().enumerate() {
                inv[p as usize] = i as u32;
            }
            inv
        };
        let mut permuted: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                let mut q: Vec<u32> = q.iter().map(|&p| perm[p as usize]).collect();
                q.sort_unstable();
                q
            })
            .collect();
        permuted.shuffle(&mut perm_rng);
        let base_weights = Weights::seeded(seed, 1, 30);
        let transported = Weights::custom(move |s: &PropSet| {
            base_weights.weight(&PropSet::from_ids(s.iter().map(|p| PropId(inv[p.index()]))))
        });
        let pi_instance = Instance::new(permuted, transported).expect("valid instance");

        let cache = Arc::new(SolveCache::with_capacity_mb(8));
        let base = solver(Some(&cache))
            .solve_report(&instance)
            .expect("warming solve");
        let hits_before = cache.stats().hits;

        let pi = solver(Some(&cache))
            .solve_report(&pi_instance)
            .expect("relabeled solve");
        pi.solution
            .verify(&pi_instance)
            .expect("remapped cover must verify");
        let hits = cache.stats().hits - hits_before;
        assert_eq!(
            hits as usize, pi.components,
            "seed {seed}: every component of π(I) must be answered from the cache"
        );
        assert_eq!(
            base.solution.cost(),
            pi.solution.cost(),
            "seed {seed}: relabeling changed the served cost"
        );
    }
}

#[test]
fn parallel_workers_share_the_cache() {
    // Disjoint copies of the same component shape: the duplicate-heavy
    // serving pattern, all in one instance.
    let mut queries = Vec::new();
    for c in 0..8u32 {
        let base = c * 4;
        queries.push(vec![base, base + 1, base + 2]);
        queries.push(vec![base + 1, base + 2, base + 3]);
    }
    let instance = Instance::new(queries, Weights::uniform(3u64)).expect("valid instance");
    let cold = solver(None).solve(&instance).expect("uncached");
    let cache = Arc::new(SolveCache::with_capacity_mb(8));
    let par = solver(Some(&cache))
        .parallel(true)
        .solve(&instance)
        .expect("parallel cached");
    par.verify(&instance).expect("parallel cover");
    assert_eq!(cold.cost(), par.cost());
    let warm = solver(Some(&cache))
        .parallel(true)
        .solve(&instance)
        .expect("warm parallel");
    warm.verify(&instance).expect("warm cover");
    assert_eq!(cold.cost(), warm.cost());
    let stats = cache.stats();
    assert!(stats.hits >= 8, "second pass must be served from the cache");
}

#[test]
fn negative_verdicts_memoize_and_replay() {
    use mc3_core::{Mc3Error, Weight, WeightsBuilder};
    for seed in 0..50u64 {
        // Three two-property components; the seed picks which one stays
        // all-infinite (uncoverable), so the verdict's query index
        // varies — the replayed error must name the right query.
        let queries = vec![vec![0u32, 1], vec![2u32, 3], vec![4u32, 5]];
        let bad = (seed % 3) as u32;
        let cost = 1 + seed % 7;
        let mut b = WeightsBuilder::new().default_weight(Weight::INFINITE);
        for c in 0..3u32 {
            if c != bad {
                b = b
                    .classifier([2 * c], cost)
                    .classifier([2 * c + 1], cost + 1);
            }
        }
        let instance = Instance::new(queries, b.build()).expect("valid instance");
        // Instance::new canonicalizes query order, so locate the
        // uncoverable query in the instance, not the input.
        let bad_index = instance
            .queries()
            .iter()
            .position(|q| q.iter().map(|p| p.0).eq([2 * bad, 2 * bad + 1]))
            .expect("uncoverable query present");
        let expected = Mc3Error::Uncoverable {
            query_index: bad_index,
        };

        let uncached = solver(None).solve(&instance).expect_err("uncoverable");
        assert_eq!(uncached, expected, "seed {seed}: uncached verdict");

        let cache = Arc::new(SolveCache::with_capacity_mb(4));
        let cold = solver(Some(&cache))
            .solve(&instance)
            .expect_err("uncoverable");
        assert_eq!(cold, expected, "seed {seed}: cold cached verdict");
        assert_eq!(
            cache.stats().negative_hits,
            0,
            "seed {seed}: a fresh cache cannot hit"
        );

        let warm = solver(Some(&cache))
            .solve(&instance)
            .expect_err("uncoverable");
        assert_eq!(warm, expected, "seed {seed}: replayed verdict drifted");
        assert!(
            cache.stats().negative_hits > 0,
            "seed {seed}: the second solve must replay the memoized verdict"
        );

        // The executor path replays the same verdict too.
        let par = solver(Some(&cache))
            .parallel(true)
            .solve(&instance)
            .expect_err("uncoverable");
        assert_eq!(par, expected, "seed {seed}: parallel cached verdict");
    }
}

#[test]
fn k2_pipeline_uses_the_cache_too() {
    let mut queries = Vec::new();
    for c in 0..6u32 {
        let base = c * 3;
        queries.push(vec![base, base + 1]);
        queries.push(vec![base + 1, base + 2]);
    }
    let instance = Instance::new(queries, Weights::seeded(11, 1, 9)).expect("valid instance");
    let cache = Arc::new(SolveCache::with_capacity_mb(4));
    let run = || {
        Mc3Solver::new()
            .algorithm(Algorithm::K2Exact)
            .cache(Arc::clone(&cache))
            .solve(&instance)
            .expect("k2 solve")
    };
    let a = run();
    let b = run();
    a.verify(&instance).expect("cover");
    b.verify(&instance).expect("cover");
    assert_eq!(a.cost(), b.cost());
    assert!(cache.stats().hits > 0, "k2 components must hit on re-solve");
}

#[test]
fn prebuilt_inventory_bypasses_the_cache() {
    let (_, instance) = random_instance(7);
    let cache = Arc::new(SolveCache::with_capacity_mb(4));
    let prebuilt = vec![PropSet::from_ids([instance.queries()[0]
        .ids()
        .first()
        .copied()
        .expect("non-empty query")])];
    let report = Mc3Solver::new()
        .algorithm(Algorithm::General)
        .cache(Arc::clone(&cache))
        .prebuilt(prebuilt)
        .solve_report(&instance)
        .expect("prebuilt solve");
    assert!(mc3_core::is_cover(&instance, &report.full_cover()));
    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (0, 0, 0),
        "prebuilt solves must not touch the shared cache"
    );
}
