//! Telemetry properties of the full solve pipeline: parallel and
//! sequential solves of one instance report identical counter totals,
//! the span tree's phase nodes store *exactly* the public `SolveTimings`
//! durations, the tree covers (almost) all of the solve wall time, and a
//! mixed-length workload lights up both the k ≤ 2 flow counters and the
//! general-path greedy counters.
//!
//! Seeded-loop style (the workspace builds offline, without `proptest`):
//! deterministic random cases from [`mc3_core::rng::StdRng`], printing
//! the seed on failure. Telemetry state is process-global, so tests
//! serialize on a file-local mutex (sessions also serialize themselves,
//! but the lock keeps assertions from interleaving with another test's
//! recording window).

use mc3_core::rng::prelude::*;
use mc3_core::{Instance, Weights};
use mc3_solver::{Algorithm, Mc3Solver};
use mc3_telemetry::{Session, SpanData, TelemetryReport};
use std::collections::BTreeMap;
use std::sync::Mutex;

const CASES: u64 = 200;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A mixed-length instance: short (≤ 2) and long queries over a small
/// property space, so components split and both solver paths get work.
fn rand_instance(rng: &mut StdRng) -> Instance {
    let nq = rng.gen_range(4..24usize);
    let queries: Vec<Vec<u32>> = (0..nq)
        .map(|_| {
            let len = rng.gen_range(1..5usize);
            (0..len).map(|_| rng.gen_range(0..24u32)).collect()
        })
        .collect();
    let wseed = rng.gen::<u64>();
    Instance::new(queries, Weights::seeded(wseed, 1, 40)).expect("valid instance")
}

fn traced_counters(
    instance: &Instance,
    parallel: bool,
    algorithm: Algorithm,
) -> BTreeMap<String, u64> {
    let session = Session::begin();
    let solver = Mc3Solver::new().algorithm(algorithm).parallel(parallel);
    let report = solver.solve_report(instance).expect("solvable");
    let tel = session.finish();
    // sanity: solving actually happened under the session
    assert!(report.solution.verify(instance).is_ok());
    // The global allocator counters (mem_*) depend on thread scheduling
    // (worker-pool startup, buffer growth order), so the solver-internals
    // determinism contract deliberately excludes them. Executor counters
    // (exec_*) are likewise scheduling artifacts: sequential solves never
    // touch the shared pool at all, and steal/park totals vary run to run
    // by construction (see docs/observability.md).
    let mut counters = tel.counters;
    counters.retain(|name, _| !name.starts_with("mem_") && !name.starts_with("exec_"));
    counters
}

#[test]
fn parallel_and_sequential_solves_report_identical_counters() {
    let _guard = locked();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A11E7 ^ seed);
        let instance = rand_instance(&mut rng);
        let algorithm = match seed % 3 {
            0 => Algorithm::Auto,
            1 => Algorithm::General,
            _ => Algorithm::ShortFirst,
        };
        let seq = traced_counters(&instance, false, algorithm);
        let par = traced_counters(&instance, true, algorithm);
        assert_eq!(
            seq, par,
            "seed {seed}: parallel vs sequential counter totals diverged ({algorithm:?})"
        );
    }
}

fn find_child<'a>(node: &'a SpanData, name: &str) -> Option<&'a SpanData> {
    node.children.iter().find(|c| c.name == name)
}

fn find_root<'a>(report: &'a TelemetryReport, name: &str) -> Option<&'a SpanData> {
    report.spans.iter().find(|s| s.name == name)
}

#[test]
fn span_tree_wall_times_equal_solve_timings_exactly() {
    let _guard = locked();
    for seed in 0..40 {
        let mut rng = StdRng::seed_from_u64(0x7151E ^ seed);
        let instance = rand_instance(&mut rng);
        let session = Session::begin();
        let report = Mc3Solver::new()
            .algorithm(Algorithm::ShortFirst)
            .solve_report(&instance)
            .expect("solvable");
        let tel = session.finish();
        let t = report.timings;
        let root = find_root(&tel, "solve").expect("root solve span");
        assert_eq!(
            u128::from(root.wall_ns),
            t.total.as_nanos(),
            "seed {seed}: total"
        );
        let phases = [
            ("setup", t.setup),
            ("preprocess", t.preprocess),
            ("solve_core", t.solve),
        ];
        for (name, want) in phases {
            let node = find_child(root, name)
                .unwrap_or_else(|| panic!("seed {seed}: phase span '{name}' missing"));
            assert_eq!(
                u128::from(node.wall_ns),
                want.as_nanos(),
                "seed {seed}: span '{name}' must store exactly the SolveTimings duration"
            );
        }
    }
}

#[test]
fn span_tree_covers_at_least_90_percent_of_solve_wall_time() {
    let _guard = locked();
    // One sequential solve of a mid-sized instance: the three phase spans
    // must account for ≥ 90% of the root's wall time (the rest is match
    // dispatch and report assembly glue).
    let mut rng = StdRng::seed_from_u64(0xC07E1);
    let queries: Vec<Vec<u32>> = (0..150)
        .map(|_| {
            let len = rng.gen_range(1..5usize);
            (0..len).map(|_| rng.gen_range(0..40u32)).collect()
        })
        .collect();
    let instance = Instance::new(queries, Weights::seeded(11, 1, 40)).expect("valid instance");
    let session = Session::begin();
    Mc3Solver::new()
        .algorithm(Algorithm::ShortFirst)
        .solve_report(&instance)
        .expect("solvable");
    let tel = session.finish();
    let root = find_root(&tel, "solve").expect("root solve span");
    let phase_sum: u64 = root.children.iter().map(|c| c.wall_ns).sum();
    assert!(root.wall_ns > 0);
    let coverage = phase_sum as f64 / root.wall_ns as f64;
    assert!(
        coverage >= 0.9,
        "phase spans cover only {:.1}% of solve wall time\n{}",
        100.0 * coverage,
        tel.render()
    );
}

#[test]
fn mixed_workload_lights_up_both_k2_and_general_counters() {
    let _guard = locked();
    // Deterministic instance with pair queries (sharing properties, so the
    // WVC flow network has real edges) plus long queries for the general
    // path.
    let queries: Vec<Vec<u32>> = vec![
        vec![0, 1],
        vec![1, 2],
        vec![0, 2],
        vec![3, 4],
        vec![0, 1, 2, 3],
        vec![2, 3, 4, 5],
        vec![5, 6, 7],
    ];
    let instance = Instance::new(queries, Weights::seeded(3, 2, 9)).expect("valid instance");
    let session = Session::begin();
    Mc3Solver::new()
        .algorithm(Algorithm::ShortFirst)
        .solve_report(&instance)
        .expect("solvable");
    let tel = session.finish();
    for name in [
        "dispatch_k2",
        "dispatch_general",
        "wvc_solves",
        "dinic_phases",
        "dinic_bfs_visits",
        "greedy_iterations",
        "greedy_selected",
        "components_split",
    ] {
        assert!(
            tel.counters[name] > 0,
            "counter '{name}' stayed zero on a mixed workload\n{}",
            tel.render()
        );
    }
    let comp_hist = tel
        .histograms
        .iter()
        .find(|h| h.name == "component_size")
        .expect("registered histogram");
    assert!(comp_hist.count > 0, "component sizes must be recorded");
}

#[test]
fn solves_outside_a_session_record_nothing() {
    let _guard = locked();
    // Reset, close the gate, then solve without a session.
    drop(Session::begin().finish());
    let mut rng = StdRng::seed_from_u64(0x0FF);
    let instance = rand_instance(&mut rng);
    let report = Mc3Solver::new()
        .algorithm(Algorithm::ShortFirst)
        .solve_report(&instance)
        .expect("solvable");
    // Timings still work without telemetry (TimedSpan measures anyway).
    assert!(report.timings.total.as_nanos() > 0);
    assert!(report.timings.total >= report.timings.solve);
    // Nothing was recorded: a fresh session sees a clean slate. The mem_*
    // counters are exempt — the begin/finish window itself is live for the
    // tracking allocator, so any runtime-thread allocation lands in them.
    let tel = Session::begin().finish();
    assert!(tel.spans.is_empty(), "untraced solve leaked spans");
    assert!(
        tel.counters
            .iter()
            .all(|(name, &v)| name.starts_with("mem_") || v == 0),
        "untraced solve leaked counters"
    );
}
