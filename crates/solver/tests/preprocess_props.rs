//! Property-based tests of Algorithm 1's internal invariants on random
//! instances: optimality preservation, state consistency, and monotone
//! effects of the individual steps.

use mc3_core::{ClassifierUniverse, Instance, Weights};
use mc3_solver::preprocess::{preprocess, PreprocessOptions};
use mc3_solver::work::WorkState;
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    let query = prop::collection::vec(0..8u32, 1..4);
    (prop::collection::vec(query, 1..8), any::<u64>()).prop_map(|(queries, seed)| {
        Instance::new(queries, Weights::seeded(seed, 1, 25)).expect("valid instance")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn state_invariants_after_preprocessing(instance in arb_instance()) {
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();

        // selected classifiers are never removed, always zero current weight
        for (i, &sel) in ws.selected.iter().enumerate() {
            if sel {
                prop_assert!(!ws.removed[i], "classifier {i} selected AND removed");
                prop_assert!(ws.weight[i].is_zero());
                prop_assert!(ws.eff[i].is_zero());
            }
        }
        // dead queries are exactly the fully covered ones
        for q in 0..instance.num_queries() {
            prop_assert_eq!(ws.alive[q], ws.need(q) != 0, "query {} liveness", q);
        }
        // coverage masks only contain bits of selected classifiers
        for q in 0..instance.num_queries() {
            let local = ws.universe.query_local(q);
            let mut expected = 0u32;
            for mask in 1..local.table.len() as u32 {
                let id = local.table[mask as usize];
                if !id.is_none() && ws.selected[id.index()] {
                    expected |= mask;
                }
            }
            prop_assert_eq!(ws.covered[q], expected, "query {} covered mask", q);
        }
        // base cost equals the original weights of the selected classifiers
        let recomputed: u64 = ws
            .selected
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| ws.universe.weight(mc3_core::ClassifierId(i as u32)).raw())
            .sum();
        prop_assert_eq!(ws.base_cost.raw(), recomputed);
    }

    #[test]
    fn removals_never_break_coverability(instance in arb_instance()) {
        // after preprocessing, every alive query still has a finite cover
        // among the available classifiers
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        preprocess(&mut ws, &PreprocessOptions::default()).unwrap();
        for q in ws.alive_query_indices() {
            let cover = mc3_solver::cover_dp::min_cover(&ws, q);
            prop_assert!(cover.is_some(), "query {q} lost its finite cover");
        }
    }

    #[test]
    fn each_step_subset_preserves_the_optimum(instance in arb_instance()) {
        let reference = mc3_solver::exact::solve_exact_with(
            &instance,
            &PreprocessOptions::disabled(),
        )
        .unwrap();
        for opts in [
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: false,
                k2_singleton_pruning: false,
                max_passes: 0,
            },
            PreprocessOptions {
                singletons_and_zero: true,
                decomposition: true,
                k2_singleton_pruning: false,
                max_passes: 6,
            },
            PreprocessOptions::default(),
        ] {
            let sol = mc3_solver::exact::solve_exact_with(&instance, &opts).unwrap();
            sol.verify(&instance).unwrap();
            prop_assert_eq!(
                sol.cost(),
                reference.cost(),
                "options {:?} changed the optimum",
                opts
            );
        }
    }

    #[test]
    fn preprocessing_is_idempotent(instance in arb_instance()) {
        let universe = ClassifierUniverse::build(&instance);
        let mut ws = WorkState::new(&instance, universe);
        let opts = PreprocessOptions::default();
        preprocess(&mut ws, &opts).unwrap();
        let selected_before: Vec<bool> = ws.selected.clone();
        let removed_before: Vec<bool> = ws.removed.clone();
        let cost_before = ws.base_cost;
        preprocess(&mut ws, &opts).unwrap();
        prop_assert_eq!(ws.selected, selected_before);
        prop_assert_eq!(ws.removed, removed_before);
        prop_assert_eq!(ws.base_cost, cost_before);
    }
}
